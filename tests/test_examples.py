"""Every example script must run end-to-end (small parameters)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=240):
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert process.returncode == 0, process.stderr
    return process.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "--n", "64", "--k", "4", "--seed", "3")
        assert "converged" in out
        assert "committed to nest" in out

    def test_emergency_relocation(self):
        out = run_example(
            "emergency_relocation.py",
            "--n", "96", "--k", "6", "--good", "2", "--trials", "2",
        )
        assert "Relocation race" in out
        assert "Optimal" in out and "Quorum" in out

    def test_noisy_colony(self):
        out = run_example(
            "noisy_colony.py",
            "--n", "96", "--crash", "0.1", "--byzantine", "0.0",
            "--delay", "0.05", "--seed", "1",
        )
        assert "agreed on nest" in out

    def test_speed_accuracy(self):
        out = run_example(
            "speed_accuracy.py", "--n", "96", "--trials", "4",
            "--weights", "0", "2",
        )
        assert "frontier" in out

    def test_scaling_study(self):
        out = run_example(
            "scaling_study.py", "--sizes", "64", "128", "256", "--trials", "4"
        )
        assert "growth-model fits" in out

    def test_mean_field(self):
        out = run_example("mean_field.py", "--n", "512", "--k", "4")
        assert "fitted xi" in out
        assert "mean-field winner" in out
