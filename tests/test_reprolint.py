"""reprolint: per-rule fixtures, suppressions, the baseline, and the CLI."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.lintkit import (
    RULES,
    Finding,
    LintConfig,
    explain_rule,
    lint_paths,
    lint_text,
    load_baseline,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def rules_of(findings):
    return sorted({f.rule for f in findings})


def lint_snippet(code: str, kernel: bool = False):
    """Lint one in-memory module with the R-checks and baseline off."""
    config = LintConfig(root=REPO_ROOT, registry_checks=False)
    config.baseline_path = None
    return lint_text(code, REPO_ROOT / "src" / "snippet.py", config, kernel=kernel)


# -- D101: ambient RNG / entropy / wall clock --------------------------------


@pytest.mark.parametrize(
    "code",
    [
        "import numpy as np\nx = np.random.rand(4)\n",
        "import numpy as np\nnp.random.seed(0)\n",
        "import random\nrandom.shuffle(items)\n",
        "from random import shuffle\nshuffle(items)\n",
        "import time\nstamp = time.time()\n",
        "import os\nkey = os.urandom(16)\n",
        "import uuid\ntoken = uuid.uuid4()\n",
        "import secrets\ntoken = secrets.token_hex()\n",
    ],
)
def test_d101_flags_ambient_sources(code):
    assert rules_of(lint_snippet(code)) == ["D101"]


@pytest.mark.parametrize(
    "code",
    [
        # Seeded generators and the typing idiom stay silent.
        "import numpy as np\nrng = np.random.default_rng(7)\n",
        "import numpy as np\ndef f(rng: np.random.Generator): ...\n",
        # Measurement clocks are fine; only the wall clock is banned.
        "from time import perf_counter\nt0 = perf_counter()\n",
        # A *local* name `random` is not the stdlib module.
        "def f(random):\n    return random.random()\n",
    ],
)
def test_d101_silent_on_seeded_and_unrelated(code):
    assert lint_snippet(code) == []


# -- D102: seedless construction ---------------------------------------------


@pytest.mark.parametrize(
    "code",
    [
        "import numpy as np\nrng = np.random.default_rng()\n",
        "import numpy as np\nrng = np.random.default_rng(None)\n",
        "from numpy.random import default_rng\nrng = default_rng(seed=None)\n",
        "import random\nrng = random.Random()\n",
    ],
)
def test_d102_flags_seedless(code):
    assert rules_of(lint_snippet(code)) == ["D102"]


def test_d102_silent_on_entropy_kwarg():
    code = (
        "import numpy as np\n"
        "child = np.random.SeedSequence(entropy=123, spawn_key=(1,))\n"
    )
    assert lint_snippet(code) == []


# -- D103: set iteration ------------------------------------------------------


@pytest.mark.parametrize(
    "code",
    [
        "for x in {1, 2, 3}:\n    pass\n",
        "for x in set(items):\n    pass\n",
        "out = [f(x) for x in {s.strip() for s in names}]\n",
        "for x in list({1, 2}):\n    pass\n",
    ],
)
def test_d103_flags_set_iteration(code):
    assert rules_of(lint_snippet(code)) == ["D103"]


def test_d103_sorted_sanctifies():
    assert lint_snippet("for x in sorted({1, 2, 3}):\n    pass\n") == []


# -- D104 / K-rules: kernel scope only ---------------------------------------


def test_d104_float_equality_kernel_only():
    code = "def f(p):\n    return p == 0.5\n"
    assert rules_of(lint_snippet(code, kernel=True)) == ["D104"]
    assert lint_snippet(code, kernel=False) == []


def test_d104_silent_on_int_equality():
    assert lint_snippet("def f(n):\n    return n == 0\n", kernel=True) == []


K201_SNIPPET = """\
import numpy as np
def kernel(arena, live):
    scratch = arena.buf("scratch", (4,), np.float64)
    while live:
        tmp = np.zeros(4)
        live -= 1
"""


def test_k201_flags_loop_allocation():
    assert rules_of(lint_snippet(K201_SNIPPET, kernel=True)) == ["K201"]


def test_k201_silent_outside_loop_and_in_closures():
    code = """\
import numpy as np
def kernel(live):
    hoisted = np.zeros(4)
    while live:
        def finalize():  # compaction closure: runs per event, not per round
            return np.zeros(4)
        live -= 1
"""
    assert lint_snippet(code, kernel=True) == []


K202_SNIPPET = """\
import numpy as np
def kernel(arena, live):
    plane = arena.buf("plane", (8,), np.int32)
    while live:
        plane = plane + 1
        live -= 1
"""


def test_k202_flags_plane_rebinding():
    assert rules_of(lint_snippet(K202_SNIPPET, kernel=True)) == ["K202"]


def test_k202_allows_compaction_and_slicing():
    code = """\
from repro.fast.arena import compact_rows
def kernel(arena, keep, live):
    import numpy as np
    plane = arena.buf("plane", (8,), np.int32)
    while live:
        plane[:] = 0
        plane = plane[:4]
        (plane,) = compact_rows(keep, plane)
        live -= 1
"""
    assert lint_snippet(code, kernel=True) == []


# -- suppressions -------------------------------------------------------------


def test_inline_suppression_silences_one_rule():
    code = (
        "import numpy as np\n"
        "x = np.random.rand(4)  # reprolint: disable=D101 -- fixture\n"
    )
    assert lint_snippet(code) == []


def test_inline_suppression_is_rule_specific():
    code = (
        "import numpy as np\n"
        "x = np.random.rand(4)  # reprolint: disable=D102 -- wrong rule\n"
    )
    assert rules_of(lint_snippet(code)) == ["D101"]


def test_file_wide_suppression():
    code = (
        "# reprolint: disable-file=D101\n"
        "import numpy as np\n"
        "x = np.random.rand(4)\ny = np.random.rand(2)\n"
    )
    assert lint_snippet(code) == []


def test_suppression_covers_multiline_statement():
    code = (
        "import numpy as np\n"
        "x = np.random.rand(  # reprolint: disable=D101 -- fixture\n"
        "    4,\n"
        ")\n"
    )
    assert lint_snippet(code) == []


# -- baseline -----------------------------------------------------------------


def test_baseline_roundtrip_filters_by_fingerprint(tmp_path):
    finding = Finding(
        rule="K201", path="src/x.py", line=3, col=0,
        message="m", func="kernel", text="tmp = np.zeros(4)",
    )
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, [finding], note="test")
    accepted = load_baseline(baseline)
    assert finding.fingerprint() in accepted
    # Line churn does not evict an entry; a text change does.
    moved = Finding(
        rule="K201", path="src/x.py", line=99, col=0,
        message="m", func="kernel", text="tmp = np.zeros(4)",
    )
    edited = Finding(
        rule="K201", path="src/x.py", line=3, col=0,
        message="m", func="kernel", text="tmp = np.zeros(8)",
    )
    assert moved.fingerprint() in accepted
    assert edited.fingerprint() not in accepted


def test_syntax_error_reported_not_raised():
    assert rules_of(lint_snippet("def broken(:\n")) == ["E999"]


# -- the real tree ------------------------------------------------------------


def test_repo_src_is_clean_under_committed_baseline():
    """The acceptance gate: src/ lints clean with the committed baseline."""
    findings = lint_paths([REPO_ROOT / "src"], LintConfig(root=REPO_ROOT))
    assert findings == [], "\n" + "\n".join(f.render() for f in findings)


def test_committed_baseline_has_no_stale_entries():
    """Every baselined fingerprint still matches a live finding."""
    config = LintConfig(root=REPO_ROOT)
    baseline_path = config.baseline_path
    assert baseline_path is not None, "committed baseline missing"
    config.baseline_path = None
    live = {f.fingerprint() for f in lint_paths([REPO_ROOT / "src"], config)}
    stale = load_baseline(baseline_path) - live
    assert stale == set(), f"stale baseline entries: {sorted(stale)}"


# -- rule catalog / explain ---------------------------------------------------


def test_every_rule_has_catalog_entry_and_examples():
    assert set(RULES) >= {"D101", "D102", "D103", "D104", "K201", "K202",
                          "R301", "R302", "R303", "R304"}
    for rule_id, rule in RULES.items():
        text = explain_rule(rule_id)
        assert rule_id in text and rule.rationale in text


# -- CLI ----------------------------------------------------------------------


def run_cli(*args, cwd=REPO_ROOT):
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "reprolint.py"), *args],
        cwd=cwd, capture_output=True, text=True, timeout=120,
    )


def test_cli_clean_tree_exits_zero():
    proc = run_cli("src/")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_cli_findings_exit_one(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nx = np.random.rand(4)\n")
    proc = run_cli(str(bad), "--root", str(tmp_path))
    assert proc.returncode == 1
    assert "D101" in proc.stdout


def test_cli_usage_errors_exit_two(tmp_path):
    assert run_cli("--explain", "Z999").returncode == 2
    assert run_cli(str(tmp_path / "missing.py")).returncode == 2


def test_cli_explain_and_list_rules():
    proc = run_cli("--explain", "D101")
    assert proc.returncode == 0 and "D101" in proc.stdout
    proc = run_cli("--list-rules")
    assert proc.returncode == 0 and "K202" in proc.stdout


def test_cli_runs_without_repro_package_init(tmp_path):
    """The CLI must not import the simulation stack (numpy-free contract)."""
    probe = (
        "import sys, runpy\n"
        "sys.modules['numpy'] = None\n"  # poison: any numpy import explodes
        "sys.argv = ['reprolint', '--list-rules']\n"
        f"runpy.run_path({str(REPO_ROOT / 'tools' / 'reprolint.py')!r}, "
        "run_name='__main__')\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", probe],
        cwd=REPO_ROOT, capture_output=True, text=True, timeout=60,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "D101" in proc.stdout
