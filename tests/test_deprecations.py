"""The PR-1 deprecation timeline, now enforced at runtime.

Importing ``simulate_*`` from the ``repro.fast`` package namespace and
calling ``run_trial``/``run_trials`` from outside ``repro.sim``/``repro.api``
emit :class:`DeprecationWarning`.  The test suite at large filters these
(see ``tests/conftest.py``) because it exercises the substrate on purpose;
the tests here assert the warnings still fire for outside callers.
"""

import warnings

import pytest

from repro.core.colony import simple_factory
from repro.model.nests import NestConfig
from repro.sim.run import run_trial, run_trials


def _call_as(module_name: str, fn, *args, **kwargs):
    """Invoke ``fn`` from a frame whose module is ``module_name``.

    The deprecation check inspects the caller's ``__name__``, so building
    a tiny trampoline via ``exec`` in custom globals simulates user code
    calling the runner from outside the package.
    """
    namespace = {"__name__": module_name, "fn": fn, "args": args, "kwargs": kwargs}
    exec("result = fn(*args, **kwargs)", namespace)
    return namespace["result"]


class TestFastNamespaceImports:
    def test_simulate_import_warns(self):
        import repro.fast

        # Clear any cached attribute so __getattr__ runs.
        assert "simulate_simple" not in vars(repro.fast)
        with pytest.warns(DeprecationWarning, match="importing simulate_simple"):
            kernel = repro.fast.simulate_simple
        from repro.fast.simple_fast import simulate_simple

        assert kernel is simulate_simple

    def test_submodule_imports_stay_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.fast.batch import simulate_simple_batch  # noqa: F401
            from repro.fast.optimal_fast import simulate_optimal  # noqa: F401

    def test_result_types_stay_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            import repro.fast

            assert repro.fast.FastRunResult is not None
            assert repro.fast.SpreadResult is not None

    def test_unknown_attribute_raises(self):
        import repro.fast

        with pytest.raises(AttributeError):
            repro.fast.not_a_kernel


class TestTrialRunnerCalls:
    def test_external_run_trial_warns(self):
        with pytest.warns(DeprecationWarning, match="calling run_trial"):
            result = _call_as(
                "userscript",
                run_trial,
                simple_factory(),
                8,
                NestConfig.all_good(2),
                seed=3,
                max_rounds=500,
            )
        assert result.rounds_executed >= 1

    def test_external_run_trials_warns(self):
        with pytest.warns(DeprecationWarning, match="calling run_trials"):
            stats = _call_as(
                "userscript",
                run_trials,
                simple_factory(),
                8,
                NestConfig.all_good(2),
                2,
                max_rounds=500,
            )
        assert stats.n_trials == 2

    def test_scenario_api_path_stays_silent(self):
        from repro.api import Scenario, run

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            report = run(
                Scenario(
                    algorithm="simple",
                    n=8,
                    nests=NestConfig.all_good(2),
                    seed=3,
                    max_rounds=500,
                ),
                backend="agent",
            )
        assert report.backend == "agent"
