"""Test suite for the house-hunting reproduction.

This file makes ``tests`` a package so shared helpers (e.g.
``tests.test_problem.StubAnt``) import identically under both ``pytest``
and ``python -m pytest``.
"""
