"""Tests for the mean-field dynamics of Algorithm 3 (Lemma 5.3)."""

import numpy as np
import pytest

from repro.analysis.dynamics import (
    dominance_steps,
    fit_xi,
    mean_field_step,
    predicted_winner,
    simple_mean_field,
)
from repro.exceptions import ConfigurationError
from repro.fast.simple_fast import simulate_simple
from repro.model.nests import NestConfig


class TestMap:
    def test_stays_on_simplex(self):
        trajectory = simple_mean_field([0.3, 0.3, 0.4], steps=200, xi=0.8)
        assert np.allclose(trajectory.sum(axis=1), 1.0)
        assert (trajectory >= 0).all()

    def test_leader_share_monotone(self):
        trajectory = simple_mean_field([0.26, 0.25, 0.25, 0.24], steps=300)
        leader = trajectory[:, 0]
        assert (np.diff(leader) >= -1e-12).all()
        assert leader[-1] > 0.99

    def test_exact_tie_is_fixed_point(self):
        state = np.array([0.5, 0.5])
        assert np.allclose(mean_field_step(state, xi=0.8), state)

    def test_uniform_k_way_tie_is_fixed_point(self):
        state = np.full(5, 0.2)
        assert np.allclose(mean_field_step(state, xi=0.5), state)

    def test_winner_is_initial_leader(self):
        assert predicted_winner([0.2, 0.5, 0.3]) == 2

    def test_trajectory_shape_and_normalization(self):
        trajectory = simple_mean_field([2.0, 1.0, 1.0], steps=10)
        assert trajectory.shape == (11, 3)
        assert trajectory[0].tolist() == [0.5, 0.25, 0.25]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            simple_mean_field([0.5, 0.5], steps=-1)
        with pytest.raises(ConfigurationError):
            simple_mean_field([0.5, 0.5], steps=1, xi=0.0)
        with pytest.raises(ConfigurationError):
            simple_mean_field([0.0, 0.0], steps=1)


class TestDominanceSteps:
    def test_bigger_gap_dominates_faster(self):
        close = dominance_steps([0.51, 0.49])
        wide = dominance_steps([0.7, 0.3])
        assert wide < close

    def test_more_nests_take_longer(self):
        # 1/k initial shares with a small leader bump: the k factor of
        # Theorem 5.11 appears directly in the mean-field map.
        def bumped(k):
            shares = np.full(k, 1.0 / k)
            shares[0] *= 1.1
            return dominance_steps(shares / shares.sum())

        assert bumped(16) > bumped(4) > bumped(2)

    def test_exact_tie_raises(self):
        with pytest.raises(ConfigurationError):
            dominance_steps([0.5, 0.5], max_steps=100)

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            dominance_steps([0.6, 0.4], threshold=1.0)


class TestFitXi:
    def test_recovers_xi_from_synthetic_map_data(self):
        # Build a fake history whose assessment rows follow the map exactly.
        xi_true = 0.6
        n = 10_000
        shares = np.array([0.4, 0.35, 0.25])
        rows = []
        for _ in range(30):
            counts = np.concatenate([[0], np.round(shares * n)]).astype(int)
            rows.append(counts)
            rows.append(np.array([n, 0, 0, 0]))  # recruit round: all home
            shares = mean_field_step(shares, xi_true)
        history = np.vstack(rows)
        assert fit_xi(history) == pytest.approx(xi_true, abs=0.08)

    def test_fits_real_simulation_to_plausible_range(self):
        result = simulate_simple(
            4096, NestConfig.all_good(4), seed=5, max_rounds=20_000,
            record_history=True,
        )
        xi = fit_xi(result.population_history)
        # The effective efficiency folds in matcher collisions; it must be
        # a substantial positive constant below 1.
        assert 0.15 < xi <= 1.2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fit_xi(None)
        with pytest.raises(ConfigurationError):
            fit_xi(np.zeros((2, 3)))


class TestMeanFieldVsSimulation:
    def test_dominance_time_same_ballpark(self):
        """Mean-field cycles (x2 rounds) should track measured rounds within
        a small constant factor at moderate size."""
        n, k = 4096, 8
        nests = NestConfig.all_good(k)
        measured = []
        initials = []
        for seed in range(5):
            result = simulate_simple(
                n, nests, seed=seed, max_rounds=20_000, record_history=True
            )
            measured.append(result.converged_round)
            initials.append(result.population_history[0][1:] / n)
        xi = 0.5
        predicted = np.median(
            [2 * dominance_steps(init, xi=xi) for init in initials]
        )
        ratio = np.median(measured) / max(predicted, 1)
        assert 0.2 < ratio < 5.0
