"""The v2 matcher: sequential spec, batched resolver, and v1 equivalence.

Three layers of guarantees, in increasing strength of claim:

1. :func:`repro.model.recruitment.match_arrays_v2` (the sequential v2
   specification) produces structurally valid Algorithm 1 matchings with
   the same invariants as v1;
2. the trial-parallel resolver (:mod:`repro.fast.batch_matcher`) agrees
   with that specification **bit-for-bit** for every trial of any batch —
   property-tested over randomized sizes, densities, and subset shapes;
3. v1 and v2 are *statistically* equivalent where it matters: pair-count
   distributions here, full convergence-time distributions in
   :mod:`tests.test_batch_engine`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fast.batch_matcher import (
    match_pairs_batch,
    match_positions_batch,
    match_slots_batch,
    resolve_greedy_matching,
)
from repro.model.recruitment import match_arrays, match_arrays_v2
from tests.helpers.equivalence import assert_means_close


def _rngs(seed: int, count: int) -> list[np.random.Generator]:
    return [np.random.default_rng([seed, row]) for row in range(count)]


class TestSequentialSpec:
    """match_arrays_v2 — the executable specification."""

    def test_matching_invariants(self, rng):
        for _ in range(50):
            m = int(rng.integers(1, 64))
            wants = rng.random(m) < rng.random()
            targets = rng.integers(1, 6, size=m)
            results, recruiter_of, is_recruiter = match_arrays_v2(
                wants, targets, np.random.default_rng(int(rng.integers(1 << 30)))
            )
            recruited = recruiter_of != -1
            # Recruiters and recruitees are disjoint (self-pairs aside),
            # every recruiter recruits at most once, and results follow
            # the recruiter's target.
            recruiters = np.flatnonzero(is_recruiter)
            assert wants[recruiters].all()
            pair_of = recruiter_of[recruited]
            assert len(np.unique(pair_of)) == len(pair_of)
            assert np.array_equal(
                results[recruited], targets[recruiter_of[recruited]]
            )
            not_recruited = ~recruited
            assert np.array_equal(results[not_recruited], targets[not_recruited])
            # A recruiter is never itself recruited, except by itself.
            both = is_recruiter & recruited
            assert (recruiter_of[both] == np.flatnonzero(both)).all()

    def test_single_wanting_slot_self_recruits(self):
        # Theorem 3.2's forced self-recruitment: alone, the choice must be
        # yourself.
        wants = np.array([True])
        targets = np.array([7])
        results, recruiter_of, is_recruiter = match_arrays_v2(
            wants, targets, np.random.default_rng(0)
        )
        assert recruiter_of[0] == 0 and is_recruiter[0]
        assert results[0] == 7

    def test_no_attempts_draws_nothing(self):
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        match_arrays_v2(np.zeros(8, bool), np.ones(8, np.int64), rng_a)
        # An idle round must not consume the stream.
        assert rng_a.integers(1 << 30) == rng_b.integers(1 << 30)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            match_arrays_v2(np.zeros(3, bool), np.ones(2, np.int64), np.random.default_rng(0))


class TestBatchedResolverMatchesSpec:
    """The parallel greedy resolver == the sequential scan, bitwise."""

    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_equivalence(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(60):
            n = int(rng.integers(1, 96))
            n_trials = int(rng.integers(1, 7))
            wants = rng.random((n_trials, n)) < rng.random()
            targets = rng.integers(1, 7, size=(n_trials, n))
            draw_seed = int(rng.integers(1 << 30))
            res_b, rof_b, isr_b = match_slots_batch(
                wants, targets, _rngs(draw_seed, n_trials)
            )
            for row in range(n_trials):
                res, rof, isr = match_arrays_v2(
                    wants[row], targets[row], np.random.default_rng([draw_seed, row])
                )
                assert np.array_equal(res, res_b[row])
                assert np.array_equal(rof, rof_b[row])
                assert np.array_equal(isr, isr_b[row])

    def test_extreme_densities(self):
        rng = np.random.default_rng(99)
        for density in (0.0, 1.0):
            for n in (1, 2, 17, 256):
                wants = np.full((3, n), density > 0.5)
                targets = rng.integers(1, 4, size=(3, n))
                res_b, rof_b, isr_b = match_slots_batch(
                    wants, targets, _rngs(7, 3)
                )
                for row in range(3):
                    res, rof, isr = match_arrays_v2(
                        wants[row], targets[row], np.random.default_rng([7, row])
                    )
                    assert np.array_equal(res, res_b[row])
                    assert np.array_equal(rof, rof_b[row])
                    assert np.array_equal(isr, isr_b[row])

    def test_pairs_variant_agrees_with_full_variant(self):
        rng = np.random.default_rng(3)
        wants = rng.random((4, 64)) < 0.5
        targets = rng.integers(1, 5, size=(4, 64))
        _, recruiter_of, _ = match_slots_batch(wants, targets, _rngs(11, 4))
        sel_src, sel_dst = match_pairs_batch(wants, _rngs(11, 4))
        rebuilt = np.full(4 * 64, -1, dtype=np.int64)
        rebuilt[sel_dst] = sel_src % 64
        assert np.array_equal(rebuilt.reshape(4, 64), recruiter_of)

    def test_batch_rows_are_independent(self):
        """A trial's outcome never depends on what it is batched with."""
        rng = np.random.default_rng(21)
        wants = rng.random((6, 40)) < 0.6
        targets = rng.integers(1, 5, size=(6, 40))
        full = match_slots_batch(wants, targets, _rngs(13, 6))
        for row in range(6):
            alone = match_slots_batch(
                wants[row : row + 1],
                targets[row : row + 1],
                [np.random.default_rng([13, row])],
            )
            for got, expect in zip(alone, full):
                assert np.array_equal(got[0], expect[row])

    def test_subset_participation(self):
        """match_positions_batch == the spec run over the packed subset."""
        rng = np.random.default_rng(17)
        for _ in range(40):
            n = int(rng.integers(2, 64))
            n_trials = int(rng.integers(1, 5))
            participants = rng.random((n_trials, n)) < rng.random()
            attempting = participants & (rng.random((n_trials, n)) < rng.random())
            targets = rng.integers(1, 6, size=(n_trials, n))
            draw_seed = int(rng.integers(1 << 30))
            results, recruited = match_positions_batch(
                participants, attempting, targets, _rngs(draw_seed, n_trials)
            )
            for row in range(n_trials):
                ants = np.flatnonzero(participants[row])
                res, rof, _ = match_arrays_v2(
                    attempting[row, ants],
                    targets[row, ants],
                    np.random.default_rng([draw_seed, row]),
                )
                expect_results = targets[row].copy()
                expect_results[ants] = res
                expect_recruited = np.zeros(n, dtype=bool)
                expect_recruited[ants[rof != -1]] = True
                assert np.array_equal(results[row], expect_results)
                assert np.array_equal(recruited[row], expect_recruited)

    def test_resolver_int64_fallback_path(self):
        """Key spaces beyond the int32 limit use the same algorithm."""
        import repro.fast.batch_matcher as bm

        rng = np.random.default_rng(8)
        wants = rng.random((3, 50)) < 0.7
        targets = rng.integers(1, 4, size=(3, 50))
        expected = match_slots_batch(wants, targets, _rngs(4, 3))
        original = bm._INT32_KEY_LIMIT
        try:
            bm._INT32_KEY_LIMIT = 0  # force the int64 branch
            forced = match_slots_batch(wants, targets, _rngs(4, 3))
        finally:
            bm._INT32_KEY_LIMIT = original
        for got, expect in zip(forced, expected):
            assert np.array_equal(got, expect)

    def test_resolver_rejects_nothing_on_empty(self):
        sel_src, sel_dst = resolve_greedy_matching(
            np.empty(0, np.int64), np.empty(0, np.int64), 16
        )
        assert len(sel_src) == 0 and len(sel_dst) == 0


class TestV1V2StatisticalEquivalence:
    """Same pairing law: aggregate matching statistics must agree.

    The comparisons run through the shared harness
    (:mod:`tests.helpers.equivalence`), the same tolerances the batch-engine
    and perturbation-parity suites use.
    """

    def test_pair_count_distributions_close(self):
        m, reps = 128, 400
        rng = np.random.default_rng(2)
        wants = rng.random(m) < 0.5
        targets = np.ones(m, dtype=np.int64)
        v1_pairs = []
        v2_pairs = []
        for rep in range(reps):
            _, rof1, _ = match_arrays(wants, targets, np.random.default_rng([1, rep]))
            _, rof2, _ = match_arrays_v2(wants, targets, np.random.default_rng([2, rep]))
            v1_pairs.append(int((rof1 != -1).sum()))
            v2_pairs.append(int((rof2 != -1).sum()))
        assert_means_close(v1_pairs, v2_pairs, label="pair counts")

    def test_cross_nest_movement_distribution_close(self):
        """The multiset-level claim: over exchangeable state assignments,
        v1 and v2 move statistically indistinguishable numbers of ants
        between nests (per-slot marginals legitimately differ — slot 0
        always scans first under v2 — but no dynamics observe slots)."""
        m, reps = 96, 300
        moved_v1 = []
        moved_v2 = []
        for rep in range(reps):
            state_rng = np.random.default_rng([5, rep])
            wants = state_rng.random(m) < 0.6
            targets = state_rng.integers(1, 4, size=m)
            res1, rof1, _ = match_arrays(wants, targets, np.random.default_rng([6, rep]))
            res2, rof2, _ = match_arrays_v2(
                wants, targets, np.random.default_rng([7, rep])
            )
            moved_v1.append(int((res1 != targets).sum()))
            moved_v2.append(int((res2 != targets).sum()))
        assert_means_close(moved_v1, moved_v2, label="cross-nest moves")
