"""Ant-axis tiling: policy contract, bit-invisibility foundations, memory.

Four layers, smallest to largest:

1. the :mod:`repro.fast.tiling` policy functions (width resolution, span
   generation — including non-divisor widths);
2. the numpy-stream identities the whole design rests on — consecutive
   tile-wide draws consume a ``Generator`` stream exactly like one
   full-width draw (if numpy ever changed this, tiling would silently
   stop being bit-invisible: this suite turns that into a loud failure);
3. the segmented matcher resolution (same pair set as the batched
   resolver, ``O(n)`` scratch) and the tile-aware chunk policy;
4. the arena trim/high-water API and a marked-slow n = 10^5 smoke
   asserting the tiled kernel's peak allocation bound via tracemalloc.

The end-to-end bit-identity statement lives in
``tests/test_golden_digests.py`` (the ``REPRO_TILE_ANTS`` matrix).
"""

from __future__ import annotations

import os
import tracemalloc

import numpy as np
import pytest

from repro.api.runner import (
    MAX_DEFAULT_CHUNK,
    MAX_STATE_ELEMS,
    MIN_DEFAULT_CHUNK,
    default_batch_chunk,
)
from repro.fast.arena import Arena, arena_stats, maybe_trim, shared_arena
from repro.fast.batch_matcher import match_pairs_batch
from repro.fast.tiling import (
    AUTO_TILE_THRESHOLD,
    DEFAULT_TILE_ANTS,
    resolve_tile_width,
    tile_spans,
)


# -- width resolution --------------------------------------------------------


class TestResolveTileWidth:
    def test_disabled_spellings(self):
        for setting in ("none", "off", "0", "None", " OFF "):
            assert resolve_tile_width(10**6, setting) is None

    def test_auto_small_n_untiled(self):
        assert resolve_tile_width(AUTO_TILE_THRESHOLD, "") is None
        assert resolve_tile_width(128, "auto") is None

    def test_auto_large_n_tiled(self):
        assert resolve_tile_width(AUTO_TILE_THRESHOLD + 1, "") == DEFAULT_TILE_ANTS
        assert resolve_tile_width(10**6, "auto") == DEFAULT_TILE_ANTS

    def test_explicit_width(self):
        assert resolve_tile_width(10**6, "4096") == 4096
        assert resolve_tile_width(128, "48") == 48

    def test_width_at_or_above_n_is_untiled(self):
        # A single full-width tile IS the untiled path; report it as such.
        assert resolve_tile_width(128, "128") is None
        assert resolve_tile_width(128, "135") is None
        assert resolve_tile_width(128, "1000") is None

    def test_garbage_falls_back_to_auto(self):
        # A bad environment variable must never break a run.
        assert resolve_tile_width(128, "ants") is None
        assert resolve_tile_width(10**6, "ants") == DEFAULT_TILE_ANTS
        assert resolve_tile_width(10**6, "-5") == DEFAULT_TILE_ANTS

    def test_env_lookup(self, monkeypatch):
        monkeypatch.setenv("REPRO_TILE_ANTS", "777")
        assert resolve_tile_width(10**6) == 777
        monkeypatch.delenv("REPRO_TILE_ANTS")
        assert resolve_tile_width(10**6) == DEFAULT_TILE_ANTS


class TestTileSpans:
    def test_exact_divisor(self):
        assert list(tile_spans(12, 4)) == [(0, 4), (4, 8), (8, 12)]

    def test_remainder_final_span(self):
        assert list(tile_spans(10, 4)) == [(0, 4), (4, 8), (8, 10)]

    def test_single_span_when_tile_covers_n(self):
        assert list(tile_spans(7, 7)) == [(0, 7)]
        assert list(tile_spans(7, 100)) == [(0, 7)]

    def test_spans_partition_exactly(self):
        for n, tile in ((1, 1), (128, 48), (1000, 135), (65536, 16384)):
            spans = list(tile_spans(n, tile))
            assert spans[0][0] == 0 and spans[-1][1] == n
            for (_, hi_a), (lo_b, _) in zip(spans, spans[1:]):
                assert hi_a == lo_b


# -- the stream identities tiling rests on -----------------------------------


class TestStreamIdentity:
    """Tile-wide sequential draws == one full-width draw, per method."""

    def test_uniform_out_chunks(self):
        full = np.random.default_rng(7).random(1000)
        tiled = np.empty(1000)
        rng = np.random.default_rng(7)
        for lo, hi in tile_spans(1000, 135):
            rng.random(out=tiled[lo:hi])
        assert np.array_equal(full, tiled)

    def test_uniform_size_chunks(self):
        # flip_tile's `rng.random(width)` form.
        full = np.random.default_rng(9).random(1000)
        rng = np.random.default_rng(9)
        tiled = np.concatenate(
            [rng.random(hi - lo) for lo, hi in tile_spans(1000, 64)]
        )
        assert np.array_equal(full, tiled)

    def test_standard_normal_out_chunks(self):
        full = np.random.default_rng(11).standard_normal(1000)
        tiled = np.empty(1000)
        rng = np.random.default_rng(11)
        for lo, hi in tile_spans(1000, 333):
            rng.standard_normal(out=tiled[lo:hi])
        assert np.array_equal(full, tiled)

    def test_compare_commutes_with_chunking(self):
        # `random(n) < p` == `random(out=buf); less(buf, p)` per chunk.
        p = np.random.default_rng(0).random(1000)
        full = np.random.default_rng(13).random(1000) < p
        tiled = np.empty(1000, dtype=bool)
        rng = np.random.default_rng(13)
        buf = np.empty(1000)
        for lo, hi in tile_spans(1000, 100):
            rng.random(out=buf[lo:hi])
            np.less(buf[lo:hi], p[lo:hi], out=tiled[lo:hi])
        assert np.array_equal(full, tiled)


# -- segmented matcher resolution --------------------------------------------


class TestSegmentedMatcher:
    @staticmethod
    def _pair_set(sel_src, sel_dst):
        # Materialize immediately: a compiled backend's resolver returns
        # arena views valid only until its next call (the kernels consume
        # them in place), so pair sets must be captured per call, not
        # compared as live arrays across calls.
        return set(zip(np.asarray(sel_src).tolist(), np.asarray(sel_dst).tolist()))

    def test_same_pair_set_as_batched(self):
        rng = np.random.default_rng(21)
        wants = rng.random((6, 50)) < 0.4
        batched = self._pair_set(
            *match_pairs_batch(
                wants, [np.random.default_rng(100 + b) for b in range(6)]
            )
        )
        segmented = self._pair_set(
            *match_pairs_batch(
                wants,
                [np.random.default_rng(100 + b) for b in range(6)],
                segmented=True,
            )
        )
        assert batched == segmented

    def test_rows_without_attempts(self):
        wants = np.zeros((4, 20), dtype=bool)
        wants[1, 3] = wants[1, 7] = wants[3, 0] = True
        rngs = [np.random.default_rng(b) for b in range(4)]
        got = self._pair_set(*match_pairs_batch(wants, rngs, segmented=True))
        rngs2 = [np.random.default_rng(b) for b in range(4)]
        ref = self._pair_set(*match_pairs_batch(wants, rngs2))
        assert got == ref

    def test_no_attempts_at_all(self):
        wants = np.zeros((3, 10), dtype=bool)
        sel_src, sel_dst = match_pairs_batch(
            wants, [np.random.default_rng(b) for b in range(3)], segmented=True
        )
        assert len(sel_src) == 0 and len(sel_dst) == 0

    def test_segmented_keys_are_global_int64(self):
        rng = np.random.default_rng(33)
        wants = rng.random((5, 40)) < 0.5
        sel_src, sel_dst = match_pairs_batch(
            wants,
            [np.random.default_rng(b) for b in range(5)],
            segmented=True,
        )
        assert sel_src.dtype == np.int64
        # Keys land in their trial's global range, not tile-local 0..n.
        assert sel_src.max() >= 40  # some pair beyond trial 0
        assert (sel_src // 40 == sel_dst // 40).all()


# -- tile-aware chunk policy -------------------------------------------------


class TestDefaultBatchChunk:
    def test_classic_operating_point(self):
        assert default_batch_chunk(4096) == 64

    def test_small_n_ceiling(self):
        assert default_batch_chunk(1) == MAX_DEFAULT_CHUNK
        assert default_batch_chunk(128) == MAX_DEFAULT_CHUNK

    def test_tiled_regime_keeps_floor(self):
        # Untiled 65536 would hit the MIN floor on scratch grounds; the
        # tile-aware scratch term keeps it there, the state cap agrees.
        assert default_batch_chunk(65536) == MIN_DEFAULT_CHUNK

    def test_million_ants_state_capped(self):
        assert default_batch_chunk(10**6) == MAX_STATE_ELEMS // 10**6 == 8

    def test_gargantuan_single_trial_chunks(self):
        assert default_batch_chunk(MAX_STATE_ELEMS) == 1
        assert default_batch_chunk(MAX_STATE_ELEMS * 4) == 1

    def test_never_below_one(self):
        for n in (1, 4096, 10**6, 10**9):
            assert default_batch_chunk(n) >= 1

    def test_explicit_tile_env_widens_huge_n_chunks(self, monkeypatch):
        monkeypatch.setenv("REPRO_TILE_ANTS", "none")
        untiled = default_batch_chunk(10**6)
        monkeypatch.setenv("REPRO_TILE_ANTS", "16384")
        tiled = default_batch_chunk(10**6)
        # Both obey the state cap; the scratch term can only help.
        assert tiled == untiled == 8


# -- arena trim / high-water -------------------------------------------------


class TestArenaRelease:
    def test_nbytes_tracked_incrementally(self):
        arena = Arena()
        arena.buf("a", (10, 10), np.float64)
        arena.buf("b", (5,), np.int32)
        assert arena.nbytes() == 800 + 20
        arena.buf("a", (20, 10), np.float64)  # grows: replaces backing
        assert arena.nbytes() == 1600 + 20

    def test_high_water_survives_release(self):
        arena = Arena()
        arena.buf("big", (1000, 100), np.float64)
        peak = arena.nbytes()
        released = arena.release()
        assert released == peak
        assert arena.nbytes() == 0
        assert arena.high_water_bytes == peak

    def test_release_to_target_drops_largest_first(self):
        arena = Arena()
        arena.buf("small", (10,), np.float64)  # 80 B
        arena.buf("large", (10000,), np.float64)  # 80 KB
        arena.release(target_bytes=1000)
        assert arena.nbytes() == 80  # the small survivor
        arena.buf("small", (10,), np.float64)  # still pooled: no growth
        assert arena.nbytes() == 80

    def test_release_noop_under_target(self):
        arena = Arena()
        arena.buf("x", (10,), np.float64)
        assert arena.release(target_bytes=10**6) == 0
        assert arena.nbytes() == 80

    def test_clear_resets_total(self):
        arena = Arena()
        arena.buf("x", (10,), np.float64)
        arena.clear()
        assert arena.nbytes() == 0

    def test_arena_stats_aggregates(self):
        before = arena_stats()
        arena = Arena()
        arena.buf("x", (1000,), np.float64)
        after = arena_stats()
        assert after["arenas"] >= before["arenas"] + 1
        assert after["retained_bytes"] >= before["retained_bytes"] + 8000
        assert after["high_water_bytes"] >= after["retained_bytes"]

    def test_maybe_trim_respects_env(self, monkeypatch):
        arena = Arena()
        arena.buf("x", (10000,), np.float64)
        monkeypatch.delenv("REPRO_ARENA_TRIM_BYTES", raising=False)
        assert maybe_trim(arena) == 0
        monkeypatch.setenv("REPRO_ARENA_TRIM_BYTES", "not a number")
        assert maybe_trim(arena) == 0
        monkeypatch.setenv("REPRO_ARENA_TRIM_BYTES", "0")
        assert maybe_trim(arena) == 80000
        assert arena.nbytes() == 0

    def test_maybe_trim_defaults_to_shared_arena(self, monkeypatch):
        shared_arena().buf("tiling.test", (1000,), np.float64)
        monkeypatch.setenv("REPRO_ARENA_TRIM_BYTES", "0")
        assert maybe_trim() > 0
        assert shared_arena().nbytes() == 0


# -- the n = 10^5 peak-memory smoke ------------------------------------------


@pytest.mark.slow
@pytest.mark.skipif(
    os.environ.get("REPRO_RUN_SLOW", "") != "1",
    reason="large-n scale smoke; set REPRO_RUN_SLOW=1 (CI scale-smoke job)",
)
def test_tiled_peak_allocation_bound_at_1e5(monkeypatch):
    """Tiled n = 10^5 peaks strictly below untiled, by the scratch margin.

    What tiling removes is the ``O(trials * n)`` float64 scratch (coins /
    prob planes) and the ``O(trials * n)`` matcher ``q`` array; what it
    deliberately keeps are the int32/bool state planes and the
    attempts-sized matcher key transients, which an untiled run carries
    identically.  So the honest memory statement — and the one the bench
    records on the full n-curve — is *relative*: the tiled run's
    tracemalloc peak must sit well below the untiled run's, with the gap
    on the order of the scratch it deleted.  (Measured ratio ~0.69 at
    this shape; asserted < 0.85 for slack across numpy versions.)
    """
    from repro.api import run_batch
    from repro.api.scenario import Scenario
    from repro.model.nests import NestConfig

    n, trials = 100_000, 4
    scenarios = [
        Scenario(
            algorithm="simple",
            n=n,
            nests=NestConfig(qualities=(0.3, 0.9)),
            seed=s,
        )
        for s in range(trials)
    ]

    def traced_peak(tile_setting: str) -> int:
        monkeypatch.setenv("REPRO_TILE_ANTS", tile_setting)
        # Warm pass: arena growth, numpy internals, lazy imports — then
        # drop the arena so both measured runs rebuild identical pools.
        reports = run_batch(scenarios, workers=1, batch_chunk=trials)
        assert all(r.converged for r in reports)
        shared_arena().release()
        tracemalloc.start()
        run_batch(scenarios, workers=1, batch_chunk=trials)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak

    untiled = traced_peak("none")
    tiled = traced_peak("auto")
    assert tiled < 0.85 * untiled, (
        f"tiled peak {tiled} bytes vs untiled {untiled} at n={n}: tiling "
        "no longer removes the full-width scratch planes"
    )
