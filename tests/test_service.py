"""The study service: jobs, in-flight dedupe, daemon, and the HTTP surface."""

import json
import threading
import urllib.request

import pytest

import repro.api.scheduler as scheduler_module
from repro.api import ResultCache, SQLiteStore, Study, Sweep, grid, nests_spec, run_study
from repro.service import DedupingCache, JobQueue, StudyService
from repro.service.client import ServiceClient, ServiceError
from repro.service.http import serve


def study(seed: int = 9, ns=(16, 32), trials: int = 3, name: str = "svc-study") -> Study:
    return Study(
        name=name,
        sweep=Sweep(
            base={
                "algorithm": "simple",
                "nests": nests_spec("all_good", k=2),
                "seed": seed,
                "max_rounds": 10_000,
            },
            axes=(grid("n", ns),),
        ),
        trials=trials,
        metrics=("n_trials", "success_rate", "median_rounds"),
    )


@pytest.fixture
def service(tmp_path):
    cache = ResultCache(tmp_path, store=SQLiteStore(tmp_path, shards=2))
    with StudyService(cache=cache, workers=1, executors=2) as svc:
        yield svc


@pytest.fixture
def client(service):
    server = serve(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield ServiceClient(server.url)
    finally:
        server.shutdown()
        server.server_close()


class TestJobQueue:
    def test_priority_then_fifo(self):
        queue = JobQueue()
        low1 = queue.submit(study(), priority=0)
        high = queue.submit(study(), priority=5)
        low2 = queue.submit(study(), priority=0)
        assert queue.pop(0) is high
        assert queue.pop(0) is low1
        assert queue.pop(0) is low2
        assert queue.pop(0) is None  # empty: times out, not blocks

    def test_close_wakes_blocked_pop(self):
        queue = JobQueue()
        out = []
        thread = threading.Thread(target=lambda: out.append(queue.pop()))
        thread.start()
        queue.close()
        thread.join(5)
        assert not thread.is_alive()
        assert out == [None]
        with pytest.raises(RuntimeError):
            queue.submit(study())

    def test_jobs_listing_and_lookup(self):
        queue = JobQueue()
        job = queue.submit(study(), cells_total=2)
        assert queue.get(job.id) is job
        assert queue.get("job-999") is None
        assert [j.id for j in queue.jobs()] == [job.id]
        snapshot = job.snapshot()
        assert snapshot["state"] == "queued"
        assert snapshot["cells_total"] == 2
        assert snapshot["cells_done"] == 0


class TestDedupingCache:
    def test_passthrough_hit_and_claim_on_miss(self, tmp_path):
        cache = DedupingCache(ResultCache(tmp_path))
        payload = {"cell": 1}
        assert cache.load(payload) is None  # miss -> this caller owns it
        assert cache.inflight == 1
        # The owner stores; the claim clears and later loads hit.
        stats = run_study(study(ns=(16,)), cache=None).cells[0].stats
        cache.store(payload, stats, {"m": 1.0})
        assert cache.inflight == 0
        entry = cache.load(payload)
        assert entry is not None
        assert entry[1] == {"m": 1.0}
        assert cache.hits == 1

    def test_waiter_blocks_until_owner_stores(self, tmp_path):
        cache = DedupingCache(ResultCache(tmp_path), poll_seconds=0.05)
        payload = {"cell": 2}
        stats = run_study(study(ns=(16,)), cache=None).cells[0].stats
        assert cache.load(payload) is None  # owner claim
        got = []
        waiter = threading.Thread(target=lambda: got.append(cache.load(payload)))
        waiter.start()
        waiter.join(0.2)
        assert waiter.is_alive()  # parked behind the in-flight claim
        cache.store(payload, stats, {"m": 2.0})
        waiter.join(5)
        assert not waiter.is_alive()
        assert got[0] is not None and got[0][1] == {"m": 2.0}
        assert cache.dedupe_waits == 1

    def test_release_on_failure_hands_claim_to_waiter(self, tmp_path):
        cache = DedupingCache(ResultCache(tmp_path), poll_seconds=0.05)
        payload = {"cell": 3}
        assert cache.load(payload) is None  # owner claim
        got = []
        waiter = threading.Thread(target=lambda: got.append(cache.load(payload)))
        waiter.start()
        waiter.join(0.2)
        assert waiter.is_alive()
        cache.release(payload)  # the owner's compute failed
        waiter.join(5)
        assert not waiter.is_alive()
        # The waiter re-raced, found no entry, and now owns the claim.
        assert got == [None]
        assert cache.inflight == 1

    def test_scheduler_releases_claim_when_compute_raises(self, tmp_path, monkeypatch):
        cache = DedupingCache(ResultCache(tmp_path))

        def boom(*args, **kwargs):
            raise RuntimeError("kernel exploded")

        monkeypatch.setattr(scheduler_module, "run_batch", boom)
        result = run_study(study(ns=(16,)), cache=cache)
        assert result.quarantined  # the cell failed...
        assert cache.inflight == 0  # ...but no claim leaked

    def test_stats_include_dedupe_counters(self, tmp_path):
        cache = DedupingCache(ResultCache(tmp_path))
        stats = cache.stats()
        assert stats["inflight"] == 0
        assert stats["dedupe_waits"] == 0
        assert "hits" in stats and "entries" in stats


class TestStudyService:
    def test_submit_runs_to_done(self, service):
        job = service.submit(study())
        assert job.wait(60)
        assert job.state == "done"
        assert job.cells_total == 2
        assert len(job.events) == 2
        assert job.result.table.equals(run_study(study(), cache=None).table)

    def test_submit_accepts_raw_dicts_and_validates(self, service):
        job = service.submit(study().to_dict())
        assert job.wait(60)
        assert job.state == "done"
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            service.submit({"name": "bad", "sweep": {"axes": []}, "trials": 0})

    def test_concurrent_same_study_computes_each_cell_once(
        self, service, monkeypatch
    ):
        calls = []
        lock = threading.Lock()
        real_run_batch = scheduler_module.run_batch
        barrier_delay = threading.Event()

        def counting_run_batch(scenarios, **kwargs):
            with lock:
                calls.append(len(scenarios))
            barrier_delay.wait(0.15)  # widen the in-flight window
            return real_run_batch(scenarios, **kwargs)

        monkeypatch.setattr(scheduler_module, "run_batch", counting_run_batch)
        twin = study(seed=77, name="twin")
        job_a = service.submit(twin)
        job_b = service.submit(twin)
        assert job_a.wait(120) and job_b.wait(120)
        assert job_a.state == "done" and job_b.state == "done"
        # Exactly one compute per distinct cell, however many requesters.
        assert len(calls) == 2
        assert job_a.result.table.equals(job_b.result.table)
        combined = (
            job_a.result.simulated_trials + job_b.result.simulated_trials
        )
        assert combined == sum(calls)
        served_warm = job_a.result.cache_hits + job_b.result.cache_hits
        assert served_warm == 2  # the second requester's two cells

    def test_failed_job_reports_error(self, service, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("substrate gone")

        monkeypatch.setattr(scheduler_module, "run_batch", boom)
        # fail-fast policy -> the job fails instead of quarantining cells
        from repro.api import ExecutionPolicy

        service.policy = ExecutionPolicy(quarantine=False, backoff_base=0)
        job = service.submit(study(seed=31, name="doomed"))
        assert job.wait(60)
        assert job.state == "failed"
        assert "CellQuarantined" in job.error

    def test_quarantined_study_lands_in_quarantined_state(
        self, service, monkeypatch
    ):
        def boom(*args, **kwargs):
            raise RuntimeError("substrate gone")

        monkeypatch.setattr(scheduler_module, "run_batch", boom)
        from repro.api import ExecutionPolicy

        service.policy = ExecutionPolicy(backoff_base=0)
        job = service.submit(study(seed=32, name="limping"))
        assert job.wait(60)
        assert job.state == "quarantined"
        assert job.result is not None
        assert "status" in job.result.table.column_names

    def test_stats_shape(self, service):
        job = service.submit(study())
        job.wait(60)
        stats = service.stats()
        assert stats["workers"] == 1
        assert stats["executors"] == 2
        assert stats["jobs"].get("done") == 1
        assert stats["cache"]["entries"] == 2


class TestHTTPSurface:
    def test_submit_status_stream_result(self, client):
        direct = run_study(study(), cache=None)
        snapshot = client.submit(study())
        job_id = snapshot["job"]
        events = list(client.iter_cells(job_id))
        assert [event["cell"] for event in events] == [0, 1]
        final = client.wait(job_id, timeout=60)
        assert final["state"] == "done"
        assert final["cells_done"] == final["cells_total"] == 2
        data = client.result(job_id)
        assert data["table"] == direct.table.to_dict()
        assert data["simulated_trials"] == direct.simulated_trials

    def test_run_study_is_bit_identical_to_local(self, client):
        via_service = client.run_study(study(), timeout=60)
        local = run_study(study(), cache=None)
        assert via_service.table.equals(local.table)
        # Same study again: every cell served warm from the daemon cache.
        warm = client.run_study(study(), timeout=60)
        assert warm.table.equals(local.table)
        assert warm.cache_hits == 2
        assert warm.simulated_trials == 0

    def test_stream_resumes_with_since(self, client):
        job_id = client.submit(study())["job"]
        client.wait(job_id, timeout=60)
        all_events = list(client.iter_cells(job_id))
        tail = list(client.iter_cells(job_id, since=1))
        assert tail == all_events[1:]

    def test_error_statuses(self, client):
        with pytest.raises(ServiceError, match="404"):
            client.status("job-999")
        with pytest.raises(ServiceError, match="400"):
            client._request("POST", "/jobs", {"study": {"name": "broken"}})
        with pytest.raises(ServiceError, match="404"):
            client._request("GET", "/nope")

    def test_result_before_terminal_is_409(self, client, monkeypatch):
        gate = threading.Event()
        real_run_batch = scheduler_module.run_batch

        def gated_run_batch(scenarios, **kwargs):
            gate.wait(30)
            return real_run_batch(scenarios, **kwargs)

        monkeypatch.setattr(scheduler_module, "run_batch", gated_run_batch)
        job_id = client.submit(study(seed=55, name="slow"))["job"]
        try:
            with pytest.raises(ServiceError, match="409"):
                client.result(job_id)
        finally:
            gate.set()
        client.wait(job_id, timeout=60)

    def test_healthz_and_stats(self, client):
        assert client.healthy()
        stats = client.stats()
        assert "uptime_seconds" in stats
        assert stats["cache"]["kind"] == "sqlite"

    def test_jobs_listing(self, client):
        first = client.submit(study())["job"]
        second = client.submit(study(seed=12, name="other"))["job"]
        listed = [job["job"] for job in client.jobs()]
        assert listed[:2] == [second, first]  # newest first

    def test_shutdown_endpoint(self, tmp_path):
        cache = ResultCache(tmp_path / "c", store=SQLiteStore(tmp_path / "c"))
        service = StudyService(cache=cache, workers=1, executors=1)
        server = serve(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(server.url)
        assert client.healthy()
        assert client.shutdown()["ok"] is True
        thread.join(10)
        assert not thread.is_alive()
        assert not client.healthy()


class TestExperimentsRouting:
    def test_execute_study_routes_through_service(self, client, monkeypatch):
        from repro.experiments.common import execute_study

        monkeypatch.setenv("REPRO_SERVICE_URL", client.url)
        routed = execute_study(study())
        local = run_study(study(), cache=None)
        assert routed.table.equals(local.table)

    def test_execute_study_stays_local_without_env(self, monkeypatch):
        from repro.experiments.common import execute_study

        monkeypatch.delenv("REPRO_SERVICE_URL", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        result = execute_study(study())
        assert result.table.n_rows == 2
