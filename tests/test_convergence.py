"""Tests for convergence criteria."""

import numpy as np
import pytest

from repro.model.actions import Search
from repro.model.environment import Environment
from repro.model.nests import NestConfig
from repro.model.problem import HouseHuntingProblem
from repro.sim.convergence import (
    AllAntsAtOneNest,
    CommittedToSingleGoodNest,
    NeverConverges,
    StableForRounds,
    UnanimousCommitment,
    is_faulty,
)
from repro.sim.engine import Simulation
from repro.sim.faults import ByzantineAnt, CrashedAnt, CrashMode
from repro.sim.noise import CountNoise, NoisyAnt
from repro.sim.rng import RandomSource
from tests.test_problem import StubAnt


def make_record(ants, nests, counts=None):
    """Build a minimal RoundRecord-alike for criterion unit tests."""
    from repro.model.environment import EnvironmentSnapshot
    from repro.model.recruitment import MatchOutcome
    from repro.sim.engine import RoundRecord

    problem = HouseHuntingProblem(len(ants), nests)
    counts = (
        np.asarray(counts)
        if counts is not None
        else np.zeros(nests.k + 1, dtype=np.int64)
    )
    snapshot = EnvironmentSnapshot(
        round=1, counts=counts, locations=np.zeros(len(ants), dtype=np.int64)
    )
    return RoundRecord(
        round=1,
        actions=tuple(Search() for _ in ants),
        match=MatchOutcome({}, {}, frozenset()),
        snapshot=snapshot,
        status=problem.status(ants),
    )


@pytest.fixture
def nests():
    return NestConfig.binary(3, {1})


class TestCommittedToSingleGoodNest:
    def test_solved(self, nests):
        ants = [StubAnt(i, 1) for i in range(3)]
        criterion = CommittedToSingleGoodNest()
        assert criterion.update(ants, make_record(ants, nests))

    def test_bad_nest_agreement_is_not_solved(self, nests):
        ants = [StubAnt(i, 2) for i in range(3)]
        criterion = CommittedToSingleGoodNest()
        assert not criterion.update(ants, make_record(ants, nests))

    def test_require_settled(self, nests):
        ants = [StubAnt(0, 1, settled=True), StubAnt(1, 1, settled=False)]
        criterion = CommittedToSingleGoodNest(require_settled=True)
        assert not criterion.update(ants, make_record(ants, nests))

    def test_exclude_faulty_ignores_crashed(self, nests):
        healthy = [StubAnt(i, 1) for i in range(2)]
        zombie = CrashedAnt(StubAnt(2, 2), crash_round=1, mode=CrashMode.AT_HOME)
        zombie._rounds_started = 5  # simulate having crashed
        ants = healthy + [zombie]
        criterion = CommittedToSingleGoodNest(exclude_faulty=True)
        criterion.bind(HouseHuntingProblem(3, nests))
        assert criterion.update(ants, make_record(ants, nests))

    def test_exclude_faulty_requires_bound_problem(self, nests):
        ants = [StubAnt(0, 1)]
        criterion = CommittedToSingleGoodNest(exclude_faulty=True)
        with pytest.raises(RuntimeError):
            criterion.update(ants, make_record(ants, nests))


class TestIsFaulty:
    def test_healthy_ant(self):
        assert not is_faulty(StubAnt(0, 1))

    def test_crashed_ant(self):
        zombie = CrashedAnt(StubAnt(0, 1), crash_round=1, mode=CrashMode.AT_NEST)
        assert not is_faulty(zombie)  # not yet crashed
        zombie._rounds_started = 1
        assert is_faulty(zombie)

    def test_byzantine_ant(self):
        byz = ByzantineAnt(0, 4, np.random.default_rng(0))
        assert is_faulty(byz)

    def test_sees_through_wrappers(self):
        zombie = CrashedAnt(StubAnt(0, 1), crash_round=1, mode=CrashMode.AT_HOME)
        zombie._rounds_started = 2
        wrapped = NoisyAnt(
            zombie, CountNoise(relative_sigma=0.1), np.random.default_rng(0)
        )
        assert is_faulty(wrapped)


class TestUnanimousCommitment:
    def test_accepts_bad_nest_agreement(self, nests):
        ants = [StubAnt(i, 2) for i in range(3)]
        assert UnanimousCommitment().update(ants, make_record(ants, nests))

    def test_rejects_split(self, nests):
        ants = [StubAnt(0, 1), StubAnt(1, 2)]
        assert not UnanimousCommitment().update(ants, make_record(ants, nests))


class TestStableForRounds:
    def test_requires_consecutive_holds(self, nests):
        ants = [StubAnt(i, 1) for i in range(2)]
        criterion = StableForRounds(CommittedToSingleGoodNest(), window=3)
        record = make_record(ants, nests)
        assert not criterion.update(ants, record)
        assert not criterion.update(ants, record)
        assert criterion.update(ants, record)

    def test_streak_resets(self, nests):
        good = [StubAnt(i, 1) for i in range(2)]
        split = [StubAnt(0, 1), StubAnt(1, 2)]
        criterion = StableForRounds(CommittedToSingleGoodNest(), window=2)
        assert not criterion.update(good, make_record(good, nests))
        assert not criterion.update(split, make_record(split, nests))
        assert not criterion.update(good, make_record(good, nests))
        assert criterion.update(good, make_record(good, nests))

    def test_reset(self, nests):
        ants = [StubAnt(i, 1) for i in range(2)]
        criterion = StableForRounds(CommittedToSingleGoodNest(), window=2)
        criterion.update(ants, make_record(ants, nests))
        criterion.reset()
        assert not criterion.update(ants, make_record(ants, nests))

    def test_window_validation(self):
        with pytest.raises(ValueError):
            StableForRounds(NeverConverges(), window=0)


class TestAllAntsAtOneNest:
    def test_all_at_one(self, nests):
        ants = [StubAnt(i, 1) for i in range(4)]
        record = make_record(ants, nests, counts=[0, 4, 0, 0])
        assert AllAntsAtOneNest().update(ants, record)

    def test_someone_home(self, nests):
        ants = [StubAnt(i, 1) for i in range(4)]
        record = make_record(ants, nests, counts=[1, 3, 0, 0])
        assert not AllAntsAtOneNest().update(ants, record)

    def test_two_nests_occupied(self, nests):
        ants = [StubAnt(i, 1) for i in range(4)]
        record = make_record(ants, nests, counts=[0, 2, 2, 0])
        assert not AllAntsAtOneNest().update(ants, record)


class TestNeverConverges:
    def test_never(self, nests):
        ants = [StubAnt(i, 1) for i in range(2)]
        criterion = NeverConverges()
        assert not criterion.update(ants, make_record(ants, nests))


class TestEngineIntegration:
    def test_never_converges_runs_to_cap(self, nests):
        from repro.core.colony import simple_factory
        from repro.sim.run import build_colony

        source = RandomSource(1)
        colony = build_colony(simple_factory(), 16, source.colony)
        sim = Simulation(
            colony,
            Environment(16, nests),
            source,
            criterion=NeverConverges(),
            max_rounds=30,
        )
        result = sim.run()
        assert result.rounds_executed == 30
        assert not result.converged
