"""Property-based tests (hypothesis) for core invariants.

These attack the substrate with generated inputs: the recruitment matcher
(the model's trickiest component), the environment's conservation laws, the
table formatter, and the statistics helpers.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import wilson_interval
from repro.model.nests import NestConfig
from repro.model.recruitment import match_arrays
from repro.sim.rng import RandomSource


@st.composite
def matcher_inputs(draw):
    """A participant set: activity flags, targets, and a seed."""
    m = draw(st.integers(min_value=1, max_value=64))
    active = draw(
        st.lists(st.booleans(), min_size=m, max_size=m).map(
            lambda flags: np.asarray(flags, dtype=bool)
        )
    )
    targets = draw(
        st.lists(
            st.integers(min_value=1, max_value=8), min_size=m, max_size=m
        ).map(lambda values: np.asarray(values, dtype=np.int64))
    )
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return active, targets, seed


class TestMatcherProperties:
    @given(matcher_inputs())
    @settings(max_examples=200, deadline=None)
    def test_matching_is_well_formed(self, inputs):
        active, targets, seed = inputs
        results, recruiter_of, is_recruiter = match_arrays(
            active, targets, np.random.default_rng(seed)
        )
        m = len(active)
        # 1. Only active slots ever recruit.
        assert not np.any(is_recruiter & ~active)
        # 2. recruiter_of points at actual recruiters (or -1).
        recruited = recruiter_of != -1
        assert np.all(is_recruiter[recruiter_of[recruited]])
        # 3. Each recruiter recruits exactly one slot.
        recruiters, counts = np.unique(recruiter_of[recruited], return_counts=True)
        assert np.all(counts == 1)
        assert len(recruiters) == int(is_recruiter.sum())
        # 4. A slot is never both a recruiter and someone else's recruitee.
        both = is_recruiter & recruited
        assert np.all(recruiter_of[both] == np.flatnonzero(both))
        # 5. Results: recruited slots echo their recruiter's target, the
        #    rest echo their own.
        expected = targets.copy()
        expected[recruited] = targets[recruiter_of[recruited]]
        assert np.array_equal(results, expected)

    @given(matcher_inputs())
    @settings(max_examples=100, deadline=None)
    def test_deterministic_in_seed(self, inputs):
        active, targets, seed = inputs
        first = match_arrays(active, targets, np.random.default_rng(seed))
        second = match_arrays(active, targets, np.random.default_rng(seed))
        for a, b in zip(first, second):
            assert np.array_equal(a, b)


class TestEnvironmentProperties:
    @given(
        n=st.integers(min_value=1, max_value=64),
        k=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        rounds=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_ants_are_conserved(self, n, k, seed, rounds):
        from repro.model.environment import Environment

        rng = np.random.default_rng(seed)
        env = Environment(n, NestConfig.all_good(k))
        for _ in range(rounds):
            destinations = rng.integers(0, k + 1, size=n)
            env.apply_moves(destinations)
            counts = env.counts()
            assert counts.sum() == n
            assert counts.min() >= 0
        # Every ant's current location is known to it.
        for ant in range(n):
            assert env.knows(ant, env.location_of(ant))


class TestSimulationProperties:
    @given(
        n=st.integers(min_value=2, max_value=48),
        k=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_simple_algorithm_total_population_invariant(self, n, k, seed):
        from repro.fast.simple_fast import simulate_simple

        result = simulate_simple(
            n, NestConfig.all_good(k), seed=seed, max_rounds=4000,
            record_history=True,
        )
        history = result.population_history
        assert (history.sum(axis=1) == n).all()
        if result.converged:
            assert result.chosen_nest is not None
            assert 1 <= result.chosen_nest <= k
            assert result.final_counts[result.chosen_nest] == n

    @given(
        n=st.integers(min_value=2, max_value=48),
        k=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_optimal_algorithm_population_invariant(self, n, k, seed):
        from repro.fast.optimal_fast import simulate_optimal

        result = simulate_optimal(
            n, NestConfig.all_good(k), seed=seed, max_rounds=4000,
            record_history=True,
        )
        history = result.population_history
        assert (history.sum(axis=1) == n).all()


class TestStatsProperties:
    @given(
        trials=st.integers(min_value=1, max_value=10_000),
        data=st.data(),
    )
    @settings(max_examples=200, deadline=None)
    def test_wilson_interval_sane(self, trials, data):
        successes = data.draw(st.integers(min_value=0, max_value=trials))
        lo, hi = wilson_interval(successes, trials)
        assert 0.0 <= lo <= successes / trials <= hi <= 1.0


class TestRandomSourceProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        name=st.text(
            alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            min_size=1,
            max_size=12,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_streams_reproducible_for_any_name(self, seed, name):
        a = RandomSource(seed).stream(name).random(3)
        b = RandomSource(seed).stream(name).random(3)
        assert np.array_equal(a, b)
