"""Tests for the robustness extensions (re-search, approximate n)."""

import numpy as np
import pytest

from repro.core.states import SimplePhase, SimpleState
from repro.exceptions import ConfigurationError
from repro.extensions.robust import (
    ApproximateNAnt,
    RetryingSimpleAnt,
    approximate_n_factory,
    retrying_factory,
)
from repro.model.actions import Search, SearchResult
from repro.model.nests import NestConfig
from repro.sim.run import run_trial


class TestRetryingSimpleAnt:
    def test_passive_ant_researches(self):
        ant = RetryingSimpleAnt(
            0, 16, np.random.default_rng(0), research_probability=1.0
        )
        ant.decide()
        ant.observe(SearchResult(nest=1, quality=0.0, count=4))
        assert ant.state is SimpleState.PASSIVE
        assert isinstance(ant.decide(), Search)

    def test_research_success_activates_and_resyncs(self):
        ant = RetryingSimpleAnt(
            0, 16, np.random.default_rng(0), research_probability=1.0
        )
        ant.decide()
        ant.observe(SearchResult(nest=1, quality=0.0, count=4))
        ant.decide()  # the re-search
        ant.observe(SearchResult(nest=3, quality=1.0, count=2))
        assert ant.state is SimpleState.ACTIVE
        assert ant.committed_nest == 3
        # Next global round is an assessment round: the ant must rejoin the
        # colony's alternation there, not at a recruit round.
        assert ant.phase is SimplePhase.ASSESS

    def test_research_failure_keeps_passive(self):
        ant = RetryingSimpleAnt(
            0, 16, np.random.default_rng(0), research_probability=1.0
        )
        ant.decide()
        ant.observe(SearchResult(nest=1, quality=0.0, count=4))
        ant.decide()
        ant.observe(SearchResult(nest=2, quality=0.0, count=2))
        assert ant.state is SimpleState.PASSIVE
        assert ant.committed_nest == 1  # old commitment kept

    def test_active_ants_never_research(self):
        ant = RetryingSimpleAnt(
            0, 16, np.random.default_rng(0), research_probability=1.0
        )
        ant.decide()
        ant.observe(SearchResult(nest=1, quality=1.0, count=4))
        assert not isinstance(ant.decide(), Search)

    def test_escapes_all_bad_initial_search(self):
        """The deadlock plain Algorithm 3 cannot escape: a world where the
        only good nest is unlikely to be found in round 1."""
        nests = NestConfig.binary(8, {8})
        result = run_trial(
            retrying_factory(research_probability=0.2),
            8,  # 8 ants over 8 nests: often nobody finds nest 8 initially
            nests,
            seed=6,
            max_rounds=20_000,
        )
        assert result.converged
        assert result.chosen_nest == 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryingSimpleAnt(
                0, 8, np.random.default_rng(0), research_probability=1.5
            )


class TestApproximateNAnt:
    def test_explicit_estimate_used(self):
        draws = []
        for seed in range(600):
            ant = ApproximateNAnt(
                0, 16, np.random.default_rng(seed), n_estimate=32.0
            )
            ant.decide()
            ant.observe(SearchResult(nest=1, quality=1.0, count=16))
            draws.append(ant.decide().active)
        # count/ñ = 16/32 = 1/2 even though count/n would be 1.
        assert 0.42 < np.mean(draws) < 0.58

    def test_random_estimate_within_factor(self):
        for seed in range(50):
            ant = ApproximateNAnt(
                0, 100, np.random.default_rng(seed), max_factor=2.0
            )
            assert 50.0 <= ant.n_estimate <= 200.0

    def test_probability_clamped(self):
        ant = ApproximateNAnt(0, 16, np.random.default_rng(0), n_estimate=4.0)
        ant.decide()
        ant.observe(SearchResult(nest=1, quality=1.0, count=16))
        assert ant.decide().active  # min(1, 16/4) = 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ApproximateNAnt(0, 8, np.random.default_rng(0), n_estimate=0.0)
        with pytest.raises(ConfigurationError):
            ApproximateNAnt(0, 8, np.random.default_rng(0), max_factor=0.5)

    def test_end_to_end(self, all_good_4):
        result = run_trial(
            approximate_n_factory(max_factor=2.0),
            96,
            all_good_4,
            seed=3,
            max_rounds=8000,
        )
        assert result.converged
