"""Unit tests for the analysis helpers inside the experiment runners."""

import numpy as np
import pytest

from repro.experiments.common import censored_median, summarize_fast_runs, trial_seeds
from repro.experiments.e02_recruitment import tagged_success_probability
from repro.experiments.e03_optimal_dropout import competition_changes
from repro.experiments.e05_simple_gap import sample_initial_gaps
from repro.experiments.e06_simple_dropout import dropout_times
from repro.fast.results import FastRunResult


class TestCommon:
    def test_trial_seeds_independent_and_stable(self):
        first = trial_seeds(5, 3)
        second = trial_seeds(5, 3)
        for a, b in zip(first, second):
            assert a.colony.random(2).tolist() == b.colony.random(2).tolist()
        draws = {tuple(s.colony.random(2)) for s in trial_seeds(5, 4)}
        assert len(draws) == 4

    def test_censored_median(self):
        assert censored_median([10, None, 30], fallback=99) == 20.0
        assert censored_median([None, None], fallback=99) == 99.0

    def test_summarize_fast_runs(self):
        def result(converged, rounds):
            return FastRunResult(
                converged=converged,
                converged_round=rounds if converged else None,
                rounds_executed=rounds or 100,
                chosen_nest=1 if converged else None,
                final_counts=np.array([0, 4]),
            )

        median, success, count = summarize_fast_runs(
            [result(True, 10), result(True, 30), result(False, None)]
        )
        assert median == 20.0
        assert success == pytest.approx(2 / 3)
        assert count == 2


class TestTaggedSuccess:
    def test_returns_trial_count(self, rng):
        successes, trials = tagged_success_probability(8, 0.5, 50, rng)
        assert trials == 50
        assert 0 <= successes <= 50

    def test_solo_recruiter_with_two_ants(self, rng):
        successes, trials = tagged_success_probability(2, 0.0, 400, rng)
        # Fails only by drawing itself: p(success) = 1/2... actually the
        # tagged ant picks uniformly between itself and the other ant.
        assert 0.35 < successes / trials < 0.65


class TestCompetitionChanges:
    def test_extracts_b2_deltas(self):
        # Hand-built history: search row + two blocks of four rows, k=2.
        # B2 rows are indices 2 and 6.
        history = np.array(
            [
                [0, 5, 5],  # round 1 search
                [10, 0, 0],  # B1
                [0, 6, 4],  # B2  <- cohorts measured here
                [0, 6, 4],  # B3
                [10, 0, 0],  # B4
                [10, 0, 0],  # B1
                [0, 8, 2],  # B2  <- deltas: +2 and -2
                [0, 8, 2],  # B3
                [10, 0, 0],  # B4
                [10, 0, 0],
                [0, 10, 0],
                [0, 10, 0],
                [10, 0, 0],
            ]
        )
        changes = competition_changes(history)
        # Row 2 -> 6: +2 (nest 1) and -2 (nest 2); row 6 -> 10: +2 for
        # nest 1 (nest 2's emptying transition is excluded by design).
        assert sorted(changes) == [-2, 2, 2]

    def test_stops_when_single_nest_remains(self):
        history = np.array(
            [
                [0, 10, 0],
                [10, 0, 0],
                [0, 10, 0],  # B2: only one competing nest -> no samples
                [0, 10, 0],
                [10, 0, 0],
                [10, 0, 0],
                [0, 10, 0],
                [0, 10, 0],
                [10, 0, 0],
            ]
        )
        assert competition_changes(history) == []


class TestInitialGaps:
    def test_shapes_and_ranges(self, rng):
        finite, ties, zeros = sample_initial_gaps(100, 4, 500, rng)
        assert len(finite) + zeros <= 500
        assert (finite >= 0).all()
        assert ties >= 0

    def test_two_ants_two_nests(self, rng):
        # With n=2, k=2: either both land together (zero-denominator) or
        # split evenly (tie, eps=0).
        finite, ties, zeros = sample_initial_gaps(2, 2, 300, rng)
        assert (finite == 0).all()
        assert ties + zeros == 300


class TestDropoutTimes:
    def test_detects_extinction(self):
        # Assessment rows at indices 0,2,4,...; nest 2 crosses below the
        # threshold at its second assessment and dies at its fourth.
        history = np.array(
            [
                [0, 8, 8],
                [16, 0, 0],
                [0, 12, 4],  # nest 2 crosses (threshold 5)
                [16, 0, 0],
                [0, 14, 2],
                [16, 0, 0],
                [0, 16, 0],  # extinct: 2 assessments after crossing
                [16, 0, 0],
            ]
        )
        times, resurfaced = dropout_times(history, threshold=5)
        assert times == [4]  # two assessment rows later = 4 rounds
        assert resurfaced == 0

    def test_counts_resurfacing(self):
        history = np.array(
            [
                [0, 12, 4],  # below threshold immediately
                [16, 0, 0],
                [0, 8, 8],  # resurfaces above threshold
                [16, 0, 0],
                [0, 16, 0],  # then dies
                [16, 0, 0],
            ]
        )
        times, resurfaced = dropout_times(history, threshold=5)
        assert resurfaced == 1
        assert times == [4]

    def test_winner_never_counted(self):
        history = np.array(
            [
                [0, 8, 8],
                [16, 0, 0],
                [0, 16, 0],
            ]
        )
        times, _ = dropout_times(history, threshold=5)
        # Nest 1 never went below threshold; nest 2 crossed and died at the
        # same assessment (0 rounds later).
        assert times == [0]
