"""Unit tests for the analysis helpers inside the experiment runners."""

import numpy as np
import pytest

from repro.api.processes import tagged_recruitment_trial
from repro.experiments.common import censored_median, trial_seeds
from repro.experiments.e03_optimal_dropout import competition_changes
from repro.experiments.e06_simple_dropout import dropout_times


class TestCommon:
    def test_trial_seeds_independent_and_stable(self):
        first = trial_seeds(5, 3)
        second = trial_seeds(5, 3)
        for a, b in zip(first, second):
            assert a.colony.random(2).tolist() == b.colony.random(2).tolist()
        draws = {tuple(s.colony.random(2)) for s in trial_seeds(5, 4)}
        assert len(draws) == 4

    def test_censored_median(self):
        assert censored_median([10, None, 30], fallback=99) == 20.0
        assert censored_median([None, None], fallback=99) == 99.0


class TestTaggedSuccess:
    def test_returns_bool_outcomes(self, rng):
        outcomes = [tagged_recruitment_trial(8, 0.5, rng) for _ in range(50)]
        assert all(isinstance(o, bool) for o in outcomes)
        assert 0 <= sum(outcomes) <= 50

    def test_solo_recruiter_with_two_ants(self, rng):
        successes = sum(
            tagged_recruitment_trial(2, 0.0, rng) for _ in range(400)
        )
        # Fails only by drawing itself: the tagged ant picks uniformly
        # between itself and the other ant.
        assert 0.35 < successes / 400 < 0.65


class TestCompetitionChanges:
    def test_extracts_b2_deltas(self):
        # Hand-built history: search row + two blocks of four rows, k=2.
        # B2 rows are indices 2 and 6.
        history = np.array(
            [
                [0, 5, 5],  # round 1 search
                [10, 0, 0],  # B1
                [0, 6, 4],  # B2  <- cohorts measured here
                [0, 6, 4],  # B3
                [10, 0, 0],  # B4
                [10, 0, 0],  # B1
                [0, 8, 2],  # B2  <- deltas: +2 and -2
                [0, 8, 2],  # B3
                [10, 0, 0],  # B4
                [10, 0, 0],
                [0, 10, 0],
                [0, 10, 0],
                [10, 0, 0],
            ]
        )
        changes = competition_changes(history)
        # Row 2 -> 6: +2 (nest 1) and -2 (nest 2); row 6 -> 10: +2 for
        # nest 1 (nest 2's emptying transition is excluded by design).
        assert sorted(changes) == [-2, 2, 2]

    def test_stops_when_competition_ends(self):
        history = np.array(
            [
                [0, 5, 5],
                [10, 0, 0],
                [0, 10, 0],  # only one nest occupied: competition over
                [0, 10, 0],
                [10, 0, 0],
                [10, 0, 0],
                [0, 10, 0],
                [0, 10, 0],
                [10, 0, 0],
            ]
        )
        assert competition_changes(history) == []


class TestInitialGaps:
    def test_split_process_shapes(self):
        # The E5 sampler is the registered initial_split process now; check
        # its per-trial extras directly through the API.
        from repro.api import Scenario, run_batch
        from repro.model.nests import NestConfig

        reports = run_batch(
            Scenario(
                algorithm="initial_split",
                n=100,
                nests=NestConfig.all_good(4),
                seed=3,
            ).trials(50)
        )
        for report in reports:
            assert report.converged
            extras = report.extras
            if extras["gap"] is not None:
                assert extras["gap"] >= 0.0
                assert extras["tie"] == (extras["gap"] == 0.0)
            assert int(report.final_counts.sum()) == 100

    def test_two_ants_two_nests(self):
        # With n=2, k=2: either both land together (zero-denominator) or
        # split evenly (tie, eps=0).
        from repro.api import Scenario, run_batch
        from repro.model.nests import NestConfig

        reports = run_batch(
            Scenario(
                algorithm="initial_split",
                n=2,
                nests=NestConfig.all_good(2),
                seed=5,
            ).trials(100)
        )
        for report in reports:
            extras = report.extras
            assert extras["tie"] or extras["empty_pair_nest"]
            if extras["gap"] is not None:
                assert extras["gap"] == 0.0


class TestDropoutTimes:
    def test_detects_extinction(self):
        # Assessment rows at indices 0,2,4,...; nest 2 crosses below the
        # threshold at its second assessment and dies at its fourth.
        history = np.array(
            [
                [0, 8, 8],
                [16, 0, 0],
                [0, 12, 4],  # nest 2 crosses (threshold 5)
                [16, 0, 0],
                [0, 14, 2],
                [16, 0, 0],
                [0, 16, 0],  # extinct: 2 assessments after crossing
                [16, 0, 0],
            ]
        )
        times, resurfaced = dropout_times(history, threshold=5)
        assert times == [4]  # two assessment rows later = 4 rounds
        assert resurfaced == 0

    def test_counts_resurfacing(self):
        history = np.array(
            [
                [0, 12, 4],  # below threshold immediately
                [16, 0, 0],
                [0, 8, 8],  # resurfaces above threshold
                [16, 0, 0],
                [0, 16, 0],  # then dies
                [16, 0, 0],
            ]
        )
        times, resurfaced = dropout_times(history, threshold=5)
        assert resurfaced == 1
        assert times == [4]

    def test_winner_never_counted(self):
        history = np.array(
            [
                [0, 8, 8],
                [16, 0, 0],
                [0, 16, 0],
            ]
        )
        times, _ = dropout_times(history, threshold=5)
        # Nest 1 never went below threshold; nest 2 crossed and died at the
        # same assessment (0 rounds later).
        assert times == [0]
