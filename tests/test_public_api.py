"""Tests for the package's public surface."""

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_docstring_quickstart_runs(self):
        """The usage example in the package docstring must stay true."""
        from repro import NestConfig, run_trial, simple_factory

        nests = NestConfig.binary(k=4, good={1, 3})
        result = run_trial(simple_factory(), n=128, nests=nests, seed=7)
        assert result.converged
        assert result.chosen_nest in (1, 3)

    @pytest.mark.parametrize(
        "module",
        [
            "repro.model",
            "repro.sim",
            "repro.core",
            "repro.fast",
            "repro.baselines",
            "repro.extensions",
            "repro.analysis",
            "repro.experiments",
        ],
    )
    def test_subpackage_exports_resolve(self, module):
        package = importlib.import_module(module)
        for name in getattr(package, "__all__", []):
            assert getattr(package, name, None) is not None, f"{module}.{name}"

    def test_demo_cli_runs(self):
        from repro.__main__ import main

        assert main(["--n", "48", "--k", "3", "--seed", "1"]) == 0

    def test_experiments_cli_list(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E14" in out

    def test_experiments_cli_rejects_unknown(self):
        from repro.experiments.__main__ import main

        assert main(["E99"]) == 2
