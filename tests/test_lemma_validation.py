"""Direct statistical validation of the paper's inner lemmas.

The benchmark experiments (E1–E14) cover the headline claims; these tests
pin the *intermediate* lemmas the proofs chain through, each measured on
exactly the process the lemma describes.  Thresholds are set with wide
margins so the tests are deterministic in practice at the given seeds.
"""

import numpy as np

from repro.core.lower_bound import IgnorantPolicy
from repro.fast.simple_fast import simulate_simple
from repro.fast.spread_fast import simulate_spread
from repro.model.nests import NestConfig
from repro.model.recruitment import match_arrays


class TestLemma31IgnorancePersistence:
    """Lemma 3.1: an ignorant ant stays ignorant each round w.p. >= 1/4."""

    def test_per_round_survival_rate(self):
        # Aggregate ignorant->ignorant transition frequencies over full
        # spread runs in the most aggressive setting (everyone waits at
        # home where recruitment pressure is maximal).
        stayed = 0
        exposed = 0
        for seed in range(20):
            result = simulate_spread(
                256, 4, IgnorantPolicy.WAIT, seed=seed, max_rounds=4000
            )
            history = result.informed_history
            ignorant = 256 - history
            for r in range(len(history) - 1):
                if ignorant[r] > 0:
                    exposed += ignorant[r]
                    stayed += ignorant[r + 1]
        survival = stayed / exposed
        assert survival >= 0.25

    def test_survival_rate_higher_with_fewer_recruiters(self):
        # Early rounds (few informed ants) must show higher ignorance
        # survival than late rounds (many recruiters) — the monotonicity
        # behind the lemma's worst-case constant.
        early, late = [], []
        for seed in range(20):
            history = simulate_spread(
                512, 8, IgnorantPolicy.WAIT, seed=seed, max_rounds=4000
            ).informed_history
            ignorant = 512 - history
            mid = len(history) // 2
            if ignorant[1] > 0:
                early.append(ignorant[2] / ignorant[1])
            if 0 < mid < len(history) - 1 and ignorant[mid] > 0:
                late.append(ignorant[mid + 1] / max(ignorant[mid], 1))
        assert np.mean(early) > np.mean(late)


class TestLemma52RateOrdering:
    """Lemma 5.2's consequence: the bigger nest's per-capita drift is no
    worse than the smaller nest's at matched recruit probability — in
    aggregate, bigger nests grow at the smaller nests' expense."""

    def test_bigger_nest_grows_at_smaller_nests_expense(self):
        gains_big, gains_small = [], []
        for seed in range(30):
            result = simulate_simple(
                2048,
                NestConfig.all_good(4),
                seed=seed,
                max_rounds=4000,
                record_history=True,
            )
            shares = result.population_history[::2, 1:].astype(float) / 2048
            for row in range(min(6, len(shares) - 1)):
                current, nxt = shares[row], shares[row + 1]
                order = np.argsort(current)
                small, big = order[0], order[-1]
                if current[big] > current[small] > 0:
                    gains_big.append(nxt[big] - current[big])
                    gains_small.append(nxt[small] - current[small])
        assert np.mean(gains_big) > 0 > np.mean(gains_small)


class TestLemma57GapAmplification:
    """Lemma 5.7: E[ε(i,j,r+2)] >= (1 + 1/(2dk))·E[ε(i,j,r)] while both
    nests hold an Ω(1/k) share — the gap grows multiplicatively."""

    def test_expected_gap_grows(self):
        k, n, d = 4, 4096, 64
        threshold = 1.0 / (d * k)
        ratios = []
        for seed in range(25):
            result = simulate_simple(
                n,
                NestConfig.all_good(k),
                seed=seed,
                max_rounds=4000,
                record_history=True,
            )
            shares = result.population_history[::2, 1:].astype(float) / n
            for row in range(len(shares) - 1):
                current, nxt = shares[row], shares[row + 1]
                # Track the top-two nests while both are above threshold.
                order = np.argsort(current)
                hi, lo = order[-1], order[-2]
                if current[lo] <= threshold or nxt[lo] == 0:
                    break
                eps_now = current[hi] / current[lo] - 1.0
                eps_next = max(nxt[hi], nxt[lo]) / min(nxt[hi], nxt[lo]) - 1.0
                if eps_now > 0:
                    ratios.append(eps_next / eps_now)
        # Multiplicative growth on average, comfortably above the paper's
        # (1 + 1/(2dk)) ≈ 1.002 floor.
        assert np.mean(ratios) > 1.002
        assert len(ratios) > 100


class TestLemma21Extremes:
    """Lemma 2.1 at its corner cases, directly on the matcher."""

    def test_two_ants_both_recruiting(self):
        rng = np.random.default_rng(3)
        active = np.ones(2, dtype=bool)
        targets = np.array([1, 2], dtype=np.int64)
        success = 0
        trials = 2000
        for _ in range(trials):
            _, recruiter_of, is_recruiter = match_arrays(active, targets, rng)
            success += int(is_recruiter[0] and recruiter_of[0] != 0)
        # Recruiting *another* ant with c(0,r)=2 and full contention: the
        # rate must still clear 1/16.
        assert success / trials >= 1 / 16

    def test_probability_decreases_with_contention(self):
        rng = np.random.default_rng(4)
        rates = []
        for fraction_active in (0.1, 0.5, 1.0):
            active = np.zeros(64, dtype=bool)
            active[0] = True
            active[1 : 1 + int(fraction_active * 63)] = True
            targets = np.arange(64, dtype=np.int64)
            success = sum(
                int(match_arrays(active, targets, rng)[2][0]) for _ in range(800)
            )
            rates.append(success / 800)
        assert rates[0] > rates[1] > rates[2] >= 1 / 16
