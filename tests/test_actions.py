"""Tests for action and result value objects."""

import pytest

from repro.model.actions import (
    Go,
    GoResult,
    Recruit,
    RecruitResult,
    Search,
    SearchResult,
    action_kind,
)


class TestActions:
    def test_search_describe(self):
        assert Search().describe() == "search()"

    def test_go_describe(self):
        assert Go(3).describe() == "go(3)"

    def test_recruit_describe_active(self):
        assert Recruit(True, 2).describe() == "recruit(1, 2)"

    def test_recruit_describe_passive(self):
        assert Recruit(False, 5).describe() == "recruit(0, 5)"

    def test_actions_are_immutable(self):
        with pytest.raises(AttributeError):
            Go(1).nest = 2

    def test_actions_are_hashable_values(self):
        assert Go(1) == Go(1)
        assert Recruit(True, 1) != Recruit(False, 1)
        assert len({Search(), Search()}) == 1


class TestActionKind:
    def test_kinds(self):
        assert action_kind(Search()) == "search"
        assert action_kind(Go(1)) == "go"
        assert action_kind(Recruit(True, 1)) == "recruit"

    def test_non_action_rejected(self):
        with pytest.raises(TypeError):
            action_kind("search")


class TestResults:
    def test_search_result_fields(self):
        result = SearchResult(nest=2, quality=1.0, count=7)
        assert (result.nest, result.quality, result.count) == (2, 1.0, 7)

    def test_go_result_default_quality(self):
        # Binary-model algorithms ignore quality on go(); it defaults to 0.
        assert GoResult(nest=1, count=3).quality == 0.0

    def test_recruit_result_fields(self):
        result = RecruitResult(nest=4, home_count=10)
        assert result.nest == 4
        assert result.home_count == 10

    def test_results_are_immutable(self):
        with pytest.raises(AttributeError):
            SearchResult(1, 1.0, 1).count = 2
