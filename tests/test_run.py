"""Tests for the trial runner and aggregation."""

import numpy as np
import pytest

from repro.core.colony import simple_factory
from repro.model.actions import Go, RecruitResult, Search, SearchResult
from repro.model.ant import Ant
from repro.model.nests import NestConfig
from repro.sim.convergence import UnanimousCommitment
from repro.sim.run import TrialStats, build_colony, run_trial, run_trials


class TestBuildColony:
    def test_ids_and_size(self, rng):
        colony = build_colony(simple_factory(), 5, rng)
        assert [a.ant_id for a in colony] == [0, 1, 2, 3, 4]
        assert all(a.n == 5 for a in colony)


class TestRunTrial:
    def test_reproducible_under_seed(self, all_good_4):
        a = run_trial(simple_factory(), 32, all_good_4, seed=11, max_rounds=2000)
        b = run_trial(simple_factory(), 32, all_good_4, seed=11, max_rounds=2000)
        assert a.converged_round == b.converged_round
        assert a.chosen_nest == b.chosen_nest

    def test_different_seeds_usually_differ(self, all_good_4):
        results = {
            run_trial(
                simple_factory(), 32, all_good_4, seed=s, max_rounds=2000
            ).converged_round
            for s in range(6)
        }
        assert len(results) > 1

    def test_history_opt_in(self, all_good_4):
        result = run_trial(
            simple_factory(), 16, all_good_4, seed=0, max_rounds=500,
            keep_history=True,
        )
        assert len(result.history) == result.rounds_executed

    def test_rounds_to_convergence_censoring(self, all_good_4):
        result = run_trial(simple_factory(), 16, all_good_4, seed=0, max_rounds=2)
        assert not result.converged
        assert result.rounds_to_convergence == 2


class TestRunTrials:
    def test_aggregation(self, all_good_4):
        stats = run_trials(
            simple_factory(), 32, all_good_4, n_trials=6, base_seed=1,
            max_rounds=2000,
        )
        assert stats.n_trials == 6
        assert stats.n_converged == 6
        assert stats.success_rate == 1.0
        assert stats.mean_rounds > 0
        assert stats.median_rounds <= stats.percentile(95)
        assert sum(stats.chosen_nests.values()) == 6

    def test_censoring_reported(self, all_good_4):
        stats = run_trials(
            simple_factory(), 32, all_good_4, n_trials=3, base_seed=1,
            max_rounds=3,
        )
        assert stats.n_converged == 0
        assert stats.success_rate == 0.0
        assert np.isnan(stats.median_rounds)
        assert stats.censored_at == 3
        assert stats.max_rounds_observed == 0

    def test_str_smoke(self, all_good_4):
        stats = run_trials(
            simple_factory(), 16, all_good_4, n_trials=2, base_seed=0,
            max_rounds=2000,
        )
        assert "success" in str(stats)


class TestTrialStats:
    def test_empty(self):
        stats = TrialStats(
            n_trials=0, n_converged=0, rounds=np.array([]), censored_at=10
        )
        assert stats.success_rate == 0.0
        assert np.isnan(stats.mean_rounds)


class _BadNestZealot(Ant):
    """Searches until it stumbles on ``target``, then commits to it forever.

    With every ant targeting the same *bad* nest, a permissive criterion
    (UnanimousCommitment) fires on a colony that has agreed on a bad home.
    """

    TARGET = 2

    def __init__(self, ant_id, n, rng):
        super().__init__(ant_id, n, rng)
        self._found = False

    def decide(self):
        return Go(self.TARGET) if self._found else Search()

    def observe(self, result):
        if isinstance(result, SearchResult) and result.nest == self.TARGET:
            self._found = True

    @property
    def committed_nest(self):
        return self.TARGET if self._found else None


class TestGoodNestSemantics:
    """Regression: n_converged must mean "converged to a *good* nest".

    ``success_rate``'s docstring always promised that, but ``run_trials``
    used to trust ``result.converged`` alone, over-counting criteria that
    can stop on a bad nest.
    """

    def test_bad_nest_agreement_is_not_success(self):
        nests = NestConfig.binary(2, {1})  # nest 2 is bad
        stats = run_trials(
            lambda ant_id, n, rng: _BadNestZealot(ant_id, n, rng),
            4,
            nests,
            n_trials=3,
            base_seed=5,
            max_rounds=500,
            criterion_factory=UnanimousCommitment,
        )
        # Every trial agrees (on the bad nest) ...
        assert stats.chosen_nests == {2: 3}
        # ... but none of them solved HouseHunting.
        assert stats.n_converged == 0
        assert stats.success_rate == 0.0
        assert len(stats.rounds) == 0

    def test_good_nest_agreement_still_counts(self, all_good_4):
        stats = run_trials(
            simple_factory(),
            24,
            all_good_4,
            n_trials=3,
            base_seed=2,
            max_rounds=2000,
            criterion_factory=UnanimousCommitment,
        )
        assert stats.n_converged == 3
        assert stats.success_rate == 1.0
