"""The REPRO_SANITIZE runtime sanitizer: off by default, sharp when on."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Scenario, run_batch
from repro.fast.arena import Arena
from repro.fast.batch import simulate_simple_batch
from repro.fast.results import FastRunResult
from repro.lintkit.sanitize import (
    SanitizeError,
    check_arena_aliasing,
    check_run_result,
    check_spread_result,
    sanitize_enabled,
    sanitized,
)
from repro.model.nests import NestConfig
from repro.sim.rng import RandomSource


@pytest.fixture
def sanitize_on(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")


def result(final_counts, history=None, **overrides):
    base = dict(
        converged=True,
        converged_round=3,
        rounds_executed=3,
        chosen_nest=1,
        final_counts=np.asarray(final_counts),
        population_history=None if history is None else np.asarray(history),
    )
    base.update(overrides)
    return FastRunResult(**base)


def test_disabled_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert not sanitize_enabled()
    for value in ("0", "false", "off", ""):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert not sanitize_enabled()
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert sanitize_enabled()


def test_wrapper_is_transparent_when_disabled(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)

    @sanitized
    def kernel(n):
        return [result([0, n])]

    # Conservation is violated (sum != n) but nothing checks it.
    assert kernel(8)[0].final_counts.sum() == 8


def test_checks_run_when_enabled(sanitize_on):
    @sanitized
    def kernel(n):
        return [result([0, n - 1])]  # one ant lost

    with pytest.raises(SanitizeError, match="not conserved"):
        kernel(8)


def test_nan_in_kernel_raises(sanitize_on):
    @sanitized
    def kernel(n):
        np.log(np.zeros(2) - 1.0)  # invalid -> NaN
        return []

    with pytest.raises(FloatingPointError):
        kernel(4)


@pytest.mark.parametrize(
    "counts, pattern",
    [
        ([np.nan, 8.0], "non-finite"),
        ([-1, 9], "negative"),
        ([0, 7], "not conserved"),
    ],
)
def test_check_run_result_rejects(counts, pattern):
    with pytest.raises(SanitizeError, match=pattern):
        check_run_result(result(counts), n=8, kernel="k")


def test_check_run_result_checks_history_rows():
    ok = result([0, 8], history=[[8, 0], [0, 8]])
    check_run_result(ok, n=8, kernel="k")
    bad = result([0, 8], history=[[8, 0], [0, 7]])
    with pytest.raises(SanitizeError, match="row 1"):
        check_run_result(bad, n=8, kernel="k")


class _Spread:
    def __init__(self, history):
        self.informed_history = np.asarray(history)


def test_check_spread_result():
    check_spread_result(_Spread([1, 2, 4, 4, 8]), n=8, kernel="k")
    with pytest.raises(SanitizeError, match="decreased"):
        check_spread_result(_Spread([1, 4, 2]), n=8, kernel="k")
    with pytest.raises(SanitizeError, match="outside"):
        check_spread_result(_Spread([1, 9]), n=8, kernel="k")


def test_check_arena_aliasing():
    arena = Arena()
    arena.buf("a", (4,), np.int64)
    arena.buf("b", (4,), np.int64)
    check_arena_aliasing(arena)  # distinct buffers: fine
    arena._buffers["c"] = arena._buffers["a"][:2]  # forced aliasing bug
    with pytest.raises(SanitizeError, match="alias"):
        check_arena_aliasing(arena)
    with pytest.raises(AssertionError):
        arena.check_aliasing()


def test_real_kernel_passes_under_sanitizer(sanitize_on):
    source = RandomSource(11)
    reports = simulate_simple_batch(
        n=32,
        nests=NestConfig.all_good(3),
        sources=[source.trial(t) for t in range(3)],
    )
    assert len(reports) == 3
    for report in reports:
        assert report.final_counts.sum() == 32


def test_run_batch_bits_unchanged_under_sanitizer(sanitize_on):
    """The sanitizer observes; it must never change a draw."""
    scenarios = Scenario(
        algorithm="simple", n=64, nests=NestConfig.all_good(3), seed=5
    ).trials(3)
    with_checks = [r.to_dict(include_history=True) for r in run_batch(scenarios)]
    import os

    os.environ.pop("REPRO_SANITIZE")
    without = [r.to_dict(include_history=True) for r in run_batch(scenarios)]
    assert with_checks == without
