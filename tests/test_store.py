"""The cell-store seam: directory and sharded-SQLite layouts under the cache."""

import json
import subprocess
import sys
import threading

import pytest

from repro.api import (
    DirectoryStore,
    ResultCache,
    SQLiteStore,
    Study,
    Sweep,
    grid,
    make_store,
    nests_spec,
    run_study,
)
from repro.api.cache import DEFECT_LOG_LIMIT, DefectLog, content_key
from repro.api.store import STORE_KINDS, StoreDefect

KEY_A = "a" * 64
KEY_B = "b" * 64
KEY_C = "c" * 64


def study(trials: int = 3, ns=(16, 32, 64)) -> Study:
    return Study(
        name="store-study",
        sweep=Sweep(
            base={
                "algorithm": "simple",
                "nests": nests_spec("all_good", k=2),
                "seed": 3,
                "max_rounds": 10_000,
            },
            axes=(grid("n", ns),),
        ),
        trials=trials,
        metrics=("n_trials", "success_rate", "median_rounds"),
    )


class TestDirectoryStore:
    def test_round_trip_and_missing(self, tmp_path):
        store = DirectoryStore(tmp_path)
        assert store.get(KEY_A) is None
        store.put(KEY_A, "hello")
        assert store.get(KEY_A) == "hello"
        store.put(KEY_A, "replaced")
        assert store.get(KEY_A) == "replaced"
        assert len(store) == 1

    def test_unreadable_entry_is_a_defect(self, tmp_path):
        store = DirectoryStore(tmp_path)
        # An entry path that exists but cannot be read as a file.
        store.path(KEY_A).parent.mkdir(parents=True)
        store.path(KEY_A).mkdir()
        with pytest.raises(StoreDefect):
            store.get(KEY_A)

    def test_stats(self, tmp_path):
        store = DirectoryStore(tmp_path)
        store.put(KEY_A, "xyz")
        store.put(KEY_B, "pqrs")
        stats = store.stats()
        assert stats["kind"] == "directory"
        assert stats["entries"] == 2
        assert stats["bytes"] == 7
        assert stats["evictions"] == 0


class TestSQLiteStore:
    def test_round_trip_and_missing(self, tmp_path):
        store = SQLiteStore(tmp_path, shards=2)
        assert store.get(KEY_A) is None
        store.put(KEY_A, "hello")
        store.put(KEY_B, "world")
        assert store.get(KEY_A) == "hello"
        assert store.get(KEY_B) == "world"
        store.put(KEY_A, "replaced")
        assert store.get(KEY_A) == "replaced"
        assert len(store) == 2

    def test_persists_across_instances(self, tmp_path):
        SQLiteStore(tmp_path, shards=2).put(KEY_A, "durable")
        assert SQLiteStore(tmp_path, shards=2).get(KEY_A) == "durable"

    def test_keys_partition_across_shards(self, tmp_path):
        store = SQLiteStore(tmp_path, shards=4)
        keys = [content_key({"cell": index}) for index in range(64)]
        for key in keys:
            store.put(key, "v")
        used = {path.name for path in tmp_path.glob("cells-*.sqlite")}
        assert len(used) == 4  # 64 hashed keys certainly hit all 4 shards
        assert len(store) == 64
        # Each key lives in exactly the shard its prefix names.
        for key in keys:
            assert store.shard_path(key).exists()

    def test_lru_eviction_spares_recently_read(self, tmp_path):
        store = SQLiteStore(tmp_path, shards=1, max_bytes=250)
        store.put(KEY_A, "a" * 100)
        store.put(KEY_B, "b" * 100)
        store.get(KEY_A)  # touch: A is now more recent than B
        store.put(KEY_C, "c" * 100)  # 300 bytes > 250: evict LRU (B)
        assert store.get(KEY_B) is None
        assert store.get(KEY_A) == "a" * 100
        assert store.get(KEY_C) == "c" * 100
        assert store.evictions == 1
        assert store.stats()["bytes"] <= 250

    def test_single_oversized_entry_survives(self, tmp_path):
        store = SQLiteStore(tmp_path, shards=1, max_bytes=10)
        store.put(KEY_A, "x" * 100)  # over budget, but never self-evicts
        assert store.get(KEY_A) == "x" * 100

    def test_corrupt_shard_quarantines_then_recovers(self, tmp_path):
        store = SQLiteStore(tmp_path, shards=1)
        store.put(KEY_A, "good")
        shard = store.shard_path(KEY_A)
        shard.write_bytes(b"this is not a sqlite database at all........")
        with pytest.raises(StoreDefect):
            store.get(KEY_A)
        # The bad file moved aside; the store works again immediately.
        assert store.quarantined_shards == 1
        assert list(tmp_path.glob("*.corrupt-*"))
        assert store.get(KEY_A) is None  # cold miss now, not an error
        store.put(KEY_A, "recomputed")
        assert store.get(KEY_A) == "recomputed"

    def test_corrupt_shard_put_recovers_without_get(self, tmp_path):
        store = SQLiteStore(tmp_path, shards=1)
        store.shard_path(KEY_A).parent.mkdir(parents=True, exist_ok=True)
        store.shard_path(KEY_A).write_bytes(b"garbage" * 10)
        store.put(KEY_A, "fresh")  # quarantine + rewrite, no exception
        assert store.get(KEY_A) == "fresh"
        assert store.quarantined_shards == 1

    def test_stats(self, tmp_path):
        store = SQLiteStore(tmp_path, shards=2, max_bytes=1_000_000)
        store.put(KEY_A, "12345")
        stats = store.stats()
        assert stats["kind"] == "sqlite"
        assert stats["shards"] == 2
        assert stats["entries"] == 1
        assert stats["bytes"] == 5
        assert stats["max_bytes"] == 1_000_000
        assert stats["evictions"] == 0
        assert stats["quarantined_shards"] == 0

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            SQLiteStore(tmp_path, shards=0)
        with pytest.raises(ValueError):
            SQLiteStore(tmp_path, max_bytes=0)


class TestMakeStore:
    def test_kinds(self, tmp_path):
        assert isinstance(make_store("directory", tmp_path), DirectoryStore)
        sqlite_store = make_store("sqlite", tmp_path, shards=2, max_bytes=100)
        assert isinstance(sqlite_store, SQLiteStore)
        assert sqlite_store.shards == 2
        assert sqlite_store.max_bytes == 100

    def test_unknown_kind(self, tmp_path):
        with pytest.raises(ValueError, match="unknown store kind"):
            make_store("redis", tmp_path)
        assert STORE_KINDS == ("directory", "sqlite")


class TestDefectLog:
    def test_caps_and_counts_dropped(self):
        log = DefectLog(maxlen=3)
        for index in range(5):
            log.append(("key", f"defect {index}"))
        assert len(log) == 3
        assert log.dropped == 2
        assert log.total == 5
        assert log[0] == ("key", "defect 2")  # oldest aged out first

    def test_still_equals_plain_lists(self):
        log = DefectLog()
        assert log == []
        log.append("x")
        assert log == ["x"]
        assert DEFECT_LOG_LIMIT >= 16  # sane floor for daemon observability


class TestCacheOverSQLiteStore:
    """The PR 7 corruption matrix, replayed over the SQLite store."""

    def cache(self, tmp_path, **kwargs) -> ResultCache:
        return ResultCache(
            tmp_path, store=SQLiteStore(tmp_path, shards=2, **kwargs)
        )

    def test_cold_then_warm_identical(self, tmp_path):
        cache = self.cache(tmp_path)
        cold = run_study(study(), cache=cache)
        assert (cold.cache_hits, cold.cache_misses) == (0, 3)
        warm = run_study(study(), cache=cache)
        assert (warm.cache_hits, warm.cache_misses) == (3, 0)
        assert warm.simulated_trials == 0
        assert warm.table.equals(cold.table)
        assert cache.defects == []

    def test_matches_directory_store_bit_for_bit(self, tmp_path):
        over_sqlite = run_study(
            study(), cache=self.cache(tmp_path / "sqlite")
        )
        over_directory = run_study(
            study(), cache=ResultCache(tmp_path / "dir")
        )
        assert over_sqlite.table.equals(over_directory.table)

    def test_corrupt_shard_recomputes_and_records_defect(self, tmp_path):
        cache = self.cache(tmp_path)
        cold = run_study(study(), cache=cache)
        for shard in tmp_path.glob("cells-*.sqlite"):
            shard.write_bytes(b"rotten bits, definitely not sqlite")
        healed = run_study(study(), cache=cache)
        assert healed.cache_hits == 0
        assert healed.cache_misses == 3
        assert healed.table.equals(cold.table)
        assert len(cache.defects) >= 1  # one StoreDefect per corrupt shard hit
        # ... and the rebuilt shards serve the rerun warm.
        warm = run_study(study(), cache=cache)
        assert warm.cache_hits == 3

    def test_tampered_entry_value_is_a_miss_with_defect(self, tmp_path):
        import sqlite3

        cache = self.cache(tmp_path)
        run_study(study(), cache=cache)
        for shard in tmp_path.glob("cells-*.sqlite"):
            conn = sqlite3.connect(shard)
            with conn:
                conn.execute("UPDATE cells SET value = '{\"version\": 999}'")
            conn.close()
        healed = run_study(study(), cache=cache)
        assert healed.cache_misses == 3
        assert len(cache.defects) == 3
        assert cache.stats()["defects"] == 3

    def test_eviction_keeps_results_correct(self, tmp_path):
        # A budget too small for the whole study: every run stays correct,
        # it just recomputes what was evicted.
        cache = ResultCache(
            tmp_path, store=SQLiteStore(tmp_path, shards=1, max_bytes=600)
        )
        cold = run_study(study(), cache=cache)
        again = run_study(study(), cache=cache)
        assert again.table.equals(cold.table)
        assert cache.store_backend.evictions > 0

    def test_stats_merges_cache_and_store_counters(self, tmp_path):
        cache = self.cache(tmp_path)
        run_study(study(), cache=cache)
        stats = cache.stats()
        assert stats["kind"] == "sqlite"
        assert stats["hits"] == 0
        assert stats["misses"] == 3
        assert stats["defects"] == 0
        assert stats["entries"] == 3
        assert stats["bytes"] > 0


class TestSharedStoreConcurrency:
    """Two schedulers over one store: no corruption, bit-equal tables."""

    def test_two_threads_share_one_sqlite_store(self, tmp_path):
        store = SQLiteStore(tmp_path, shards=2)
        reference = run_study(study(), cache=None)
        results = {}
        errors = []

        def run_one(name):
            try:
                cache = ResultCache(tmp_path, store=store)
                results[name] = run_study(study(), cache=cache)
            except BaseException as error:  # pragma: no cover - fail loudly
                errors.append(error)

        threads = [
            threading.Thread(target=run_one, args=(f"t{i}",)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert results["t0"].table.equals(reference.table)
        assert results["t1"].table.equals(reference.table)
        assert len(store) == 3
        assert store.stats()["quarantined_shards"] == 0

    def test_two_processes_share_one_sqlite_store(self, tmp_path):
        script = """
import json, sys
from repro.api import (
    ResultCache, SQLiteStore, Study, Sweep, grid, nests_spec, run_study,
)
study = Study(
    name="store-study",
    sweep=Sweep(
        base={"algorithm": "simple", "nests": nests_spec("all_good", k=2),
              "seed": 3, "max_rounds": 10_000},
        axes=(grid("n", (16, 32, 64)),),
    ),
    trials=3,
    metrics=("n_trials", "success_rate", "median_rounds"),
)
root = sys.argv[1]
cache = ResultCache(root, store=SQLiteStore(root, shards=2))
result = run_study(study, cache=cache)
print(json.dumps(result.table.to_dict()))
"""
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(tmp_path)],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for _ in range(2)
        ]
        outputs = []
        for proc in procs:
            out, err = proc.communicate(timeout=180)
            assert proc.returncode == 0, err
            outputs.append(json.loads(out.strip().splitlines()[-1]))
        assert outputs[0] == outputs[1]
        reference = run_study(study(), cache=None)
        assert outputs[0] == reference.table.to_dict()
        # The store holds exactly the study's cells, uncorrupted.
        store = SQLiteStore(tmp_path, shards=2)
        assert len(store) == 3
        assert store.stats()["quarantined_shards"] == 0
