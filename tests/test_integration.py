"""End-to-end integration tests across algorithms, engines and workloads."""

import numpy as np
import pytest

from repro.core.colony import optimal_factory, simple_factory
from repro.fast.optimal_fast import simulate_optimal
from repro.fast.simple_fast import simulate_simple
from repro.model.nests import NestConfig
from repro.sim.convergence import CommittedToSingleGoodNest
from repro.sim.run import run_trial


WORKLOADS = [
    ("all-good small", 32, NestConfig.all_good(2)),
    ("all-good wide", 64, NestConfig.all_good(8)),
    ("one-good-of-4", 96, NestConfig.single_good(4, good_nest=2)),
    ("mixed", 64, NestConfig.binary(6, {1, 4, 5})),
]


class TestSimpleAcrossWorkloads:
    @pytest.mark.parametrize("name,n,nests", WORKLOADS, ids=[w[0] for w in WORKLOADS])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_agent_engine(self, name, n, nests, seed):
        result = run_trial(simple_factory(), n, nests, seed=seed, max_rounds=20_000)
        assert result.converged
        assert nests.is_good(result.chosen_nest)

    @pytest.mark.parametrize("name,n,nests", WORKLOADS, ids=[w[0] for w in WORKLOADS])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_fast_engine(self, name, n, nests, seed):
        result = simulate_simple(n, nests, seed=seed, max_rounds=20_000)
        assert result.converged
        assert nests.is_good(result.chosen_nest)


class TestOptimalAcrossWorkloads:
    @pytest.mark.parametrize("name,n,nests", WORKLOADS, ids=[w[0] for w in WORKLOADS])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_agent_engine(self, name, n, nests, seed):
        result = run_trial(
            optimal_factory(),
            n,
            nests,
            seed=seed,
            max_rounds=20_000,
            criterion_factory=lambda: CommittedToSingleGoodNest(require_settled=True),
        )
        assert result.converged
        assert nests.is_good(result.chosen_nest)

    @pytest.mark.parametrize("name,n,nests", WORKLOADS, ids=[w[0] for w in WORKLOADS])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_fast_engine(self, name, n, nests, seed):
        result = simulate_optimal(n, nests, seed=seed, max_rounds=20_000)
        assert result.converged
        assert nests.is_good(result.chosen_nest)


class TestPaperHeadlineShapes:
    """The paper's two headline comparisons, at test scale."""

    def test_optimal_beats_simple_at_large_k(self):
        """Theorem 4.3 vs 5.11: at large k, O(log n) beats O(k log n)."""
        nests = NestConfig.all_good(24)
        optimal = [
            simulate_optimal(1024, nests, seed=s, max_rounds=50_000).converged_round
            for s in range(6)
        ]
        simple = [
            simulate_simple(1024, nests, seed=s, max_rounds=50_000).converged_round
            for s in range(6)
        ]
        assert np.median(optimal) < np.median(simple)

    def test_simple_rounds_grow_with_k(self):
        """Theorem 5.11's O(k log n): k=32 takes longer than k=2."""
        small_k = [
            simulate_simple(
                512, NestConfig.all_good(2), seed=s, max_rounds=50_000
            ).converged_round
            for s in range(6)
        ]
        large_k = [
            simulate_simple(
                512, NestConfig.all_good(32), seed=s, max_rounds=50_000
            ).converged_round
            for s in range(6)
        ]
        assert np.median(large_k) > np.median(small_k)

    def test_optimal_rounds_barely_grow_with_k(self):
        """Theorem 4.3: k enters only through O(log k)."""
        small_k = np.median(
            [
                simulate_optimal(
                    1024, NestConfig.all_good(2), seed=s, max_rounds=50_000
                ).converged_round
                for s in range(6)
            ]
        )
        large_k = np.median(
            [
                simulate_optimal(
                    1024, NestConfig.all_good(32), seed=s, max_rounds=50_000
                ).converged_round
                for s in range(6)
            ]
        )
        assert large_k <= 2.5 * small_k


class TestDegenerateCases:
    def test_one_ant_one_nest_simple(self):
        result = simulate_simple(1, NestConfig.all_good(1), seed=0, max_rounds=100)
        assert result.converged

    def test_two_ants_two_nests_both_engines(self):
        nests = NestConfig.all_good(2)
        fast = simulate_simple(2, nests, seed=3, max_rounds=4000)
        agent = run_trial(simple_factory(), 2, nests, seed=3, max_rounds=4000)
        assert fast.converged and agent.converged

    def test_all_bad_search_never_converges_plain(self):
        """With one good nest among many and very few ants, plain Algorithm
        3 can deadlock (nobody searches twice) — the documented limitation
        the retrying extension fixes."""
        nests = NestConfig.binary(16, {16})
        outcomes = [
            simulate_simple(4, nests, seed=s, max_rounds=300).converged
            for s in range(12)
        ]
        assert not all(outcomes)
