"""Tests for the metrics recorder."""

import numpy as np
import pytest

from repro.core.colony import simple_factory
from repro.model.environment import Environment
from repro.model.nests import NestConfig
from repro.sim.engine import Simulation
from repro.sim.metrics import MetricsRecorder
from repro.sim.rng import RandomSource
from repro.sim.run import build_colony


@pytest.fixture
def recorded_run(all_good_4):
    source = RandomSource(5)
    colony = build_colony(simple_factory(), 32, source.colony)
    metrics = MetricsRecorder(colony)
    sim = Simulation(
        colony,
        Environment(32, all_good_4),
        source,
        max_rounds=40,
        hooks=[metrics],
    )
    result = sim.run()
    return metrics, result, colony


class TestPopulationSeries:
    def test_matrix_shape(self, recorded_run):
        metrics, result, _ = recorded_run
        matrix = metrics.population_matrix()
        assert matrix.shape == (result.rounds_executed, 5)

    def test_rows_sum_to_colony_size(self, recorded_run):
        metrics, _, _ = recorded_run
        assert (metrics.population_matrix().sum(axis=1) == 32).all()

    def test_proportions_sum_to_one(self, recorded_run):
        metrics, _, _ = recorded_run
        sums = metrics.proportions().sum(axis=1)
        assert np.allclose(sums, 1.0)

    def test_nest_series_matches_matrix(self, recorded_run):
        metrics, _, _ = recorded_run
        assert (metrics.nest_series(2) == metrics.population_matrix()[:, 2]).all()

    def test_rounds_are_sequential(self, recorded_run):
        metrics, result, _ = recorded_run
        rounds = metrics.rounds()
        assert rounds[0] == 1
        assert (np.diff(rounds) == 1).all()

    def test_empty_recorder(self):
        metrics = MetricsRecorder([])
        assert metrics.n_rounds == 0
        assert metrics.population_matrix().size == 0
        assert metrics.proportions().size == 0


class TestRecruitmentSeries:
    def test_shapes_match_rounds(self, recorded_run):
        metrics, result, _ = recorded_run
        series = metrics.recruitment_series()
        for values in series.values():
            assert len(values) == result.rounds_executed

    def test_round_one_has_no_participants(self, recorded_run):
        metrics, _, _ = recorded_run
        series = metrics.recruitment_series()
        assert series["participants"][0] == 0  # everyone searched

    def test_recruit_rounds_have_full_participation(self, recorded_run):
        metrics, _, _ = recorded_run
        participants = metrics.recruitment_series()["participants"]
        # Algorithm 3: even rounds are recruitment rounds with all 32 ants.
        assert (participants[1::2] == 32).all()

    def test_successes_bounded_by_recruiters(self, recorded_run):
        metrics, _, _ = recorded_run
        series = metrics.recruitment_series()
        assert (series["successful_pairs"] <= series["participants"]).all()


class TestStateHistograms:
    def test_state_counts_sum_to_colony(self, recorded_run):
        metrics, result, _ = recorded_run
        total = sum(
            metrics.state_counts(label) for label in metrics.state_labels()
        )
        assert (total == 32).all()

    def test_search_state_only_round_one(self, recorded_run):
        metrics, _, _ = recorded_run
        # After round 1 every SimpleAnt is active or passive.
        assert "search" not in metrics.state_labels() or (
            metrics.state_counts("search")[1:] == 0
        ).all()

    def test_disabled_state_recording_raises(self, all_good_4):
        source = RandomSource(5)
        colony = build_colony(simple_factory(), 8, source.colony)
        metrics = MetricsRecorder(colony, record_states=False)
        sim = Simulation(
            colony, Environment(8, all_good_4), source, max_rounds=4, hooks=[metrics]
        )
        sim.run()
        with pytest.raises(ValueError):
            metrics.state_counts("active")


class TestSurvivingNests:
    def test_monotone_nonincreasing_on_assessment_rounds(self, recorded_run):
        metrics, _, _ = recorded_run
        surviving = metrics.surviving_nests()[::2]  # odd rounds: at nests
        assert (np.diff(surviving) <= 0).all()

    def test_chosen_nest_dominates_last_assessment(self, recorded_run):
        metrics, result, _ = recorded_run
        if result.converged:
            # Convergence lands on a recruit round (everyone home); the row
            # before it is the last assessment round, where the eventual
            # winner must already hold the plurality.
            last_assessment = metrics.population_matrix()[-2]
            assert int(np.argmax(last_assessment[1:])) + 1 == result.chosen_nest
