"""The trial-parallel batch engine and its run_batch dispatch.

The load-bearing guarantees, each pinned here:

- **Bitwise reproducibility**: ``run_batch`` returns identical reports for
  any ``batch_chunk`` and any ``workers`` value, and each batched trial is
  identical to running that trial alone through the v2 fast kernel —
  batching is an execution detail, never a semantics change.
- **Dispatch**: homogeneous fast-path sweeps go to the batch kernel;
  heterogeneous scenarios, v1-matcher requests, and agent-only features
  fall back per scenario, all folding into the same report list.
- **Statistical equivalence**: the v1 (sequential permutation scan) and v2
  (batched) matcher schedules produce convergence-round distributions and
  success rates that agree within tolerance for ``simple``, ``optimal``,
  and ``spread``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import REGISTRY, Scenario, run, run_batch, run_stats
from repro.exceptions import ConfigurationError
from repro.model.nests import NestConfig
from tests.helpers.equivalence import (
    assert_batteries_equivalent,
    assert_medians_close,
    assert_reports_bit_identical,
    collect_battery,
    reports_bit_identical,
)


BATCHED_ALGORITHMS = [
    ("simple", NestConfig.all_good(4)),
    ("optimal", NestConfig.all_good(3)),
    ("spread", NestConfig.single_good(4, good_nest=1)),
    ("quorum", NestConfig.binary(4, {1, 3})),
    ("uniform", NestConfig.binary(4, {1, 3})),
    ("adaptive", NestConfig.all_good(4)),
]


class TestBitwiseReproducibility:
    @pytest.mark.parametrize("algorithm,nests", BATCHED_ALGORITHMS)
    def test_batched_equals_single_trial_v2(self, algorithm, nests):
        scenario = Scenario(
            algorithm=algorithm, n=40, nests=nests, seed=9, max_rounds=6000
        )
        batched = run_batch(scenario.trials(6), workers=1)
        singles = [run(scenario.trial(t), backend="fast") for t in range(6)]
        assert_reports_bit_identical(batched, singles, label=algorithm)

    @pytest.mark.parametrize("chunk", [1, 2, 3, 5, 64])
    def test_chunk_size_never_changes_results(self, chunk):
        scenario = Scenario(
            algorithm="simple",
            n=48,
            nests=NestConfig.all_good(4),
            seed=5,
            max_rounds=6000,
        )
        reference = run_batch(scenario.trials(7), workers=1, batch_chunk=7)
        chunked = run_batch(scenario.trials(7), workers=1, batch_chunk=chunk)
        assert_reports_bit_identical(chunked, reference, label=f"chunk={chunk}")

    def test_workers_never_change_results(self):
        scenario = Scenario(
            algorithm="simple",
            n=48,
            nests=NestConfig.all_good(4),
            seed=5,
            max_rounds=6000,
        )
        serial = run_batch(scenario.trials(8), workers=1, batch_chunk=3)
        parallel = run_batch(scenario.trials(8), workers=4, batch_chunk=3)
        assert_reports_bit_identical(parallel, serial, label="workers")

    def test_mixed_seeds_and_trial_indices_group_together(self):
        # A homogeneous group is "same everything but randomness": mixing
        # base seeds and trial indices must still match the singles.
        base = Scenario(
            algorithm="simple", n=40, nests=NestConfig.all_good(4), max_rounds=6000
        )
        scenarios = [
            base.replace(seed=1, trial_index=None),
            base.replace(seed=2, trial_index=4),
            base.replace(seed=1, trial_index=0),
            base.replace(seed=3, trial_index=None),
        ]
        batched = run_batch(scenarios, workers=1)
        singles = [run(s, backend="fast") for s in scenarios]
        assert_reports_bit_identical(batched, singles, label="mixed seeds")

    def test_batched_history_matches_single(self):
        scenario = Scenario(
            algorithm="simple",
            n=24,
            nests=NestConfig.all_good(2),
            seed=4,
            max_rounds=2000,
            record_history=True,
        )
        batched = run_batch(scenario.trials(3), workers=1)
        singles = [run(scenario.trial(t), backend="fast") for t in range(3)]
        for got, expect in zip(batched, singles):
            assert got.population_history is not None
            assert np.array_equal(got.population_history, expect.population_history)
            assert got.population_history.shape[0] == got.rounds_executed


class TestDispatch:
    def test_registry_batch_kernels_present(self):
        for name, _ in BATCHED_ALGORITHMS:
            assert REGISTRY.get(name).has_batch, name
        for name in ("rumor", "polya", "power_feedback"):
            assert not REGISTRY.get(name).has_batch, name

    def test_quorum_and_uniform_resolve_fast_on_auto(self):
        # The E8 comparison workload no longer falls back to the slow engine.
        from repro.api import resolve_backend

        nests = NestConfig.all_good(4)
        for name in ("quorum", "uniform"):
            scenario = Scenario(algorithm=name, n=32, nests=nests)
            assert resolve_backend(scenario) == "fast", name

    def test_v1_matcher_scenarios_skip_the_batch_kernel(self):
        scenario = Scenario(
            algorithm="simple",
            n=40,
            nests=NestConfig.all_good(4),
            seed=2,
            max_rounds=6000,
            params={"matcher": "v1"},
        )
        entry = REGISTRY.get("simple")
        assert not entry.supports_batch(scenario)
        batched = run_batch(scenario.trials(3), workers=1)
        singles = [run(scenario.trial(t), backend="fast") for t in range(3)]
        assert_reports_bit_identical(batched, singles, label="v1 singles")
        for got in batched:
            assert got.extras["matcher"] == "v1"

    def test_heterogeneous_batches_fold_into_one_ordered_list(self):
        nests = NestConfig.all_good(4)
        scenarios = [
            Scenario(algorithm="simple", n=32, nests=nests, seed=1, trial_index=0),
            Scenario(algorithm="rumor", n=64, nests=nests, seed=2),
            Scenario(algorithm="simple", n=32, nests=nests, seed=1, trial_index=1),
            Scenario(algorithm="optimal", n=24, nests=nests, seed=3, max_rounds=4000),
            Scenario(algorithm="simple", n=48, nests=nests, seed=1, trial_index=0),
        ]
        reports = run_batch(scenarios, workers=1)
        singles = [run(s) for s in scenarios]
        assert [r.algorithm for r in reports] == [s.algorithm for s in scenarios]
        assert [r.n for r in reports] == [s.n for s in scenarios]
        for got, expect in zip(reports, singles):
            assert got.converged_round == expect.converged_round

    def test_invalid_matcher_rejected(self):
        scenario = Scenario(
            algorithm="simple",
            n=16,
            nests=NestConfig.all_good(2),
            params={"matcher": "v3"},
        )
        with pytest.raises(ConfigurationError, match="matcher"):
            run(scenario, backend="fast")

    def test_invalid_batch_chunk_rejected(self):
        scenario = Scenario(algorithm="simple", n=8, nests=NestConfig.all_good(2))
        with pytest.raises(ConfigurationError):
            run_batch([scenario], batch_chunk=0)

    def test_quorum_fast_requires_v2(self):
        scenario = Scenario(
            algorithm="quorum",
            n=32,
            nests=NestConfig.all_good(4),
            params={"matcher": "v1"},
        )
        from repro.api import resolve_backend

        # auto falls back to the agent engine rather than raising...
        assert resolve_backend(scenario) == "agent"
        # ...while forcing the fast backend surfaces the limitation.
        with pytest.raises(ConfigurationError):
            run(scenario, backend="fast")

    def test_run_stats_rides_the_batch_path(self):
        scenario = Scenario(
            algorithm="simple",
            n=48,
            nests=NestConfig.binary(4, {1, 3}),
            seed=13,
            max_rounds=6000,
        )
        stats = run_stats(scenario, n_trials=6, batch_chunk=2)
        assert stats.n_trials == 6
        assert stats.n_converged == 6


class TestBaselineKernels:
    """The new quorum/uniform fast kernels behave like their agent twins."""

    def test_quorum_fast_agrees_with_agent_statistically(self):
        nests = NestConfig.binary(4, {1, 3})
        scenario = Scenario(
            algorithm="quorum", n=64, nests=nests, seed=17, max_rounds=8000
        )
        fast = collect_battery(scenario, 12, backend="fast")
        agent = collect_battery(scenario, 6, backend="agent")
        assert fast.converged.all()
        assert agent.converged.all()
        assert_medians_close(fast.rounds, agent.rounds, rel=0.6, label="quorum")

    def test_uniform_fast_agrees_with_agent_statistically(self):
        nests = NestConfig.all_good(4)
        scenario = Scenario(
            algorithm="uniform", n=48, nests=nests, seed=23, max_rounds=20_000
        )
        fast = run_batch(scenario.trials(10), workers=1)
        agent = [run(scenario.trial(t), backend="agent") for t in range(5)]
        fast_rounds = [r.converged_round for r in fast if r.converged]
        agent_rounds = [r.converged_round for r in agent if r.converged]
        assert fast_rounds and agent_rounds
        fast_median = float(np.median(fast_rounds))
        agent_median = float(np.median(agent_rounds))
        # The feedback-free random walk is high-variance; demand the same
        # order of magnitude, not a tight match.
        assert fast_median < 8 * agent_median
        assert agent_median < 8 * fast_median

    def test_uniform_is_slower_than_simple(self):
        """The ablation keeps its defining property on the fast engine."""
        nests = NestConfig.all_good(4)
        simple = run_stats(
            Scenario(algorithm="simple", n=64, nests=nests, seed=3, max_rounds=30_000),
            n_trials=8,
        )
        uniform = run_stats(
            Scenario(algorithm="uniform", n=64, nests=nests, seed=3, max_rounds=30_000),
            n_trials=8,
        )
        assert uniform.median_rounds > simple.median_rounds

    def test_quorum_can_split_or_settle_on_any_nest(self):
        """Quorum convergence is unanimity on *any* nest (good or bad)."""
        nests = NestConfig.binary(4, {1, 3})
        reports = run_batch(
            Scenario(
                algorithm="quorum", n=48, nests=nests, seed=31, max_rounds=8000
            ).trials(10),
            workers=1,
        )
        for report in reports:
            if report.converged:
                assert report.chosen_nest in (1, 2, 3, 4)
                assert report.solved == (report.chosen_nest in (1, 3))


class TestV1V2StatisticalEquivalence:
    """Convergence-time distributions and success rates must agree.

    Runs through the shared harness (:mod:`tests.helpers.equivalence`): the
    composite battery check (binomial success-rate compatibility + KS over
    censoring-included round distributions) plus the historical relative-
    median tripwire.
    """

    def _sweep(self, algorithm: str, nests: NestConfig, n: int, trials: int, max_rounds: int):
        base = Scenario(
            algorithm=algorithm, n=n, nests=nests, seed=42, max_rounds=max_rounds
        )
        v2 = collect_battery(base, trials, backend="fast")
        v1 = collect_battery(
            base.replace(params={"matcher": "v1"}), trials, backend="fast"
        )
        return v1, v2

    @pytest.mark.parametrize(
        "algorithm,n,trials,max_rounds",
        [("simple", 96, 30, 8000), ("optimal", 96, 24, 8000)],
    )
    def test_convergence_rounds_match(self, algorithm, n, trials, max_rounds):
        v1, v2 = self._sweep(algorithm, NestConfig.all_good(4), n, trials, max_rounds)
        assert v1.converged.all()
        assert v2.converged.all()
        assert_batteries_equivalent(v1, v2, label=f"{algorithm} v1-vs-v2")
        assert_medians_close(v1.rounds, v2.rounds, label=algorithm)

    def test_success_rates_match_on_mixed_nests(self):
        v1, v2 = self._sweep("simple", NestConfig.binary(4, {1, 3}), 64, 30, 8000)
        assert v1.solved.all() and v2.solved.all()
        assert_batteries_equivalent(v1, v2, label="simple mixed nests")

    def test_spread_completion_rounds_match(self):
        v1, v2 = self._sweep(
            "spread", NestConfig.single_good(6, good_nest=1), 96, 30, 4000
        )
        assert v1.converged.all()
        assert v2.converged.all()
        assert_batteries_equivalent(v1, v2, label="spread v1-vs-v2")
        assert_medians_close(v1.rounds, v2.rounds, label="spread")
