"""Tests for the vectorized lower-bound spread simulator."""

import numpy as np
import pytest

from repro.core.lower_bound import IgnorantPolicy
from repro.exceptions import ConfigurationError
from repro.fast.spread_fast import simulate_spread


class TestBasics:
    @pytest.mark.parametrize(
        "policy", [IgnorantPolicy.WAIT, IgnorantPolicy.SEARCH, IgnorantPolicy.MIXED]
    )
    def test_completes(self, policy):
        result = simulate_spread(128, 8, policy, seed=0, max_rounds=5000)
        assert result.all_informed
        assert result.rounds_to_all_informed is not None

    def test_reproducible(self):
        a = simulate_spread(128, 8, seed=4)
        b = simulate_spread(128, 8, seed=4)
        assert a.rounds_to_all_informed == b.rounds_to_all_informed

    def test_informed_history_monotone(self):
        result = simulate_spread(256, 8, seed=1)
        history = result.informed_history
        assert (np.diff(history) >= 0).all()
        assert history[-1] == 256

    def test_completion_round_matches_history(self):
        result = simulate_spread(128, 4, seed=2)
        history = result.informed_history
        first_full = int(np.argmax(history == 128)) + 1  # rounds are 1-based
        assert result.rounds_to_all_informed == first_full

    def test_round_cap(self):
        result = simulate_spread(4096, 64, IgnorantPolicy.SEARCH, seed=0, max_rounds=3)
        assert not result.all_informed
        assert result.completion_round == result.rounds_executed

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            simulate_spread(0, 4)
        with pytest.raises(ConfigurationError):
            simulate_spread(16, 1)


class TestGrowthShape:
    def test_wait_policy_grows_logarithmically(self):
        """Doubling n should add roughly a constant number of rounds."""
        medians = []
        for n in (256, 1024, 4096):
            rounds = [
                simulate_spread(n, 8, seed=s).rounds_to_all_informed
                for s in range(10)
            ]
            medians.append(float(np.median(rounds)))
        increments = np.diff(medians)
        # log growth: small, roughly equal increments (x4 size steps).
        assert all(0 <= inc <= 10 for inc in increments)

    def test_search_policy_slower_than_wait_at_scale(self):
        wait = np.median(
            [simulate_spread(2048, 16, IgnorantPolicy.WAIT, seed=s).completion_round
             for s in range(5)]
        )
        search = np.median(
            [simulate_spread(2048, 16, IgnorantPolicy.SEARCH, seed=s).completion_round
             for s in range(5)]
        )
        # Pure searching is coupon-collector-like (k log n expected per ant
        # is 1/k per round); recruitment doubles -- far faster.
        assert wait < search
