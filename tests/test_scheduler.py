"""The cell scheduler and its execution policy.

Contracts under test:

- :class:`~repro.api.CellScheduler` is exactly the executor behind
  :func:`~repro.api.run_study` — same tables, same accounting — and
  additionally streams per-cell outcomes in order;
- :class:`~repro.api.ExecutionPolicy` validates its knobs and produces
  the documented deterministic backoff schedule;
- cell-level recovery: retryable substrate faults earn retries (with the
  policy's backoff), deterministic faults don't; a repeatedly-failing
  fast cell degrades to the agent engine; an unrecoverable cell becomes
  a structured quarantine row (or raises, under fail-fast policies)
  while every other cell completes;
- configuration errors are never quarantined — a typo'd backend must
  fail loudly, not produce a "study" of failure rows.
"""

from __future__ import annotations

import pytest

import repro.api.scheduler as scheduler_module
from repro.api import (
    CellScheduler,
    ExecutionPolicy,
    ResultCache,
    Study,
    Sweep,
    grid,
    nests_spec,
    register_metric,
    run_study,
)
from repro.api.runner import run_batch as real_run_batch
from repro.exceptions import (
    CellQuarantined,
    ChunkTimeout,
    ConfigurationError,
    WorkerCrash,
)
from tests.helpers.chaos import plan_env, poison


def _study(trials: int = 4, ns: tuple = (32, 48), metrics: tuple = ()) -> Study:
    return Study(
        name="scheduler-study",
        sweep=Sweep(
            base={
                "algorithm": "simple",
                "nests": nests_spec("all_good", k=3),
                "seed": 13,
                "max_rounds": 20_000,
            },
            axes=(grid("n", ns),),
        ),
        trials=trials,
        **({"metrics": metrics} if metrics else {}),
    )


class TestExecutionPolicy:
    def test_backoff_schedule_is_deterministic(self):
        policy = ExecutionPolicy(
            backoff_base=0.05, backoff_factor=2.0, backoff_max=2.0
        )
        assert policy.backoff_delay(0) == 0.0
        assert policy.backoff_delay(1) == pytest.approx(0.05)
        assert policy.backoff_delay(2) == pytest.approx(0.10)
        assert policy.backoff_delay(3) == pytest.approx(0.20)
        assert policy.backoff_delay(10) == 2.0  # capped

    def test_zero_base_never_sleeps(self):
        policy = ExecutionPolicy(backoff_base=0.0)
        assert policy.backoff_delay(5) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"chunk_timeout": 0.0},
            {"chunk_timeout": -1.0},
            {"max_retries": -1},
            {"backoff_base": -0.1},
            {"backoff_factor": 0.5},
            {"backoff_max": -1.0},
            {"quarantine_after": 0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(**kwargs)


class TestSchedulerIsTheRunStudyExecutor:
    def test_run_matches_run_study(self):
        study = _study()
        via_function = run_study(study, cache=None)
        with CellScheduler(study, cache=None) as scheduler:
            via_scheduler = scheduler.run()
        assert via_function.table.equals(via_scheduler.table)
        assert via_function.cache_hits == via_scheduler.cache_hits
        assert via_function.simulated_trials == via_scheduler.simulated_trials

    def test_parallel_supervised_matches_serial(self):
        study = _study(trials=6)
        serial = run_study(study, cache=None)
        supervised = run_study(
            study, workers=2, cache=None, batch_chunk=2,
            policy=ExecutionPolicy(chunk_timeout=120.0),
        )
        unsupervised = run_study(
            study, workers=2, cache=None, batch_chunk=2,
            policy=ExecutionPolicy(supervise=False),
        )
        assert serial.table.equals(supervised.table)
        assert serial.table.equals(unsupervised.table)

    def test_outcomes_stream_in_cell_order(self):
        study = _study(ns=(32, 48, 64))
        with CellScheduler(study, cache=None) as scheduler:
            indices = [result.cell.index for result in scheduler.outcomes()]
        assert indices == [0, 1, 2]

    def test_clean_table_has_no_status_columns(self):
        result = run_study(_study(), cache=None)
        assert "status" not in result.table
        assert "error" not in result.table
        assert result.quarantined == ()
        assert result.degraded == ()

    def test_configuration_errors_are_never_quarantined(self):
        with pytest.raises(ConfigurationError):
            run_study(_study(), cache=None, backend="warp-drive")


class TestCellRecovery:
    def _flaky_run_batch(self, failures: list[BaseException]):
        """run_batch that raises the queued failures, then runs for real."""
        calls = []

        def wrapped(*args, **kwargs):
            calls.append(kwargs.get("chaos_scope"))
            if failures:
                raise failures.pop(0)
            return real_run_batch(*args, **kwargs)

        return wrapped, calls

    def test_retryable_failure_is_retried_with_backoff(self, monkeypatch):
        wrapped, calls = self._flaky_run_batch(
            [WorkerCrash("transient"), ChunkTimeout("slow", timeout=1.0)]
        )
        monkeypatch.setattr(scheduler_module, "run_batch", wrapped)
        sleeps: list[float] = []
        policy = ExecutionPolicy(
            quarantine_after=3, backoff_base=0.05, sleep=sleeps.append
        )
        result = run_study(_study(), cache=None, policy=policy)
        assert result.quarantined == ()
        # Cell 0 failed twice then succeeded; cell 1 ran clean.
        assert len(calls) == 4
        assert sleeps == [pytest.approx(0.05), pytest.approx(0.10)]

    def test_deterministic_failure_is_not_retried(self, monkeypatch):
        wrapped, calls = self._flaky_run_batch([ValueError("kernel bug")])
        monkeypatch.setattr(scheduler_module, "run_batch", wrapped)
        policy = ExecutionPolicy(
            quarantine_after=3, degrade_to_agent=False, sleep=lambda _: None
        )
        result = run_study(_study(ns=(32,)), cache=None, policy=policy)
        (cell,) = result.cells
        assert cell.failure is not None
        assert cell.failure.kind == "ValueError"
        assert cell.failure.attempts == 1  # no pointless replay
        assert not cell.failure.retryable
        assert len(calls) == 1

    def test_quarantine_row_is_structured_and_study_completes(
        self, monkeypatch
    ):
        plan_env(monkeypatch, poison(scope="cell0", attempt="*"))
        policy = ExecutionPolicy(sleep=lambda _: None, degrade_to_agent=False)
        disturbed = run_study(
            _study(ns=(32, 48)), workers=2, cache=None, batch_chunk=2,
            policy=policy,
        )
        clean = run_study(_study(ns=(32, 48)), cache=None)
        (bad,) = disturbed.quarantined
        assert bad.cell.index == 0
        assert bad.failure.kind == "ChaosError"
        assert bad.stats is None
        # The healthy cell completed with undisturbed values.
        table = disturbed.table.to_dict()
        assert table["status"][0] == "quarantined"
        assert table["status"][1] is None
        assert "ChaosError" in table["error"][0]
        assert table["median_rounds"][1] == clean.table.to_dict()["median_rounds"][1]

    def test_fail_fast_raises_cell_quarantined(self, monkeypatch):
        wrapped, _ = self._flaky_run_batch(
            [WorkerCrash("dead"), WorkerCrash("dead again")]
        )
        monkeypatch.setattr(scheduler_module, "run_batch", wrapped)
        policy = ExecutionPolicy(
            quarantine=False, quarantine_after=2, degrade_to_agent=False,
            sleep=lambda _: None,
        )
        with pytest.raises(CellQuarantined) as excinfo:
            run_study(_study(ns=(32,)), cache=None, policy=policy)
        assert excinfo.value.cell_index == 0
        assert isinstance(excinfo.value.cause, WorkerCrash)

    def test_degrade_to_agent_on_persistent_fast_crash(self, monkeypatch):
        register_metric(
            "degraded_fraction",
            lambda reports, stats: sum(
                1 for r in reports if "degraded" in r.extras
            )
            / len(reports),
            replace=True,
        )
        # Poison only batch chunks: the fast kernel "crashes" every
        # attempt, the agent fallback (single tasks) runs clean.
        plan_env(monkeypatch, poison(kind="batch", attempt="*"))
        policy = ExecutionPolicy(sleep=lambda _: None)
        result = run_study(
            _study(ns=(32,), metrics=("success_rate", "degraded_fraction")),
            workers=2,
            cache=None,
            batch_chunk=2,
            policy=policy,
        )
        (cell,) = result.cells
        assert cell.failure is None
        assert cell.degraded == ("ChaosError",)
        assert cell.cell.backend == "agent"  # records the serving engine
        assert result.degraded == (cell,)
        table = result.table.to_dict()
        assert table["status"][0] == "degraded"
        # Every report carried extras["degraded"], like agent_fallback.
        assert table["degraded_fraction"][0] == 1.0

    def test_degraded_result_is_cached_under_agent_key(
        self, monkeypatch, tmp_path
    ):
        plan_env(monkeypatch, poison(kind="batch", attempt="*"))
        cache = ResultCache(tmp_path)
        policy = ExecutionPolicy(sleep=lambda _: None)
        study = _study(ns=(32,))
        cold = run_study(
            study, workers=2, cache=cache, batch_chunk=2, policy=policy
        )
        warm = run_study(
            study, workers=2, cache=cache, batch_chunk=2, policy=policy
        )
        assert cold.cells[0].degraded == ("ChaosError",)
        assert warm.cells[0].cached
        assert warm.simulated_trials == 0
        assert cold.table.equals(warm.table)
