"""Chaos injection: recovery is bit-deterministic, and nothing leaks.

The paper's colonies tolerate crashed and Byzantine ants; these tests
assert the execution substrate tolerates crashed and Byzantine *workers*.
Every scenario drives a real multiprocess run under a deterministic
``$REPRO_CHAOS`` plan (:mod:`tests.helpers.chaos`) and checks the two
resilience invariants:

1. **bit-determinism** — a study disturbed by SIGKILLed workers, stalled
   chunks, or transient flakes produces a ``ResultTable`` bit-identical
   (``equals``) to an undisturbed run, and recovered reports still match
   the committed golden digests;
2. **no leaks** — shared-memory segments of in-flight chunks on killed
   workers are always unlinked by the parent (the ``shm_watch`` fixture
   scans ``/dev/shm``), on both the supervised and the legacy dispatch
   paths.
"""

from __future__ import annotations

import json

import pytest

import repro.api.transport as transport
from repro.api import (
    ExecutionPolicy,
    Study,
    Sweep,
    grid,
    nests_spec,
    run_batch,
    run_study,
)
from repro.api import chaos
from repro.api.chaos import ChaosError
from tests.helpers.chaos import (
    flake,
    kill,
    plan_env,
    poison,
    seeded_plan,
    stall,
)
from tests.helpers.golden import digest_reports, golden_cases, load_golden

#: Fast-converging recovery policy: tight backoff so retry rounds don't
#: dominate test wall-clock; a 1 s chunk deadline for the stall cases.
POLICY = ExecutionPolicy(
    chunk_timeout=1.0, backoff_base=0.01, backoff_max=0.05
)


def _study(ns: tuple = (32, 48), trials: int = 6) -> Study:
    return Study(
        name="chaos-study",
        sweep=Sweep(
            base={
                "algorithm": "simple",
                "nests": nests_spec("all_good", k=3),
                "seed": 21,
                "max_rounds": 20_000,
            },
            axes=(grid("n", ns),),
        ),
        trials=trials,
    )


class TestPlanParsing:
    def test_unset_and_switch_values_mean_empty_plan(self):
        assert chaos.parse_plan(None) == []
        assert chaos.parse_plan("") == []
        assert chaos.parse_plan("1") == []
        assert chaos.parse_plan("on") == []
        assert chaos.parse_plan("TRUE") == []

    def test_inline_json_list(self):
        plan = chaos.parse_plan('[{"action": "kill", "task": 2}]')
        assert plan == [{"action": "kill", "task": 2}]

    def test_entries_object_and_unknown_actions_filtered(self):
        text = json.dumps(
            {
                "entries": [
                    {"action": "stall", "seconds": 1},
                    {"action": "reformat-disk"},
                    "not-a-dict",
                ]
            }
        )
        assert chaos.parse_plan(text) == [{"action": "stall", "seconds": 1}]

    def test_file_reference(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('[{"action": "flake"}]', encoding="utf-8")
        assert chaos.parse_plan(f"@{path}") == [{"action": "flake"}]
        assert chaos.parse_plan(str(path)) == [{"action": "flake"}]

    def test_malformed_values_never_break_a_run(self, tmp_path):
        assert chaos.parse_plan("{not json") == []
        assert chaos.parse_plan('{"no": "entries"}') == []
        assert chaos.parse_plan(str(tmp_path / "missing.json")) == []

    def test_inject_matches_coordinates(self, monkeypatch):
        plan_env(monkeypatch, poison(scope="cellX", task=2))
        # Wrong task, wrong scope, wrong attempt: all no-ops.
        chaos.maybe_inject("cellX", 1, 0, "batch", "start")
        chaos.maybe_inject("cellY", 2, 0, "batch", "start")
        chaos.maybe_inject("cellX", 2, 1, "batch", "start")
        chaos.maybe_inject("cellX", 2, 0, "batch", "result")
        with pytest.raises(ChaosError):
            chaos.maybe_inject("cellX", 2, 0, "batch", "start")

    def test_inject_without_plan_is_inert(self, monkeypatch):
        monkeypatch.delenv(chaos.CHAOS_ENV, raising=False)
        chaos.maybe_inject("cell0", 0, 0, "batch", "start")


@pytest.mark.usefixtures("shm_watch")
class TestRecoveryDeterminism:
    def test_flake_is_retried_bit_identically(self, monkeypatch):
        study = _study()
        undisturbed = run_study(study, cache=None)
        plan_env(monkeypatch, flake(scope="cell0", task=0))
        disturbed = run_study(
            study, workers=2, cache=None, batch_chunk=2, policy=POLICY
        )
        assert undisturbed.table.equals(disturbed.table)

    def test_killed_worker_recovers_at_any_worker_count(self, monkeypatch):
        study = _study()
        serial = run_study(study, cache=None)
        parallel = run_study(study, workers=4, cache=None, batch_chunk=2)
        plan_env(monkeypatch, kill(scope="cell0", task=0))
        disturbed = run_study(
            study, workers=4, cache=None, batch_chunk=2, policy=POLICY
        )
        assert serial.table.equals(disturbed.table)
        assert parallel.table.equals(disturbed.table)

    def test_stalled_chunk_times_out_and_recovers(self, monkeypatch):
        study = _study(ns=(32,))
        undisturbed = run_study(study, cache=None)
        plan_env(monkeypatch, stall(30.0, scope="cell0", task=1))
        disturbed = run_study(
            study, workers=2, cache=None, batch_chunk=2, policy=POLICY
        )
        assert undisturbed.table.equals(disturbed.table)

    def test_seeded_plan_recovers_bit_identically(self, monkeypatch):
        study = _study(ns=(48,))
        undisturbed = run_study(study, cache=None)
        plan = seeded_plan(seed=5, n_tasks=3, scope="cell0")
        plan_env(monkeypatch, *plan)
        disturbed = run_study(
            study, workers=2, cache=None, batch_chunk=2, policy=POLICY
        )
        assert undisturbed.table.equals(disturbed.table)

    def test_golden_digests_survive_chaos_recovery(self, monkeypatch):
        name = "simple_clean"
        scenarios = golden_cases()[name]
        plan_env(monkeypatch, kill(task=1))
        reports = run_batch(
            scenarios, workers=2, batch_chunk=2, policy=POLICY
        )
        assert digest_reports(reports) == load_golden()[name]


@pytest.mark.usefixtures("shm_watch")
class TestAcceptanceScenario:
    def test_kill_stall_and_poison_in_one_study(self, monkeypatch):
        """The ISSUE acceptance run: SIGKILL one worker, stall another
        past the deadline, poison one cell's kernel on every attempt —
        the study completes, the poisoned cell is quarantined, and every
        other cell is bit-identical to the undisturbed run."""
        study = _study(ns=(32, 48, 64))
        undisturbed = run_study(study, cache=None)
        plan_env(
            monkeypatch,
            kill(scope="cell0", task=0),
            stall(30.0, scope="cell1", task=1),
            poison(scope="cell2", attempt="*"),
        )
        policy = ExecutionPolicy(
            chunk_timeout=1.0,
            backoff_base=0.01,
            backoff_max=0.05,
            degrade_to_agent=False,
        )
        disturbed = run_study(
            study, workers=2, cache=None, batch_chunk=2, policy=policy
        )
        assert len(disturbed.cells) == 3
        (bad,) = disturbed.quarantined
        assert bad.cell.index == 2
        assert bad.failure.kind == "ChaosError"
        clean_columns = undisturbed.table.to_dict()
        got_columns = disturbed.table.to_dict()
        for name, values in clean_columns.items():
            assert got_columns[name][:2] == values[:2], name
        assert got_columns["status"] == [None, None, "quarantined"]

    def test_chaos_smoke_switch_is_inert(self, monkeypatch):
        """$REPRO_CHAOS=1 (the CI chaos-smoke switch) enables the hooks
        with an empty plan — results must be untouched."""
        study = _study(ns=(32,))
        undisturbed = run_study(study, cache=None)
        monkeypatch.setenv(chaos.CHAOS_ENV, "1")
        smoke = run_study(
            study, workers=2, cache=None, batch_chunk=2, policy=POLICY
        )
        assert undisturbed.table.equals(smoke.table)


@pytest.mark.usefixtures("shm_watch")
class TestShmLeakOnWorkerDeath:
    """Satellite: a killed worker's in-flight segment never outlives the
    run — the parent assigns segment names up front and unlinks them on
    every failure path (supervised and legacy)."""

    def _scenarios(self):
        from repro.api import Scenario
        from repro.model.nests import NestConfig

        return Scenario(
            algorithm="simple",
            n=64,
            nests=NestConfig.all_good(3),
            seed=33,
            max_rounds=20_000,
        ).trials(6)

    def test_supervised_kill_after_segment_creation(self, monkeypatch):
        scenarios = self._scenarios()
        serial = run_batch(scenarios)
        monkeypatch.setattr(transport, "SHM_MIN_BYTES", 0)
        # Kill at phase "result": the worker has already created and
        # populated its parent-named segment when it dies.
        plan_env(monkeypatch, kill(task=0, phase="result"))
        recovered = run_batch(
            scenarios, workers=2, batch_chunk=2, transport="shm",
            policy=POLICY,
        )
        for a, b in zip(serial, recovered):
            assert a.to_dict(include_history=True) == b.to_dict(
                include_history=True
            )

    def test_legacy_dispatch_unlinks_in_flight_segments(self, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        scenarios = self._scenarios()
        monkeypatch.setattr(transport, "SHM_MIN_BYTES", 0)
        plan_env(monkeypatch, kill(task=0, phase="result"))
        # Without supervision the failure propagates (legacy semantics),
        # but the shm_watch fixture proves no segment leaks.
        with pytest.raises(BrokenProcessPool):
            run_batch(scenarios, workers=2, batch_chunk=2, transport="shm")
