"""Tests for the adaptive recruitment-rate extensions (Section 6)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.extensions.adaptive import (
    AdaptiveSimpleAnt,
    PowerFeedbackAnt,
    adaptive_factory,
    ktilde_schedule,
    power_feedback_factory,
)
from repro.fast.simple_fast import simulate_simple
from repro.model.actions import SearchResult
from repro.model.nests import NestConfig
from repro.sim.run import run_trial


class TestKtildeSchedule:
    def test_initial_value(self):
        schedule = ktilde_schedule(16, half_life=4)
        assert schedule(1) == pytest.approx(16.0)

    def test_halves_per_half_life(self):
        schedule = ktilde_schedule(16, half_life=4)
        assert schedule(5) == pytest.approx(8.0)
        assert schedule(9) == pytest.approx(4.0)

    def test_floors_at_one(self):
        schedule = ktilde_schedule(4, half_life=1)
        assert schedule(50) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ktilde_schedule(0.5, half_life=2)
        with pytest.raises(ConfigurationError):
            ktilde_schedule(4, half_life=0)


class TestAdaptiveAnt:
    def test_boosted_probability(self):
        # count/n = 1/8, multiplier 8 -> recruit with probability ~1.
        draws = []
        for seed in range(200):
            ant = AdaptiveSimpleAnt(
                0, 64, np.random.default_rng(seed), schedule=lambda phase: 8.0
            )
            ant.decide()
            ant.observe(SearchResult(nest=1, quality=1.0, count=8))
            draws.append(ant.decide().active)
        assert np.mean(draws) > 0.95

    def test_multiplier_one_matches_plain_rate(self):
        draws = []
        for seed in range(600):
            ant = AdaptiveSimpleAnt(
                0, 16, np.random.default_rng(seed), schedule=lambda phase: 1.0
            )
            ant.decide()
            ant.observe(SearchResult(nest=1, quality=1.0, count=8))
            draws.append(ant.decide().active)
        assert 0.42 < np.mean(draws) < 0.58

    def test_label(self):
        ant = AdaptiveSimpleAnt(
            0, 16, np.random.default_rng(0), schedule=lambda phase: 1.0
        )
        assert ant.state_label().startswith("adaptive-")

    def test_end_to_end(self):
        nests = NestConfig.all_good(8)
        result = run_trial(
            adaptive_factory(k_initial=8), 128, nests, seed=1, max_rounds=8000
        )
        assert result.converged

    def test_speedup_at_large_k(self):
        """The headline claim of E9, at test scale (fast engine)."""
        k = 16
        nests = NestConfig.all_good(k)
        schedule = ktilde_schedule(k, half_life=k / 4)
        plain = [
            simulate_simple(512, nests, seed=s, max_rounds=20_000).converged_round
            for s in range(8)
        ]
        adaptive = [
            simulate_simple(
                512, nests, seed=s, max_rounds=20_000, rate_multiplier=schedule
            ).converged_round
            for s in range(8)
        ]
        assert np.median(adaptive) < np.median(plain)


class TestPowerFeedbackAnt:
    def test_probability_is_power_of_share(self):
        # count/n = 1/4, beta = 0.5 -> p = 1/2.
        draws = []
        for seed in range(600):
            ant = PowerFeedbackAnt(0, 16, np.random.default_rng(seed), beta=0.5)
            ant.decide()
            ant.observe(SearchResult(nest=1, quality=1.0, count=4))
            draws.append(ant.decide().active)
        assert 0.42 < np.mean(draws) < 0.58

    def test_beta_one_is_plain_algorithm(self):
        draws = []
        for seed in range(600):
            ant = PowerFeedbackAnt(0, 16, np.random.default_rng(seed), beta=1.0)
            ant.decide()
            ant.observe(SearchResult(nest=1, quality=1.0, count=4))
            draws.append(ant.decide().active)
        assert 0.18 < np.mean(draws) < 0.33

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PowerFeedbackAnt(0, 16, np.random.default_rng(0), beta=0.0)
        with pytest.raises(ConfigurationError):
            PowerFeedbackAnt(0, 16, np.random.default_rng(0), beta=1.5)

    def test_end_to_end(self):
        nests = NestConfig.all_good(4)
        result = run_trial(
            power_feedback_factory(beta=0.5), 96, nests, seed=2, max_rounds=8000
        )
        assert result.converged
