"""Agent-vs-fast equivalence for the lower-bound spread process.

Completes the cross-engine test triad (Algorithm 3 and Algorithm 2 have
their own equivalence tests): the two implementations of the information-
spreading process must produce statistically indistinguishable completion
times.
"""

import numpy as np
import pytest

from repro.core.colony import informed_spread_factory
from repro.core.lower_bound import IgnorantPolicy
from repro.fast.spread_fast import simulate_spread
from repro.model.nests import NestConfig
from repro.sim.run import run_trials


@pytest.mark.parametrize(
    "policy", [IgnorantPolicy.WAIT, IgnorantPolicy.MIXED]
)
def test_spread_distributional_match(policy):
    n, k, trials = 96, 8, 15
    nests = NestConfig.single_good(k, good_nest=1)
    agent = run_trials(
        informed_spread_factory(policy),
        n,
        nests,
        n_trials=trials,
        base_seed=21,
        max_rounds=2000,
    )
    fast = [
        simulate_spread(n, k, policy, seed=3000 + s, max_rounds=2000)
        for s in range(trials)
    ]
    fast_median = float(np.median([r.rounds_to_all_informed for r in fast]))
    assert agent.success_rate == 1.0
    assert all(r.all_informed for r in fast)
    assert abs(fast_median - agent.median_rounds) <= 0.4 * max(
        fast_median, agent.median_rounds
    )


def test_fast_spread_search_policy_matches_coupon_collector_scale():
    """With pure searching (no recruitment), each ignorant ant finds the
    good nest w.p. 1/k per round; the colony completion time is the max of
    n geometric variables ≈ k·ln n.  The measured median should sit within
    a factor ~2 of that (discreteness + max-statistics slack)."""
    n, k = 512, 8
    expected = k * np.log(n)
    rounds = [
        simulate_spread(n, k, IgnorantPolicy.SEARCH, seed=s).completion_round
        for s in range(10)
    ]
    measured = float(np.median(rounds))
    assert expected / 2 <= measured <= expected * 2
