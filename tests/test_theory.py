"""Tests for the paper's theoretical constants and bound functions."""

import numpy as np
import pytest

from repro.analysis import theory
from repro.exceptions import ConfigurationError


class TestConstants:
    def test_lemma_2_1(self):
        assert theory.LEMMA_2_1_SUCCESS_LOWER_BOUND == pytest.approx(1 / 16)

    def test_lemma_3_1(self):
        assert theory.LEMMA_3_1_IGNORANCE_LOWER_BOUND == pytest.approx(1 / 4)

    def test_lemma_4_2(self):
        assert theory.LEMMA_4_2_DROPOUT_LOWER_BOUND == pytest.approx(1 / 66)

    def test_block_decay(self):
        assert theory.theorem_4_3_block_decay() == pytest.approx(65 / 66)


class TestLowerBound:
    def test_grows_logarithmically(self):
        small = theory.lower_bound_rounds(256)
        large = theory.lower_bound_rounds(256**2)
        # (log4 n)/2 doubles when n squares.
        gap = theory.lower_bound_rounds(256) + np.log(12) / np.log(4)
        assert large - small == pytest.approx(gap, rel=1e-6)

    def test_matches_formula(self):
        n, c = 4096, 2.0
        expected = np.log(n) / (2 * np.log(4)) - np.log(12 * c) / np.log(4)
        assert theory.lower_bound_rounds(n, c) == pytest.approx(expected)

    def test_remaining_ignorant(self):
        assert theory.remaining_ignorant_bound(100, c=1.0) == pytest.approx(60.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            theory.lower_bound_rounds(1)
        with pytest.raises(ConfigurationError):
            theory.lower_bound_rounds(10, c=0)


class TestKBounds:
    def test_optimal_k_bound_formula(self):
        n = 1024
        assert theory.optimal_k_bound(n, c=1.0) == pytest.approx(
            n / (24 * np.log(n))
        )

    def test_simple_k_bound_far_smaller(self):
        n = 1 << 20
        assert theory.simple_k_bound(n) < theory.optimal_k_bound(n)

    def test_simple_k_bound_requires_d_64(self):
        with pytest.raises(ConfigurationError):
            theory.simple_k_bound(1024, d=32)

    def test_bounds_increase_with_n(self):
        assert theory.optimal_k_bound(1 << 16) > theory.optimal_k_bound(1 << 10)
        assert theory.simple_k_bound(1 << 16) > theory.simple_k_bound(1 << 10)


class TestSection5:
    def test_initial_gap_formula(self):
        assert theory.lemma_5_4_initial_gap(101) == pytest.approx(1 / 300)

    def test_small_nest_threshold(self):
        assert theory.small_nest_threshold(6400, 10) == pytest.approx(10.0)

    def test_dropout_horizon_scales_with_k(self):
        assert theory.simple_dropout_horizon(
            1024, 8
        ) == pytest.approx(2 * theory.simple_dropout_horizon(1024, 4))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            theory.lemma_5_4_initial_gap(1)
        with pytest.raises(ConfigurationError):
            theory.small_nest_threshold(0, 1)
        with pytest.raises(ConfigurationError):
            theory.simple_dropout_horizon(1, 1)
