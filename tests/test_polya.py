"""Tests for the Pólya-urn reference process."""

import numpy as np
import pytest

from repro.baselines.polya import PolyaUrn, urn_win_probability
from repro.exceptions import ConfigurationError


class TestUrn:
    def test_step_adds_one_ball(self, rng):
        urn = PolyaUrn([3, 3])
        chosen = urn.step(rng)
        assert urn.total == 7
        assert chosen in (0, 1)

    def test_run_trajectory_shape(self, rng):
        urn = PolyaUrn([2, 2, 2], gamma=1.0)
        trajectory = urn.run(50, rng)
        assert trajectory.shape == (51, 3)
        assert np.allclose(trajectory.sum(axis=1), 1.0)

    def test_shares(self):
        urn = PolyaUrn([1, 3])
        assert urn.shares().tolist() == [0.25, 0.75]

    def test_empty_urn_never_reinforced(self, rng):
        urn = PolyaUrn([0, 5], gamma=2.0)
        for _ in range(20):
            urn.step(rng)
        assert urn.counts[0] == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PolyaUrn([5])
        with pytest.raises(ConfigurationError):
            PolyaUrn([0, 0])
        with pytest.raises(ConfigurationError):
            PolyaUrn([-1, 2])
        with pytest.raises(ConfigurationError):
            PolyaUrn([1, 1], gamma=0.0)


class TestDominance:
    def test_superlinear_locks_in(self, rng):
        p = urn_win_probability(30, 10, steps=400, trials=60, rng=rng, gamma=2.0)
        assert p > 0.95

    def test_gamma2_sharper_than_gamma1(self, rng):
        p2 = urn_win_probability(22, 18, steps=400, trials=150, rng=rng, gamma=2.0)
        p1 = urn_win_probability(22, 18, steps=400, trials=150, rng=rng, gamma=1.0)
        assert p2 > p1

    def test_even_start_is_fair(self, rng):
        p = urn_win_probability(10, 10, steps=200, trials=200, rng=rng, gamma=2.0)
        assert 0.35 < p < 0.65

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            urn_win_probability(1, 1, steps=10, trials=0, rng=rng)
