"""The declarative Sweep/Study layer: expansion, execution, results."""

import json

import numpy as np
import pytest

from repro.api import (
    STUDIES,
    ResultTable,
    Scenario,
    Study,
    Sweep,
    cases,
    default_workers,
    expr,
    grid,
    nests_spec,
    ref,
    register_metric,
    run_study,
    zipped,
)
from repro.api.sweep import expand_study
from repro.exceptions import ConfigurationError
from repro.model.nests import NestConfig


def small_study(**overrides) -> Study:
    fields = dict(
        name="test-study",
        sweep=Sweep(
            base={
                "algorithm": "simple",
                "nests": nests_spec("all_good", k=ref("k")),
                "seed": expr(7, n=1, cast="int"),
                "max_rounds": 10_000,
            },
            axes=(grid("n", (32, 64)), grid("k", (2, 4))),
        ),
        trials=4,
        metrics=("n_trials", "success_rate", "median_rounds"),
    )
    fields.update(overrides)
    return Study(**fields)


class TestSweepExpansion:
    def test_grid_axes_cartesian_product(self):
        cells = small_study().sweep.cells()
        assert [(c["n"], c["k"]) for c in cells] == [
            (32, 2),
            (32, 4),
            (64, 2),
            (64, 4),
        ]

    def test_zip_axis_binds_rows(self):
        sweep = Sweep(axes=(zipped(("a", "b"), [[1, "x"], [2, "y"]]),))
        assert sweep.cells() == [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]

    def test_zip_axis_rejects_ragged_rows(self):
        sweep = Sweep(axes=(zipped(("a", "b"), [[1]]),))
        with pytest.raises(ConfigurationError):
            sweep.cells()

    def test_cases_axis(self):
        sweep = Sweep(axes=(cases({"a": 1}, {"a": 2, "b": 3}),))
        assert sweep.cells() == [{"a": 1}, {"a": 2, "b": 3}]

    def test_exclude_drops_matching_cells(self):
        sweep = Sweep(
            axes=(grid("a", (0, 1)), grid("b", (0, 1))),
            exclude=({"a": 0, "b": 1},),
        )
        assert {(c["a"], c["b"]) for c in sweep.cells()} == {
            (0, 0),
            (1, 0),
            (1, 1),
        }

    def test_colliding_axis_variables_error(self):
        sweep = Sweep(axes=(grid("a", (1,)), cases({"a": 2})))
        with pytest.raises(ConfigurationError, match="same variable"):
            sweep.cells()

    def test_empty_sweep_errors(self):
        with pytest.raises(ConfigurationError, match="no cells"):
            Sweep(axes=(grid("a", ()),)).cells()

    def test_single_axis_dict_is_wrapped(self):
        sweep = Sweep(axes=grid("a", (1, 2)))
        assert len(sweep.cells()) == 2

    def test_malformed_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="axis"):
            Sweep(axes=({"values": [1]},))


class TestCellResolution:
    def test_scenarios_from_specs(self):
        cells = expand_study(small_study())
        first = cells[0]
        assert first.scenario == Scenario(
            algorithm="simple",
            n=32,
            nests=NestConfig.all_good(2),
            seed=39,  # 7 + n
            max_rounds=10_000,
        )
        assert cells[-1].scenario.nests.k == 4
        assert cells[-1].scenario.seed == 71

    def test_nested_params_and_dotted_paths(self):
        study = small_study(
            sweep=Sweep(
                base={
                    "algorithm": "uniform",
                    "nests": nests_spec("all_good", k=2),
                    "noise": {"kind": "count", "relative_sigma": 0.0},
                },
                axes=(
                    grid("n", (16,)),
                    grid("params.recruit_probability", (0.25,)),
                    grid("noise.relative_sigma", (0.5,)),
                ),
            )
        )
        scenario = expand_study(study)[0].scenario
        assert scenario.params["recruit_probability"] == 0.25
        assert scenario.noise.relative_sigma == 0.5

    def test_nest_factories(self):
        for factory, kwargs, expected in [
            ("all_good", {"k": 3}, NestConfig.all_good(3)),
            ("single_good", {"k": 3, "good_nest": 2}, NestConfig.single_good(3, 2)),
            ("binary", {"k": 3, "good": [1, 3]}, NestConfig.binary(3, {1, 3})),
            ("graded", {"qualities": [0.9, 0.2]}, NestConfig.graded([0.9, 0.2])),
        ]:
            study = small_study(
                sweep=Sweep(
                    base={"algorithm": "simple", "nests": nests_spec(factory, **kwargs)},
                    axes=(grid("n", (8,)),),
                )
            )
            assert expand_study(study)[0].scenario.nests == expected

    def test_unknown_nest_factory_rejected(self):
        with pytest.raises(ConfigurationError, match="nest factory"):
            nests_spec("bogus", k=2)

    def test_ref_to_unknown_variable_errors(self):
        study = small_study(
            sweep=Sweep(
                base={
                    "algorithm": "simple",
                    "nests": nests_spec("all_good", k=2),
                    "seed": ref("nope"),
                },
                axes=(grid("n", (8,)),),
            )
        )
        with pytest.raises(ConfigurationError, match="nope"):
            expand_study(study)

    def test_reserved_bindings_override_study_defaults(self):
        study = small_study(
            sweep=Sweep(
                base={"algorithm": "simple", "nests": nests_spec("all_good", k=2)},
                axes=(
                    cases(
                        {"n": 8},
                        {"n": 16, "trials": 9, "backend": "agent", "trial_start": 5},
                    ),
                ),
            )
        )
        default_cell, override_cell = expand_study(study)
        assert (default_cell.trials, default_cell.trial_start) == (4, 0)
        assert override_cell.trials == 9
        assert override_cell.trial_start == 5
        assert override_cell.backend == "agent"

    def test_unknown_base_key_rejected(self):
        study = small_study(
            sweep=Sweep(
                base={"algorithm": "simple", "nests": nests_spec("all_good", k=2), "typo": 1},
                axes=(grid("n", (8,)),),
            )
        )
        with pytest.raises(ConfigurationError, match="typo"):
            expand_study(study)

    def test_cell_index_available_to_exprs(self):
        study = small_study(
            sweep=Sweep(
                base={
                    "algorithm": "simple",
                    "nests": nests_spec("all_good", k=2),
                    "trial_start": expr(0, cell_index=10, cast="int"),
                },
                axes=(grid("n", (8, 16, 32)),),
            )
        )
        assert [c.trial_start for c in expand_study(study)] == [0, 10, 20]


class TestStudySerialization:
    def test_json_round_trip(self):
        study = small_study()
        clone = Study.from_json(study.to_json())
        assert clone == study
        assert clone.sweep.cells() == study.sweep.cells()

    def test_unknown_metric_rejected(self):
        with pytest.raises(ConfigurationError, match="metric"):
            small_study(metrics=("not_a_metric",))

    def test_explicit_empty_metrics_round_trips(self):
        study = small_study(metrics=())
        assert Study.from_json(study.to_json()).metrics == ()
        # A missing key (hand-written file) still gets the defaults.
        data = study.to_dict()
        del data["metrics"]
        assert Study.from_dict(data).metrics  # non-empty defaults

    def test_study_file_runs_identically(self, tmp_path):
        study = small_study()
        direct = run_study(study, cache=None)
        reloaded = run_study(Study.from_json(study.to_json()), cache=None)
        assert direct.table.equals(reloaded.table)


class TestRunStudy:
    def test_deterministic_across_workers(self):
        study = small_study()
        serial = run_study(study, cache=None, workers=1)
        parallel = run_study(study, cache=None, workers=4)
        assert serial.table.equals(parallel.table)
        assert serial.simulated_trials == parallel.simulated_trials == 16

    def test_matches_run_batch_semantics(self):
        from repro.api import aggregate, run_batch

        study = small_study()
        result = run_study(study, cache=None)
        cell = result.cells[0].cell
        stats = aggregate(run_batch(cell.scenario.trials(cell.trials)))
        assert result.cells[0].stats.n_converged == stats.n_converged
        assert np.array_equal(result.cells[0].stats.rounds, stats.rounds)

    def test_backend_override_applies_to_all_cells(self):
        study = small_study()
        result = run_study(study, cache=None, backend="agent")
        assert all(c.cell.backend == "agent" for c in result.cells)

    def test_custom_metric_columns(self):
        register_metric(
            "test_rounds_spread",
            lambda reports, stats: {
                "rounds_lo": min(r.rounds_to_convergence for r in reports),
                "rounds_hi": max(r.rounds_to_convergence for r in reports),
            },
            replace=True,
        )
        study = small_study(metrics=("test_rounds_spread",))
        table = run_study(study, cache=None).table
        assert "rounds_lo" in table.column_names
        assert (table["rounds_lo"] <= table["rounds_hi"]).all()

    def test_sweep_variable_metric_name_collision_errors(self):
        # A swept variable named like a metric column must not be silently
        # overwritten by the metric value.
        study = small_study(
            sweep=Sweep(
                base={"algorithm": "simple", "nests": nests_spec("all_good", k=2)},
                axes=(grid("n", (8,)), grid("median_rounds", (1, 2))),
            )
        )
        with pytest.raises(ConfigurationError, match="collides"):
            run_study(study, cache=None)

    def test_study_registry_builds_quick_studies(self):
        import repro.experiments  # noqa: F401  (registers E1..E14)

        assert len(STUDIES) >= 15
        study = STUDIES.build("E7", quick=True, base_seed=3)
        assert study.name == "E7"
        assert all(cell.scenario.algorithm == "simple" for cell in expand_study(study))


class TestResultTable:
    def table(self) -> ResultTable:
        return ResultTable(
            {
                "n": [32, 32, 64, 64],
                "variant": ["a", "b", "a", "b"],
                "rounds": [10.0, 20.0, 30.0, float("nan")],
            }
        )

    def test_dtypes(self):
        table = self.table()
        assert table["n"].dtype == np.int64
        assert table["rounds"].dtype == np.float64
        assert table["variant"].dtype == object

    def test_select_and_value(self):
        table = self.table()
        assert table.select(n=32).n_rows == 2
        assert table.value("rounds", n=64, variant="a") == 30.0
        with pytest.raises(ConfigurationError, match="no rows"):
            table.select(n=128)
        with pytest.raises(ConfigurationError, match="expected 1"):
            table.value("rounds", n=32)

    def test_group_by_and_stats(self):
        table = self.table()
        groups = table.group_by("n")
        assert [key for key, _ in groups] == [(32,), (64,)]
        assert groups[0][1].mean("rounds") == 15.0
        assert table.quantile("rounds", 0.5) == 20.0

    def test_rows_round_trip_json(self):
        table = self.table()
        clone = ResultTable.from_json(table.to_json())
        assert clone.equals(table)

    def test_csv_export(self):
        text = self.table().to_csv()
        lines = text.strip().splitlines()
        assert lines[0] == "n,variant,rounds"
        assert len(lines) == 5
        assert lines[-1].startswith("64,b,")

    def test_from_rows_fills_missing_with_none(self):
        table = ResultTable.from_rows([{"a": 1}, {"a": 2, "b": 3.5}])
        assert np.isnan(table["b"][0])
        assert table["b"][1] == 3.5

    def test_nan_equality(self):
        nan_table = ResultTable({"x": [float("nan")]})
        assert nan_table.equals(ResultTable({"x": [float("nan")]}))
        assert not nan_table.equals(ResultTable({"x": [1.0]}))


class TestDefaultWorkers:
    def test_parses_valid_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert default_workers() == 4

    def test_unset_defaults_to_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() == 1

    @pytest.mark.parametrize("raw", ["", "abc", "2.5", "-3", "0"])
    def test_invalid_values_fall_back_to_serial(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_WORKERS", raw)
        assert default_workers() == 1

    def test_experiments_share_the_helper(self):
        from repro.experiments import common

        assert common.default_workers is default_workers
