"""Property-based round-trips for the perturbation layers.

Perturbed scenarios are sweep- and cache-currency: a ``FaultPlan``,
``CountNoise``/``EncounterNoise`` or ``DelayModel`` must survive
``Scenario.to_dict``/``from_dict`` unchanged, serialize canonically
(equal scenarios → byte-identical JSON), and hash to a stable
content-address — otherwise the result cache would alias or miss across
processes.  Hypothesis drives the whole parameter space instead of a few
hand-picked values.

``hypothesis`` is an optional test dependency; the module skips cleanly
where it is absent.
"""

from __future__ import annotations

import json

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.api import Scenario, scenario_features  # noqa: E402
from repro.api.cache import content_key  # noqa: E402
from repro.extensions.estimation import (  # noqa: E402
    EncounterNoise,
    EncounterRateEstimator,
)
from repro.model.nests import NestConfig  # noqa: E402
from repro.sim.asynchrony import DelayModel  # noqa: E402
from repro.sim.faults import CrashMode, FaultPlan  # noqa: E402
from repro.sim.noise import CountNoise  # noqa: E402

NESTS = NestConfig.binary(3, {1, 2})

#: Bounded, non-NaN probability/σ values (the layers validate ranges).
_prob = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
_sigma = st.floats(min_value=0.0, max_value=8.0, allow_nan=False)


@st.composite
def fault_plans(draw) -> FaultPlan:
    crash = draw(st.floats(min_value=0.0, max_value=0.6))
    byzantine = draw(st.floats(min_value=0.0, max_value=0.4))
    lo = draw(st.integers(min_value=1, max_value=50))
    hi = draw(st.integers(min_value=lo, max_value=lo + 100))
    return FaultPlan(
        crash_fraction=crash,
        byzantine_fraction=byzantine,
        crash_round_range=(lo, hi),
        crash_mode=draw(st.sampled_from(list(CrashMode))),
        seek_bad=draw(st.booleans()),
    )


@st.composite
def count_noises(draw) -> CountNoise:
    return CountNoise(
        relative_sigma=draw(_sigma),
        absolute_sigma=draw(_sigma),
        quality_flip_prob=draw(_prob),
    )


@st.composite
def encounter_noises(draw) -> EncounterNoise:
    return EncounterNoise(
        estimator=EncounterRateEstimator(
            trials=draw(st.integers(min_value=1, max_value=512)),
            capacity=draw(st.integers(min_value=1, max_value=4096)),
        ),
        quality_flip_prob=draw(_prob),
    )


@st.composite
def delay_models(draw) -> DelayModel:
    return DelayModel(
        draw(st.floats(min_value=0.0, max_value=0.95))
    )


@st.composite
def perturbed_scenarios(draw) -> Scenario:
    return Scenario(
        algorithm=draw(st.sampled_from(("simple", "optimal", "uniform"))),
        n=draw(st.integers(min_value=1, max_value=512)),
        nests=NESTS,
        seed=draw(st.integers(min_value=0, max_value=2**31)),
        trial_index=draw(st.one_of(st.none(), st.integers(0, 1000))),
        max_rounds=draw(st.integers(min_value=1, max_value=10**6)),
        noise=draw(st.one_of(st.none(), count_noises(), encounter_noises())),
        fault_plan=draw(st.one_of(st.none(), fault_plans())),
        delay_model=draw(st.one_of(st.none(), delay_models())),
        criterion=draw(
            st.sampled_from((None, "good", "good_healthy", "unanimous"))
        ),
    )


@settings(max_examples=60, deadline=None)
@given(scenario=perturbed_scenarios())
def test_scenario_round_trips_through_dict(scenario):
    rebuilt = Scenario.from_dict(scenario.to_dict())
    assert rebuilt == scenario
    # A second hop is a fixed point.
    assert Scenario.from_dict(rebuilt.to_dict()) == rebuilt


@settings(max_examples=60, deadline=None)
@given(scenario=perturbed_scenarios())
def test_serialization_is_canonical_and_cache_key_stable(scenario):
    direct = scenario.to_json(sort_keys=True)
    rebuilt = Scenario.from_json(scenario.to_json())
    assert rebuilt.to_json(sort_keys=True) == direct
    # The sweep cache's content address is a pure function of the scenario:
    # a dict→scenario→dict lap must never move a perturbed cell's key.
    assert content_key(scenario.to_dict()) == content_key(rebuilt.to_dict())
    # And the JSON text itself round-trips value-stably.
    assert json.loads(direct) == json.loads(rebuilt.to_json(sort_keys=True))


@settings(max_examples=60, deadline=None)
@given(scenario=perturbed_scenarios())
def test_scenario_features_are_trip_invariant(scenario):
    """Feature extraction (hence backend dispatch and fallback reasons)
    agrees before and after serialization — a cached cell replayed from
    JSON resolves to the same engine as the original declaration."""
    rebuilt = Scenario.from_dict(scenario.to_dict())
    assert scenario_features(rebuilt) == scenario_features(scenario)


@settings(max_examples=40, deadline=None)
@given(plan=fault_plans(), n=st.integers(min_value=1, max_value=2048))
def test_fault_plan_counts_are_consistent(plan, n):
    total = plan.n_crashed(n) + plan.n_byzantine(n)
    assert 0 <= total <= n + 1  # independent rounding can overshoot by one
    if plan.crash_fraction == 0.0:
        assert plan.n_crashed(n) == 0
    if plan.byzantine_fraction == 0.0:
        assert plan.n_byzantine(n) == 0
