"""Theorem 4.3's engine: the surviving-nest count decays geometrically.

The proof shows E[k_{r+4}] <= (65/66)·k_r for the number of competing
nests under Algorithm 2.  Measured decay is far faster (Lemma 4.2's 1/66
is very conservative); this test checks both directions: the per-block
decay beats the paper's bound, and at least one nest always survives.
"""

import numpy as np

from repro.analysis.theory import theorem_4_3_block_decay
from repro.fast.optimal_fast import simulate_optimal
from repro.model.nests import NestConfig


def surviving_series(history: np.ndarray) -> list[int]:
    """Competing-nest counts at consecutive B2 sub-rounds."""
    counts = []
    for row in range(2, len(history), 4):
        competing = int((history[row][1:] > 0).sum())
        if competing == 0:
            break
        counts.append(competing)
    return counts


class TestSurvivorDecay:
    def collect(self, n=2048, k=16, trials=20):
        nests = NestConfig.all_good(k)
        transitions = []
        for seed in range(trials):
            result = simulate_optimal(
                n, nests, seed=seed, max_rounds=20_000, record_history=True
            )
            series = surviving_series(result.population_history)
            transitions.extend(zip(series, series[1:]))
        return transitions

    def test_decay_beats_the_paper_bound(self):
        transitions = self.collect()
        multi = [(a, b) for a, b in transitions if a > 1]
        assert multi, "no competitive transitions observed"
        ratios = [b / a for a, b in multi]
        assert np.mean(ratios) <= theorem_4_3_block_decay()

    def test_at_least_one_nest_always_survives(self):
        transitions = self.collect(trials=10)
        assert all(b >= 1 for _, b in transitions)

    def test_survivors_never_increase(self):
        transitions = self.collect(trials=10)
        assert all(b <= a for a, b in transitions)
