"""Property-based tests of the ant FSMs' protocol legality.

The engine enforces the Section 2 rules (one call per round, ``go``/
``recruit`` only to known nests).  Here hypothesis drives whole colonies
through randomized worlds and checks that no algorithm ever violates the
protocol, whatever the nest layout and seed — the engine's
``ProtocolError`` doubles as the property oracle.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.quorum import quorum_factory
from repro.baselines.uniform import uniform_factory
from repro.core.colony import (
    informed_spread_factory,
    optimal_factory,
    simple_factory,
)
from repro.extensions.adaptive import power_feedback_factory
from repro.extensions.nonbinary import quality_weighted_factory
from repro.extensions.robust import retrying_factory
from repro.model.environment import Environment
from repro.model.nests import NestConfig
from repro.sim.engine import Simulation
from repro.sim.rng import RandomSource
from repro.sim.run import build_colony


@st.composite
def worlds(draw):
    """A random (n, nest-config, seed) world with >= 1 good nest."""
    n = draw(st.integers(min_value=1, max_value=24))
    k = draw(st.integers(min_value=1, max_value=6))
    good_mask = draw(
        st.lists(st.booleans(), min_size=k, max_size=k).filter(any)
    )
    good = {i + 1 for i, flag in enumerate(good_mask) if flag}
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return n, NestConfig.binary(k, good), seed


def drive(factory, n, nests, seed, rounds=40):
    """Run `rounds` rounds; any ProtocolError fails the test."""
    source = RandomSource(seed)
    colony = build_colony(factory, n, source.colony)
    simulation = Simulation(
        colony, Environment(n, nests), source, max_rounds=rounds
    )
    simulation.run(stop_when_converged=False)
    return colony


ALGORITHMS = [
    ("simple", simple_factory()),
    ("optimal", optimal_factory()),
    ("optimal-strict", optimal_factory(strict_pseudocode=True)),
    ("spread", informed_spread_factory()),
    ("quorum", quorum_factory()),
    ("uniform", uniform_factory()),
    ("power", power_feedback_factory()),
    ("graded", quality_weighted_factory()),
    ("retrying", retrying_factory(research_probability=0.3)),
]


class TestProtocolLegality:
    @given(worlds())
    @settings(max_examples=40, deadline=None)
    def test_simple_never_violates_protocol(self, world):
        drive(simple_factory(), *world)

    @given(worlds())
    @settings(max_examples=40, deadline=None)
    def test_optimal_never_violates_protocol(self, world):
        drive(optimal_factory(), *world)

    @given(worlds())
    @settings(max_examples=20, deadline=None)
    def test_strict_optimal_never_violates_protocol(self, world):
        drive(optimal_factory(strict_pseudocode=True), *world)

    @given(worlds())
    @settings(max_examples=20, deadline=None)
    def test_baselines_never_violate_protocol(self, world):
        drive(quorum_factory(), *world)
        drive(uniform_factory(), *world)

    @given(worlds())
    @settings(max_examples=20, deadline=None)
    def test_extensions_never_violate_protocol(self, world):
        drive(power_feedback_factory(), *world)
        drive(quality_weighted_factory(), *world)
        drive(retrying_factory(research_probability=0.3), *world)

    @given(worlds())
    @settings(max_examples=20, deadline=None)
    def test_commitments_always_known_nests(self, world):
        n, nests, seed = world
        for _, factory in ALGORITHMS[:4]:
            colony = drive(factory, n, nests, seed, rounds=20)
            for ant in colony:
                nest = ant.committed_nest
                assert nest is None or 1 <= nest <= nests.k
