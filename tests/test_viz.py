"""Tests for terminal visualization helpers."""

import numpy as np
import pytest

from repro.analysis.viz import final_share_chart, population_chart, share_bar, sparkline
from repro.exceptions import ConfigurationError
from repro.fast.simple_fast import simulate_simple
from repro.model.nests import NestConfig


class TestSparkline:
    def test_monotone_series(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 8

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_downsampling(self):
        line = sparkline(np.arange(100), width=10)
        assert len(line) == 10

    def test_width_not_exceeded_when_short(self):
        assert len(sparkline([1, 2], width=10)) == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sparkline([])
        with pytest.raises(ConfigurationError):
            sparkline([1, 2], width=0)


class TestShareBar:
    def test_full_and_empty(self):
        assert share_bar(1.0, width=4) == "####"
        assert share_bar(0.0, width=4) == "...."

    def test_half(self):
        assert share_bar(0.5, width=4) == "##.."

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            share_bar(1.5)
        with pytest.raises(ConfigurationError):
            share_bar(0.5, width=0)


class TestCharts:
    def test_population_chart_from_real_run(self):
        result = simulate_simple(
            64, NestConfig.all_good(3), seed=0, max_rounds=4000,
            record_history=True,
        )
        chart = population_chart(result.population_history)
        lines = chart.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("n1")
        assert "peak=" in lines[0]

    def test_final_share_chart(self):
        chart = final_share_chart(np.array([10, 20, 0]))
        lines = chart.splitlines()
        assert lines[0].startswith("home")
        assert lines[1].startswith("n1")
        assert lines[1].endswith("20")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            population_chart(None)
        with pytest.raises(ConfigurationError):
            final_share_chart(np.array([5]))
