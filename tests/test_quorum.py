"""Tests for the quorum-sensing baseline."""

import numpy as np
import pytest

from repro.baselines.quorum import QuorumAnt, quorum_factory
from repro.exceptions import ConfigurationError
from repro.model.actions import Go, Recruit, RecruitResult, Search, SearchResult, GoResult
from repro.model.nests import NestConfig
from repro.sim.convergence import UnanimousCommitment
from repro.sim.run import run_trial


def make_ant(quorum_fraction=0.5, n=20, seed=0):
    return QuorumAnt(
        0, n, np.random.default_rng(seed), quorum_fraction=quorum_fraction
    )


class TestStates:
    def test_bad_nest_is_passive(self):
        ant = make_ant()
        ant.decide()
        ant.observe(SearchResult(nest=1, quality=0.0, count=3))
        assert ant.state_label() == "passive"
        assert ant.decide() == Recruit(False, 1)

    def test_good_nest_assesses(self):
        ant = make_ant()
        ant.decide()
        ant.observe(SearchResult(nest=1, quality=1.0, count=3))
        assert ant.state_label() == "tandem"

    def test_quorum_triggers_transport(self):
        ant = make_ant(quorum_fraction=0.5, n=20)  # quorum = 10
        ant.decide()
        ant.observe(SearchResult(nest=1, quality=1.0, count=12))
        assert ant.committed
        assert ant.state_label() == "transport"
        assert ant.decide() == Recruit(True, 1)

    def test_quorum_triggers_on_later_visit(self):
        ant = make_ant(quorum_fraction=0.5, n=20)
        ant.decide()
        ant.observe(SearchResult(nest=1, quality=1.0, count=3))
        ant.decide()  # recruit round (tandem or wait)
        ant.observe(RecruitResult(nest=1, home_count=20))
        assert ant.decide() == Go(1)
        ant.observe(GoResult(nest=1, count=11))
        assert ant.committed

    def test_recruited_ant_reassesses(self):
        ant = make_ant()
        ant.decide()
        ant.observe(SearchResult(nest=1, quality=0.0, count=3))
        ant.decide()
        ant.observe(RecruitResult(nest=4, home_count=20))
        assert ant.committed_nest == 4
        assert ant.state_label() == "tandem"
        assert not ant.committed

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_ant(quorum_fraction=0.0)
        with pytest.raises(ConfigurationError):
            QuorumAnt(0, 8, np.random.default_rng(0), tandem_probability=0.0)


class TestEndToEnd:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_converges(self, seed, all_good_4):
        result = run_trial(
            quorum_factory(quorum_fraction=0.4),
            96,
            all_good_4,
            seed=seed,
            max_rounds=8000,
            criterion_factory=UnanimousCommitment,
        )
        assert result.converged

    def test_avoids_bad_nests(self, mixed_nests):
        result = run_trial(
            quorum_factory(quorum_fraction=0.4),
            96,
            mixed_nests,
            seed=2,
            max_rounds=8000,
            criterion_factory=UnanimousCommitment,
        )
        assert result.converged
        assert result.chosen_nest in (1, 3)
