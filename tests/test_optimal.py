"""Tests for Algorithm 2 (OptimalAnt) — phase schedule and transitions."""

import numpy as np
import pytest

from repro.core.colony import optimal_factory
from repro.core.optimal import OptimalAnt
from repro.core.states import OptimalPhase as P
from repro.core.states import OptimalState as S
from repro.model.actions import (
    Go,
    GoResult,
    Recruit,
    RecruitResult,
    Search,
    SearchResult,
)
from repro.model.nests import NestConfig
from repro.sim.convergence import CommittedToSingleGoodNest
from repro.sim.run import run_trial


def make_ant(seed=0, strict=False):
    return OptimalAnt(0, 16, np.random.default_rng(seed), strict_pseudocode=strict)


def searched_ant(quality=1.0, nest=2, count=4, **kwargs):
    ant = make_ant(**kwargs)
    assert isinstance(ant.decide(), Search)
    ant.observe(SearchResult(nest=nest, quality=quality, count=count))
    return ant


class TestSearchTransition:
    def test_good_nest_to_active_block(self):
        ant = searched_ant(quality=1.0)
        assert ant.state is S.ACTIVE
        assert ant.phase is P.A1_RECRUIT
        assert ant.count == 4

    def test_bad_nest_to_passive_block(self):
        ant = searched_ant(quality=0.0)
        assert ant.state is S.PASSIVE
        assert ant.phase is P.P1_AT_NEST


class TestActiveBlockCase1:
    """nestt == nest, countt >= count: the nest keeps competing."""

    def drive(self, ant, countt=6, counth=10):
        assert ant.decide() == Recruit(True, 2)  # R1
        ant.observe(RecruitResult(nest=2, home_count=12))
        assert ant.decide() == Go(2)  # R2
        ant.observe(GoResult(nest=2, count=countt))
        assert ant.decide() == Go(2)  # R3 hold
        ant.observe(GoResult(nest=2, count=countt))
        action = ant.decide()  # R4 home check
        assert action == Recruit(False, 2)
        ant.observe(RecruitResult(nest=2, home_count=counth))

    def test_count_updated_and_block_repeats(self):
        ant = searched_ant()
        self.drive(ant, countt=6, counth=10)
        assert ant.count == 6
        assert ant.state is S.ACTIVE
        assert ant.phase is P.A1_RECRUIT

    def test_settles_when_home_equals_count(self):
        ant = searched_ant()
        self.drive(ant, countt=6, counth=6)
        assert ant.state is S.FINAL
        assert ant.phase is P.F_RECRUIT
        assert ant.settled


class TestActiveBlockCase2:
    """nestt == nest, countt < count: the whole cohort drops out."""

    def test_drops_to_passive_via_padding(self):
        ant = searched_ant(count=8)
        ant.decide()
        ant.observe(RecruitResult(nest=2, home_count=12))
        ant.decide()
        ant.observe(GoResult(nest=2, count=5))  # population fell
        assert ant.state is S.PASSIVE
        assert ant.decide() == Recruit(False, 2)  # R3 padding wait
        ant.observe(RecruitResult(nest=9, home_count=3))  # discarded!
        assert ant.committed_nest == 2  # line 35 return value ignored
        assert ant.decide() == Go(2)  # R4 padding return
        ant.observe(GoResult(nest=2, count=1))
        assert ant.phase is P.P1_AT_NEST


class TestActiveBlockCase3:
    """nestt != nest: the ant was recruited away."""

    def drive_to_revisit(self, ant, new_nest=4, countt=9):
        ant.decide()
        ant.observe(RecruitResult(nest=new_nest, home_count=12))  # poached
        assert ant.decide() == Go(new_nest)  # R2 assesses the new nest
        ant.observe(GoResult(nest=new_nest, count=countt))
        assert ant.committed_nest == new_nest
        assert ant.decide() == Go(new_nest)  # R3 revisit

    def test_new_nest_competing_updates_count(self):
        ant = searched_ant()
        self.drive_to_revisit(ant, countt=9)
        ant.observe(GoResult(nest=4, count=9))  # countn == countt
        assert ant.state is S.ACTIVE
        assert ant.count == 9  # DESIGN.md §3.2 clarified update
        assert ant.decide() == Go(4)  # R4 padding
        ant.observe(GoResult(nest=4, count=9))
        assert ant.phase is P.A1_RECRUIT

    def test_new_nest_dropping_goes_passive(self):
        ant = searched_ant()
        self.drive_to_revisit(ant, countt=9)
        ant.observe(GoResult(nest=4, count=7))  # countn < countt
        assert ant.state is S.PASSIVE
        assert ant.decide() == Go(4)  # R4 padding
        ant.observe(GoResult(nest=4, count=7))
        assert ant.phase is P.P1_AT_NEST

    def test_strict_mode_keeps_stale_count(self):
        ant = searched_ant(count=4, strict=True)
        self.drive_to_revisit(ant, countt=9)
        ant.observe(GoResult(nest=4, count=9))
        assert ant.count == 4  # literal pseudocode: count never written


class TestPassiveBlock:
    def passive_ant(self):
        return searched_ant(quality=0.0, nest=3)

    def test_schedule(self):
        ant = self.passive_ant()
        assert ant.decide() == Go(3)  # P1
        ant.observe(GoResult(nest=3, count=2))
        assert ant.decide() == Recruit(False, 3)  # P2
        ant.observe(RecruitResult(nest=3, home_count=5))  # not recruited
        assert ant.decide() == Go(3)  # P3
        ant.observe(GoResult(nest=3, count=2))
        assert ant.decide() == Go(3)  # P4
        ant.observe(GoResult(nest=3, count=2))
        assert ant.phase is P.P1_AT_NEST  # loops

    def test_recruited_passive_turns_final_after_padding(self):
        ant = self.passive_ant()
        ant.decide()
        ant.observe(GoResult(nest=3, count=2))
        ant.decide()
        ant.observe(RecruitResult(nest=5, home_count=5))  # recruited to 5
        assert ant.state is S.FINAL
        assert ant.committed_nest == 5
        # Lines 18-19: the block still pads with go(nest) on the NEW nest.
        assert ant.decide() == Go(5)
        ant.observe(GoResult(nest=5, count=4))
        assert ant.decide() == Go(5)
        ant.observe(GoResult(nest=5, count=4))
        assert ant.phase is P.F_RECRUIT


class TestFinalState:
    def test_recruits_every_round_and_adopts_result(self):
        ant = searched_ant()
        ant.state = S.FINAL
        ant.phase = P.F_RECRUIT
        for _ in range(3):
            action = ant.decide()
            assert action == Recruit(True, ant.nest)
            ant.observe(RecruitResult(nest=ant.nest, home_count=4))
        # Line 21 assigns the returned nest (possibly from a poacher).
        ant.decide()
        ant.observe(RecruitResult(nest=7, home_count=4))
        assert ant.committed_nest == 7


class TestEndToEnd:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_converges_all_settled(self, seed, all_good_4):
        result = run_trial(
            optimal_factory(),
            64,
            all_good_4,
            seed=seed,
            max_rounds=4000,
            criterion_factory=lambda: CommittedToSingleGoodNest(require_settled=True),
        )
        assert result.converged

    @pytest.mark.parametrize("seed", [0, 1])
    def test_avoids_bad_nests(self, seed, mixed_nests):
        result = run_trial(
            optimal_factory(),
            64,
            mixed_nests,
            seed=seed,
            max_rounds=4000,
            criterion_factory=lambda: CommittedToSingleGoodNest(require_settled=True),
        )
        assert result.converged
        assert result.chosen_nest in (1, 3)

    def test_single_ant(self):
        nests = NestConfig.all_good(1)
        result = run_trial(
            optimal_factory(),
            1,
            nests,
            seed=0,
            max_rounds=100,
            criterion_factory=lambda: CommittedToSingleGoodNest(require_settled=True),
        )
        assert result.converged
        assert result.converged_round == 5  # search + one 4-round block
