"""Tests for nest quality configuration."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.model.nests import NestConfig


class TestConstruction:
    def test_binary(self):
        config = NestConfig.binary(4, {2, 4})
        assert config.k == 4
        assert config.quality(2) == 1.0
        assert config.quality(1) == 0.0

    def test_all_good(self):
        config = NestConfig.all_good(3)
        assert config.good_nests == (1, 2, 3)

    def test_single_good(self):
        config = NestConfig.single_good(5, good_nest=4)
        assert config.good_nests == (4,)

    def test_graded(self):
        config = NestConfig.graded([0.9, 0.3])
        assert config.quality(1) == pytest.approx(0.9)
        assert config.quality(2) == pytest.approx(0.3)

    def test_good_fraction_always_has_a_good_nest(self):
        rng = np.random.default_rng(0)
        config = NestConfig.good_fraction(10, 0.0, rng)
        assert len(config.good_nests) == 1

    def test_good_fraction_counts(self):
        rng = np.random.default_rng(0)
        config = NestConfig.good_fraction(10, 0.5, rng)
        assert len(config.good_nests) == 5


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            NestConfig(())

    def test_no_good_nest_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one good nest"):
            NestConfig((0.0, 0.0))

    def test_quality_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            NestConfig((1.5,))
        with pytest.raises(ConfigurationError):
            NestConfig((-0.1, 1.0))

    def test_binary_bad_k(self):
        with pytest.raises(ConfigurationError):
            NestConfig.binary(0, {1})

    def test_binary_out_of_range_good_ids(self):
        with pytest.raises(ConfigurationError, match="out of range"):
            NestConfig.binary(3, {4})

    def test_binary_empty_good_set(self):
        with pytest.raises(ConfigurationError):
            NestConfig.binary(3, set())

    def test_good_fraction_bad_fraction(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            NestConfig.good_fraction(4, 1.5, rng)

    def test_quality_lookup_out_of_range(self):
        config = NestConfig.all_good(2)
        with pytest.raises(ConfigurationError):
            config.quality(0)
        with pytest.raises(ConfigurationError):
            config.quality(3)


class TestAccessors:
    def test_is_good_uses_threshold(self):
        config = NestConfig.graded([0.8, 0.2], good_threshold=0.5)
        assert config.is_good(1)
        assert not config.is_good(2)

    def test_best_nest(self):
        config = NestConfig.graded([0.3, 0.9, 0.6])
        assert config.best_nest == 2

    def test_best_nest_tie_prefers_lowest_id(self):
        config = NestConfig.graded([0.9, 0.9])
        assert config.best_nest == 1

    def test_quality_array_read_only(self):
        config = NestConfig.all_good(2)
        with pytest.raises(ValueError):
            config.quality_array()[0] = 0.0

    def test_immutability_of_dataclass(self):
        config = NestConfig.all_good(2)
        with pytest.raises(AttributeError):
            config.qualities = (0.0,)

    def test_graded_custom_threshold_propagates(self):
        config = NestConfig.graded([0.4, 0.2], good_threshold=0.3)
        assert config.good_nests == (1,)
