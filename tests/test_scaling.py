"""Tests for scaling-law fitting."""

import numpy as np
import pytest

from repro.analysis.scaling import (
    best_model,
    fit_model,
    fit_models,
    klogn_model,
    linear_model,
    log_model,
    sqrt_model,
)
from repro.exceptions import ConfigurationError


class TestFitModel:
    def test_recovers_log_coefficients(self):
        x = np.array([64, 128, 256, 512, 1024, 2048])
        y = 5.0 + 3.0 * np.log(x)
        fit = fit_model(log_model(), x, y)
        assert fit.intercept == pytest.approx(5.0, abs=1e-6)
        assert fit.slope == pytest.approx(3.0, abs=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_recovers_linear_coefficients(self):
        x = np.array([1, 2, 3, 4, 5])
        y = 2.0 + 0.5 * x
        fit = fit_model(linear_model(), x, y)
        assert fit.slope == pytest.approx(0.5)

    def test_noisy_fit_reasonable(self):
        rng = np.random.default_rng(0)
        x = np.array([64, 128, 256, 512, 1024, 2048, 4096])
        y = 5.0 + 3.0 * np.log(x) + rng.normal(0, 0.5, size=len(x))
        fit = fit_model(log_model(), x, y)
        assert abs(fit.slope - 3.0) < 0.5
        assert fit.r_squared > 0.9

    def test_predict(self):
        x = np.array([1.0, 2.0, 3.0])
        fit = fit_model(linear_model(), x, 2 * x)
        assert fit.predict(np.array([10.0]))[0] == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fit_model(log_model(), [1, 2], [1, 2])
        with pytest.raises(ConfigurationError):
            fit_model(log_model(), [1, 2, 3], [1, 2])


class TestModelSelection:
    def test_log_data_selects_log_model(self):
        x = np.array([64, 128, 256, 512, 1024, 2048, 4096, 8192])
        rng = np.random.default_rng(1)
        y = 10.0 + 4.0 * np.log(x) + rng.normal(0, 0.3, size=len(x))
        winner = best_model([log_model(), linear_model(), sqrt_model()], x, y)
        assert winner.name == "a + b*log(x)"

    def test_linear_data_selects_linear_model(self):
        x = np.array([2, 4, 8, 16, 32, 48, 64])
        rng = np.random.default_rng(2)
        y = 3.0 + 5.0 * x + rng.normal(0, 1.0, size=len(x))
        winner = best_model([log_model(), linear_model(), sqrt_model()], x, y)
        assert winner.name == "a + b*x"

    def test_fit_models_sorted_by_aic(self):
        x = np.array([64, 128, 256, 512, 1024])
        y = 1.0 + 2.0 * np.log(x)
        fits = fit_models([log_model(), linear_model()], x, y)
        assert fits[0].aic <= fits[1].aic


class TestKlognModel:
    def test_recovers_joint_coefficients(self):
        k = np.array([2, 4, 8, 16, 4, 4, 4], dtype=float)
        n = np.array([1024, 1024, 1024, 1024, 256, 4096, 16384], dtype=float)
        y = 7.0 + 0.9 * k * np.log(n)
        fit = fit_model(klogn_model(n), k, y)
        assert fit.intercept == pytest.approx(7.0, abs=1e-6)
        assert fit.slope == pytest.approx(0.9, abs=1e-6)

    def test_str_smoke(self):
        x = np.array([1.0, 2.0, 3.0])
        fit = fit_model(linear_model(), x, 2 * x)
        assert "slope" in str(fit)
