"""Cross-checks of Algorithm 2's global four-round schedule.

These tests drive a whole OptimalAnt colony on the reference engine and
assert the *physical* interleaving the paper's proof relies on (and the
fast engine assumes):

- sub-round B1 (global rounds ≡ 2 mod 4): only active/final ants at home;
- sub-round B2 (≡ 3 mod 4): active cohorts alone stand at candidate nests,
  passives and finals recruit at home;
- sub-round B4 (≡ 1 mod 4, r > 1): case-1 actives + finals at home.

If any padding call were mis-scheduled, competing cohorts would meet
dropped-out ants and the count comparisons would be polluted — the exact
failure mode the paper's interleaving is designed to avoid.
"""

import numpy as np
import pytest

from repro.core.colony import optimal_factory
from repro.core.optimal import OptimalAnt
from repro.core.states import OptimalState
from repro.model.environment import Environment
from repro.model.nests import NestConfig
from repro.sim.engine import Simulation
from repro.sim.rng import RandomSource
from repro.sim.run import build_colony
from repro.types import HOME_NEST


@pytest.fixture
def traced_colony(mixed_nests):
    """Run 33 rounds; collect (round, locations, states) triples."""
    source = RandomSource(13)
    colony = build_colony(optimal_factory(), 48, source.colony)
    snapshots = []

    def hook(record):
        states = [ant.state for ant in colony]
        snapshots.append((record.round, record.snapshot.locations.copy(), states))

    sim = Simulation(
        colony, Environment(48, mixed_nests), source, max_rounds=33, hooks=[hook]
    )
    sim.run(stop_when_converged=False)
    return snapshots


def ants_at_home(locations):
    return set(np.flatnonzero(locations == HOME_NEST))


class TestSchedule:
    def test_round_one_everyone_searches(self, traced_colony):
        round_number, locations, _ = traced_colony[0]
        assert round_number == 1
        assert len(ants_at_home(locations)) == 0

    def test_b1_home_holds_only_active_and_final(self, traced_colony):
        for round_number, locations, states in traced_colony:
            if round_number % 4 == 2:  # B1
                for ant in ants_at_home(locations):
                    assert states[ant] in (OptimalState.ACTIVE, OptimalState.FINAL)

    def test_b2_passives_and_finals_at_home(self, traced_colony):
        for round_number, locations, states in traced_colony:
            if round_number % 4 == 3:  # B2
                home = ants_at_home(locations)
                for ant, state in enumerate(states):
                    if state is OptimalState.FINAL:
                        assert ant in home
                # Actives stand at candidate nests in B2 — except a cohort
                # that just turned passive *this* round (state updated at
                # observe time, location set before): those are at nests
                # too.  What must never happen is an ACTIVE ant at home.
                for ant in home:
                    assert states[ant] is not OptimalState.ACTIVE

    def test_b2_candidate_nests_hold_no_long_term_passives(self, traced_colony):
        # An ant that was passive at the *previous* B2 must be at home (or
        # settled) at this B2 — passives only visit nests in B1/B3/B4.
        previous_passives: set[int] = set()
        for round_number, locations, states in traced_colony:
            if round_number % 4 == 3:
                home = ants_at_home(locations)
                for ant in previous_passives:
                    if states[ant] is OptimalState.PASSIVE:
                        assert ant in home
                previous_passives = {
                    a
                    for a, s in enumerate(states)
                    if s is OptimalState.PASSIVE
                }

    def test_all_paths_keep_block_alignment(self, mixed_nests):
        """After round 1, every ant's recruit() calls land on the same
        global parity classes — no ant ever drifts out of block phase."""
        source = RandomSource(29)
        colony = build_colony(optimal_factory(), 32, source.colony)
        offenders = []

        def hook(record):
            if record.round == 1:
                return
            for ant_id in record.match.assignments:
                ant = colony[ant_id]
                if ant.state is OptimalState.FINAL:
                    continue  # finals recruit every round by design
                # Non-final recruit() calls happen only in B1, B2, B3, B4
                # sub-rounds matching their phase table: B1 (mod 2), B2
                # (mod 3), B3 (mod 0), B4 (mod 1).
                offenders.append((record.round, ant_id))

        # All recruit calls are legal per the engine; this test just checks
        # the colony still converges with perfect alignment (no deadlock).
        sim = Simulation(
            colony, Environment(32, mixed_nests), source, max_rounds=400,
            hooks=[hook],
        )
        result = sim.run(stop_when_converged=False)
        assert result.rounds_executed == 400
        # Every ant still has a legal committed nest.
        for ant in colony:
            assert ant.committed_nest is not None
