"""Agent-vs-fast parity across the perturbation matrix.

The vectorized perturbation layers (fault masks, noise models, delay
schedules — :mod:`repro.fast.batch`) re-implement the agent engine's
wrapper semantics (:mod:`repro.sim.faults`, :mod:`repro.sim.noise`,
:mod:`repro.sim.asynchrony`) under the v2 matcher schedule.  This module
pins the three guarantees that make ``backend="auto"`` safe to hand them:

1. **Statistical equivalence** — for every algorithm whose kernel declares
   a perturbation feature, agent and fast trial batteries agree through the
   shared harness (:mod:`tests.helpers.equivalence`);
2. **Dispatch honesty** — for every registered algorithm × perturbation
   combination the resolver either serves the fast path or falls back with
   the missing feature tags recorded on the report;
3. **Bit-exact batching** — perturbed batches are identical for any chunk
   size and worker count, and identical to running each trial alone.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    REGISTRY,
    Scenario,
    resolve_backend,
    run,
    run_batch,
    scenario_features,
)
from repro.exceptions import ConfigurationError
from repro.extensions.estimation import EncounterNoise, EncounterRateEstimator
from repro.model.nests import NestConfig
from repro.sim.asynchrony import DelayModel
from repro.sim.faults import CrashMode, FaultPlan
from repro.sim.noise import CountNoise
from tests.helpers.equivalence import (
    assert_batteries_equivalent,
    assert_means_close,
    assert_reports_bit_identical,
    collect_battery,
)

#: One small, convergence-friendly world: three good nests plus one bad
#: nest for Byzantine ants to push.
NESTS = NestConfig.binary(4, {1, 2, 3})

#: The perturbation dimensions of the matrix.  Fault cells use the E12
#: healthy-colony criterion (zombie commitments can never join a consensus).
PERTURBATIONS: dict[str, dict] = {
    "crash_home": dict(
        fault_plan=FaultPlan(crash_fraction=0.2, crash_mode=CrashMode.AT_HOME),
        criterion="good_healthy",
    ),
    "crash_nest": dict(
        fault_plan=FaultPlan(crash_fraction=0.2, crash_mode=CrashMode.AT_NEST),
        criterion="good_healthy",
    ),
    "byzantine": dict(
        fault_plan=FaultPlan(byzantine_fraction=0.06),
        criterion="good_healthy",
    ),
    "count_noise": dict(noise=CountNoise(relative_sigma=0.75)),
    "quality_flip": dict(noise=CountNoise(quality_flip_prob=0.15)),
    "encounter": dict(
        noise=EncounterNoise(
            estimator=EncounterRateEstimator(trials=24, capacity=96)
        )
    ),
    "delay": dict(delay_model=DelayModel(0.25)),
}

#: Statistical-equivalence cells: the full row for Algorithm 3, plus a
#: representative (and non-degenerate) spread over the two kernel-sharing
#: variants.  Byzantine cells get a tighter cap — heavy adversarial
#: pressure censors some trials on *both* engines, and the battery check
#: compares the censored atoms too.
EQUIVALENCE_CELLS = [
    ("simple", name) for name in PERTURBATIONS
] + [
    ("adaptive", "crash_home"),
    ("adaptive", "encounter"),
    ("adaptive", "delay"),
    ("uniform", "crash_nest"),
    ("uniform", "delay"),
]

FAST_TRIALS = 48
AGENT_TRIALS = 20


def _cell_scenario(algorithm: str, perturbation: str, n: int = 48) -> Scenario:
    max_rounds = 1000 if "byz" in perturbation else 2500
    if algorithm == "uniform" and perturbation == "delay":
        max_rounds = 6000  # the feedback-free walk is slow even unperturbed
    return Scenario(
        algorithm=algorithm,
        n=n,
        nests=NESTS,
        seed=97,
        max_rounds=max_rounds,
        **PERTURBATIONS[perturbation],
    )


class TestStatisticalEquivalence:
    @pytest.mark.parametrize("algorithm,perturbation", EQUIVALENCE_CELLS)
    def test_agent_and_fast_sample_the_same_law(self, algorithm, perturbation):
        scenario = _cell_scenario(algorithm, perturbation)
        assert resolve_backend(scenario) == "fast", (algorithm, perturbation)
        fast = collect_battery(scenario, FAST_TRIALS, backend="fast")
        agent = collect_battery(scenario, AGENT_TRIALS, backend="agent")
        assert_batteries_equivalent(
            fast, agent, label=f"{algorithm}/{perturbation}"
        )

    def test_adaptive_schedule_under_heavy_delay(self):
        """Regression: the rate schedule must be indexed by each ant's own
        recruitment-phase counter, not the global round.  Under heavy
        delays stalled ants lag the global round, so global indexing
        decays an aggressive k-tilde boost too fast and measurably slows
        the fast engine relative to the agent engine."""
        scenario = Scenario(
            algorithm="adaptive",
            n=48,
            nests=NestConfig.all_good(4),
            seed=7,
            max_rounds=8000,
            params={"k_initial": 16, "half_life": 2},
            delay_model=DelayModel(0.5),
        )
        fast = collect_battery(scenario, 150, backend="fast")
        agent = collect_battery(scenario, 50, backend="agent")
        assert fast.solved.all() and agent.solved.all()
        assert_batteries_equivalent(fast, agent, label="adaptive heavy delay")
        assert_means_close(
            fast.rounds, agent.rounds, label="adaptive heavy delay rounds"
        )

    def test_byzantine_delay_cliff_composite(self):
        """The E12 cliff combination exercises every layer at once.

        The cap is tight on purpose: under this pressure a fair share of
        trials censor on *both* engines, and the battery check compares
        those censored atoms alongside the solved rounds.
        """
        scenario = Scenario(
            algorithm="simple",
            n=48,
            nests=NESTS,
            seed=31,
            max_rounds=700,
            fault_plan=FaultPlan(byzantine_fraction=0.04),
            delay_model=DelayModel(0.15),
            criterion="good_healthy",
        )
        fast = collect_battery(scenario, FAST_TRIALS, backend="fast")
        agent = collect_battery(scenario, 12, backend="agent")
        assert_batteries_equivalent(fast, agent, label="byzantine+delay")


class TestDispatchMatrix:
    """Every registered algorithm × perturbation resolves honestly."""

    @pytest.mark.parametrize("perturbation", sorted(PERTURBATIONS))
    @pytest.mark.parametrize("algorithm", REGISTRY.names())
    def test_resolution_matches_declared_features(self, algorithm, perturbation):
        entry = REGISTRY.get(algorithm)
        kwargs = dict(PERTURBATIONS[perturbation])
        if not entry.has_agent:
            # Criterion defaults differ per standalone process; drop the
            # fault criterion so only the perturbation itself is probed.
            kwargs.pop("criterion", None)
        scenario = Scenario(
            algorithm=algorithm, n=16, nests=NESTS, max_rounds=8, **kwargs
        )
        requested = scenario_features(scenario)
        supported = requested <= entry.fast_features
        if entry.has_fast and supported and entry.supports_fast(scenario):
            assert resolve_backend(scenario) == "fast"
        elif entry.has_agent:
            assert resolve_backend(scenario) == "agent"
            missing = entry.missing_fast_features(scenario)
            if entry.has_fast:
                assert missing, (algorithm, perturbation)
                assert set(missing) <= requested
        else:
            with pytest.raises(ConfigurationError):
                resolve_backend(scenario)

    def test_fallback_reason_reaches_the_report(self):
        scenario = Scenario(
            algorithm="quorum",
            n=16,
            nests=NESTS,
            max_rounds=8,
            delay_model=DelayModel(0.2),
            noise=CountNoise(quality_flip_prob=0.1),
        )
        report = run(scenario)
        assert report.backend == "agent"
        assert report.extras["agent_fallback"] == [
            "delay_model",
            "noise.quality_flip",
        ]

    def test_fallback_reason_survives_run_batch(self):
        scenario = Scenario(
            algorithm="optimal",
            n=16,
            nests=NestConfig.all_good(2),
            max_rounds=8,
            fault_plan=FaultPlan(crash_fraction=0.2),
        )
        reports = run_batch(scenario.trials(2), workers=1)
        for report in reports:
            assert report.backend == "agent"
            assert report.extras["agent_fallback"] == ["fault_plan.crash"]

    def test_hooks_fallback_reason(self):
        records = []
        scenario = Scenario(algorithm="simple", n=16, nests=NESTS, max_rounds=8)
        report = run(scenario, hooks=[records.append])
        assert report.backend == "agent"
        assert report.extras["agent_fallback"] == ["hooks"]
        assert records

    def test_explicit_fast_error_names_the_features(self):
        scenario = Scenario(
            algorithm="spread",
            n=16,
            nests=NestConfig.single_good(4, good_nest=1),
            fault_plan=FaultPlan(byzantine_fraction=0.2),
        )
        with pytest.raises(ConfigurationError, match="fault_plan.byzantine"):
            resolve_backend(scenario, backend="fast")

    def test_custom_duck_typed_noise_stays_on_the_agent_engine(self):
        """An unrecognized noise model requests the `noise.custom` tag,
        which no fast kernel declares — only the agent engine's duck-typed
        NoisyAnt wrapper can honor arbitrary models."""

        class HalvingNoise:
            is_null = False
            quality_flip_prob = 0.0

            def perturb_count(self, count, n, rng):
                return count // 2

            def perturb_quality(self, quality, rng):
                return quality

        scenario = Scenario(
            algorithm="simple",
            n=24,
            nests=NestConfig.all_good(2),
            max_rounds=400,
            noise=HalvingNoise(),
        )
        assert scenario_features(scenario) == {"noise.custom"}
        report = run(scenario)
        assert report.backend == "agent"
        assert report.extras["agent_fallback"] == ["noise.custom"]

    def test_noop_perturbation_layers_request_nothing(self):
        scenario = Scenario(
            algorithm="simple",
            n=16,
            nests=NESTS,
            fault_plan=FaultPlan(),
            delay_model=DelayModel(0.0),
            noise=CountNoise(),
        )
        assert scenario_features(scenario) == frozenset()
        assert resolve_backend(scenario) == "fast"


class TestPerturbedBatchDeterminism:
    """Bit-exact reports for any chunking, worker count, or batch size."""

    @pytest.mark.parametrize("perturbation", sorted(PERTURBATIONS))
    def test_chunks_and_singles_agree(self, perturbation):
        scenario = _cell_scenario("simple", perturbation).replace(
            seed=11, max_rounds=1200
        )
        whole = run_batch(scenario.trials(6), workers=1, batch_chunk=6)
        chunked = run_batch(scenario.trials(6), workers=1, batch_chunk=2)
        singles = [run(scenario.trial(t), backend="fast") for t in range(6)]
        assert_reports_bit_identical(chunked, whole, label=perturbation)
        assert_reports_bit_identical(singles, whole, label=perturbation)

    def test_workers_one_vs_four(self):
        scenario = Scenario(
            algorithm="simple",
            n=48,
            nests=NESTS,
            seed=13,
            max_rounds=1500,
            fault_plan=FaultPlan(crash_fraction=0.15, byzantine_fraction=0.04),
            delay_model=DelayModel(0.2),
            criterion="good_healthy",
        )
        serial = run_batch(scenario.trials(8), workers=1, batch_chunk=3)
        parallel = run_batch(scenario.trials(8), workers=4, batch_chunk=3)
        assert_reports_bit_identical(parallel, serial, label="workers")

    def test_perturbed_history_batch_matches_single(self):
        scenario = Scenario(
            algorithm="simple",
            n=24,
            nests=NESTS,
            seed=2,
            max_rounds=1200,
            record_history=True,
            fault_plan=FaultPlan(crash_fraction=0.2),
            criterion="good_healthy",
        )
        batched = run_batch(scenario.trials(3), workers=1)
        singles = [run(scenario.trial(t), backend="fast") for t in range(3)]
        assert_reports_bit_identical(batched, singles, label="history")
        for report in batched:
            history = report.population_history
            assert history is not None
            assert history.shape[0] == report.rounds_executed
            # Physical conservation: every round's row sums to the colony.
            assert set(history.sum(axis=1).tolist()) == {24}


class TestPerturbedKernelSemantics:
    """Targeted checks of the layer semantics beyond distribution shape."""

    def test_at_nest_zombies_block_full_unanimity_but_not_healthy(self):
        scenario = Scenario(
            algorithm="simple",
            n=32,
            nests=NESTS,
            seed=5,
            max_rounds=3000,
            fault_plan=FaultPlan(
                crash_fraction=0.25, crash_mode=CrashMode.AT_NEST
            ),
            criterion="good_healthy",
        )
        reports = run_batch(scenario.trials(10), workers=1, backend="fast")
        solved = [r for r in reports if r.solved]
        assert solved, "healthy consensus should still form"
        split_snapshots = 0
        for report in solved:
            counts = report.final_counts
            assert counts is not None and counts.sum() == 32
            # The frozen corpses keep standing at their nests, so the final
            # snapshot spreads over several candidate bins even though the
            # healthy colony converged on one nest.
            if np.count_nonzero(counts[1:]) > 1:
                split_snapshots += 1
            assert counts.max() < 32
        assert split_snapshots, "zombies should pin non-winning bins"

    def test_byzantine_seek_bad_pushes_the_bad_nest(self):
        # With seek_bad Byzantine ants and heavy pressure, captured trials
        # end with the colony on the single bad nest (nest 4).
        scenario = Scenario(
            algorithm="simple",
            n=48,
            nests=NESTS,
            seed=7,
            max_rounds=4000,
            fault_plan=FaultPlan(byzantine_fraction=0.15),
            criterion="good_healthy",
        )
        reports = run_batch(scenario.trials(12), workers=1, backend="fast")
        captured = [
            r for r in reports if not r.solved and r.chosen_nest is not None
        ]
        assert any(r.chosen_nest == 4 for r in captured)

    def test_delay_slows_convergence_monotonically(self):
        nests = NestConfig.all_good(4)
        medians = []
        for probability in (0.0, 0.3, 0.5):
            scenario = Scenario(
                algorithm="simple",
                n=64,
                nests=nests,
                seed=19,
                max_rounds=20_000,
                delay_model=(
                    DelayModel(probability) if probability else None
                ),
            )
            battery = collect_battery(scenario, 24, backend="fast")
            assert battery.solved.all()
            medians.append(float(np.median(battery.rounds)))
        assert medians[0] < medians[1] < medians[2]

    def test_fault_schedule_matches_agent_engine_exactly(self):
        """Both engines pick the same faulty ants and crash times — the
        fault stream is consumed draw-for-draw (compile_fault_masks)."""
        from repro.fast.batch import compile_fault_masks
        from repro.sim.faults import CrashedAnt
        from repro.sim.run import build_colony
        from repro.core.colony import simple_factory

        plan = FaultPlan(crash_fraction=0.2, byzantine_fraction=0.1)
        scenario = Scenario(
            algorithm="simple", n=20, nests=NESTS, seed=23, trial_index=3
        )
        source = scenario.source()
        crash_mask, crash_round, byz_mask = compile_fault_masks(
            plan, 20, [scenario.source()]
        )
        colony = build_colony(
            simple_factory(), 20, source.colony
        )
        colony = plan.apply(colony, source.faults)
        for ant_id, ant in enumerate(colony):
            if isinstance(ant, CrashedAnt):
                assert crash_mask[0, ant_id]
                assert crash_round[0, ant_id] == ant.crash_round
            elif ant.state_label() == "byzantine":
                assert byz_mask[0, ant_id]
            else:
                assert not crash_mask[0, ant_id]
                assert not byz_mask[0, ant_id]
