"""Tests for Algorithm 3 (SimpleAnt)."""

import numpy as np
import pytest

from repro.core.colony import simple_factory
from repro.core.simple import SimpleAnt
from repro.core.states import SimplePhase, SimpleState
from repro.model.actions import (
    Go,
    GoResult,
    Recruit,
    RecruitResult,
    Search,
    SearchResult,
)
from repro.model.nests import NestConfig
from repro.sim.run import run_trial


def make_ant(seed=0, n=16):
    return SimpleAnt(0, n, np.random.default_rng(seed))


class TestSearchPhase:
    def test_first_action_is_search(self):
        assert isinstance(make_ant().decide(), Search)

    def test_good_nest_activates(self):
        ant = make_ant()
        ant.decide()
        ant.observe(SearchResult(nest=2, quality=1.0, count=5))
        assert ant.state is SimpleState.ACTIVE
        assert ant.committed_nest == 2
        assert ant.count == 5

    def test_bad_nest_deactivates(self):
        ant = make_ant()
        ant.decide()
        ant.observe(SearchResult(nest=2, quality=0.0, count=5))
        assert ant.state is SimpleState.PASSIVE

    def test_threshold_respected(self):
        ant = SimpleAnt(0, 16, np.random.default_rng(0), good_threshold=0.7)
        ant.decide()
        ant.observe(SearchResult(nest=1, quality=0.6, count=3))
        assert ant.state is SimpleState.PASSIVE


class TestRecruitPhase:
    def advance_to_recruit(self, quality=1.0, count=8, seed=0, n=16):
        ant = make_ant(seed=seed, n=n)
        ant.decide()
        ant.observe(SearchResult(nest=3, quality=quality, count=count))
        return ant

    def test_active_ant_calls_recruit_with_own_nest(self):
        ant = self.advance_to_recruit()
        action = ant.decide()
        assert isinstance(action, Recruit)
        assert action.nest == 3

    def test_passive_ant_never_recruits_actively(self):
        ant = self.advance_to_recruit(quality=0.0)
        for _ in range(20):
            action = ant.decide()
            assert isinstance(action, Recruit)
            assert not action.active
            ant.observe(RecruitResult(nest=3, home_count=16))
            assert isinstance(ant.decide(), Go)
            ant.observe(GoResult(nest=3, count=1))

    def test_recruit_probability_matches_count_over_n(self):
        # Line 6: b := 1 with probability count/n.  count=8, n=16 -> 1/2.
        draws = []
        for seed in range(600):
            ant = self.advance_to_recruit(count=8, seed=seed, n=16)
            draws.append(ant.decide().active)
        rate = np.mean(draws)
        assert 0.42 < rate < 0.58

    def test_full_nest_always_recruits(self):
        ant = self.advance_to_recruit(count=16, n=16)
        assert ant.decide().active

    def test_active_adopts_returned_nest(self):
        ant = self.advance_to_recruit()
        ant.decide()
        ant.observe(RecruitResult(nest=4, home_count=16))
        assert ant.committed_nest == 4
        assert ant.state is SimpleState.ACTIVE

    def test_passive_wakes_on_new_nest(self):
        ant = self.advance_to_recruit(quality=0.0)
        ant.decide()
        ant.observe(RecruitResult(nest=4, home_count=16))
        assert ant.state is SimpleState.ACTIVE
        assert ant.committed_nest == 4

    def test_passive_stays_passive_on_own_nest(self):
        ant = self.advance_to_recruit(quality=0.0)
        ant.decide()
        ant.observe(RecruitResult(nest=3, home_count=16))
        assert ant.state is SimpleState.PASSIVE


class TestAssessPhase:
    def test_assessment_updates_count(self):
        ant = make_ant()
        ant.decide()
        ant.observe(SearchResult(nest=3, quality=1.0, count=5))
        ant.decide()
        ant.observe(RecruitResult(nest=3, home_count=16))
        action = ant.decide()
        assert action == Go(3)
        ant.observe(GoResult(nest=3, count=9))
        assert ant.count == 9
        assert ant.phase is SimplePhase.RECRUIT


class TestEndToEnd:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_converges_all_good(self, seed, all_good_4):
        result = run_trial(
            simple_factory(), 64, all_good_4, seed=seed, max_rounds=4000
        )
        assert result.converged
        assert result.chosen_nest in (1, 2, 3, 4)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_converges_to_good_nest_only(self, seed, mixed_nests):
        result = run_trial(
            simple_factory(), 64, mixed_nests, seed=seed, max_rounds=4000
        )
        assert result.converged
        assert result.chosen_nest in (1, 3)

    def test_single_nest_world(self):
        nests = NestConfig.all_good(1)
        result = run_trial(simple_factory(), 16, nests, seed=0, max_rounds=500)
        assert result.converged
        assert result.chosen_nest == 1

    def test_two_ants(self, all_good_4):
        result = run_trial(simple_factory(), 2, all_good_4, seed=4, max_rounds=4000)
        assert result.converged

    def test_state_labels(self):
        ant = make_ant()
        assert ant.state_label() == "search"
        ant.decide()
        ant.observe(SearchResult(nest=1, quality=1.0, count=1))
        assert ant.state_label() == "active"
