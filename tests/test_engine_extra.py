"""Additional engine behaviors: post-convergence running, result fields."""

import numpy as np

from repro.core.colony import simple_factory
from repro.model.environment import Environment
from repro.model.nests import NestConfig
from repro.sim.engine import Simulation
from repro.sim.rng import RandomSource
from repro.sim.run import build_colony


def build_sim(n=24, k=3, seed=4, max_rounds=400):
    source = RandomSource(seed)
    colony = build_colony(simple_factory(), n, source.colony)
    return Simulation(
        colony, Environment(n, NestConfig.all_good(k)), source,
        max_rounds=max_rounds,
    )


class TestRunModes:
    def test_stop_when_converged_false_runs_to_cap(self):
        sim = build_sim(max_rounds=120)
        result = sim.run(stop_when_converged=False)
        assert result.rounds_executed == 120
        # The criterion still recorded the first convergence round.
        assert result.converged
        assert result.converged_round < 120

    def test_converged_round_is_sticky(self):
        sim = build_sim(max_rounds=200)
        result = sim.run(stop_when_converged=False)
        first = result.converged_round
        # Continuing the same simulation does not move the recorded round.
        sim.max_rounds = 220
        sim.run(stop_when_converged=False)
        assert sim.converged_round == first

    def test_rounds_to_convergence_converged_case(self):
        sim = build_sim()
        result = sim.run()
        assert result.rounds_to_convergence == result.converged_round

    def test_stepwise_equals_run(self):
        a = build_sim(seed=9)
        b = build_sim(seed=9)
        result_a = a.run()
        while b.converged_round is None and b.round < b.max_rounds:
            b.step()
        assert b.converged_round == result_a.converged_round


class TestResultFields:
    def test_final_counts_sum_to_n(self):
        result = build_sim().run()
        assert result.final_counts.sum() == 24

    def test_unanimity_after_convergence(self):
        sim = build_sim()
        result = sim.run()
        commitments = {ant.committed_nest for ant in sim.ants}
        assert commitments == {result.chosen_nest}

    def test_match_outcome_pairs_property(self):
        sim = build_sim(seed=11)
        sim.step()  # search round: no recruitment
        record = sim.step()  # first recruitment round
        pairs = record.match.pairs
        assert all(len(pair) == 2 for pair in pairs)
        assert len(pairs) == len(record.match.recruited_by)
        recruiters = {recruiter for recruiter, _ in pairs}
        assert recruiters <= set(
            record.match.successful_recruiters
        ) | {r for r, e in pairs if r == e}
