"""Tests for the fast-engine result container and CLI run path."""

import numpy as np

from repro.fast.results import FastRunResult


class TestFastRunResult:
    def make(self, converged=True):
        return FastRunResult(
            converged=converged,
            converged_round=42 if converged else None,
            rounds_executed=100,
            chosen_nest=2 if converged else None,
            final_counts=np.array([0, 0, 8]),
        )

    def test_rounds_to_convergence_converged(self):
        assert self.make().rounds_to_convergence == 42

    def test_rounds_to_convergence_censored(self):
        assert self.make(converged=False).rounds_to_convergence == 100

    def test_history_defaults_to_none(self):
        assert self.make().population_history is None


class TestExperimentsCliRun:
    def test_runs_one_quick_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["E5", "--quick", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "E5" in out
        assert "completed in" in out

    def test_markdown_flag(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["E5", "--quick", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "| --- |" in out
