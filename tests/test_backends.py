"""The kernel-backend seam: selection, degradation, parity, and honesty.

Three contracts from ``repro.fast.backends``:

1. **Selection** — the ``kernel_backend`` scenario param beats the
   :func:`use_backend` override beats ``$REPRO_FAST_BACKEND`` beats
   ``auto``; unavailable explicit choices degrade down a fixed chain and
   the degradation is *reported*, never silent.
2. **Parity** — every backend realizes the perturbed batch kernels
   bit-for-bit: the committed golden digests must reproduce under each
   backend the host can run, which is why environment selection is
   digest-transparent.
3. **Honesty** — only an explicit scenario pin is part of scenario
   identity (recorded in report extras); pins are validated against the
   registry (unknown names, pin+v1, algorithms without the seam all
   raise ``ConfigurationError``).

Plus the arena's array-API genericity (the ``xp`` namespace seam that
makes the buffer pool cupy-ready without cupy present).
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.api import Scenario, run, run_batch
from repro.exceptions import ConfigurationError
from repro.fast import backends
from repro.fast.arena import Arena
from repro.fast.backends import (
    BACKEND_NAMES,
    availability,
    default_backend_name,
    resolve_backend,
    use_backend,
)
from repro.model.nests import NestConfig
from tests.helpers.golden import digest_reports, golden_cases, load_golden

CASES = golden_cases()
GOLDEN = load_golden()

#: Concrete (non-``auto``) backends this host can actually run.
CONCRETE = tuple(
    name
    for name in ("numba", "cext", "numpy", "python")
    if availability(name) is None
)

#: Golden cases that route through the perturbed driver — the seam's
#: dispatch surface (faults, delays, the composite, the rate schedule).
_PERTURBED_CASES = (
    "simple_byzantine",
    "simple_delay",
    "simple_composite",
    "adaptive_delay",
    "uniform_crash",
)

#: The interpreted specification is orders of magnitude slower, so it
#: proves parity on the two feature-richest cases only.
_PYTHON_CASES = ("simple_byzantine", "simple_composite")


# -- selection and degradation ------------------------------------------------


def test_numpy_and_python_always_available():
    assert availability("numpy") is None
    assert availability("python") is None


def test_availability_unknown_name_raises():
    with pytest.raises(ConfigurationError, match="unknown kernel backend"):
        availability("fortran")


def test_resolve_unknown_name_raises():
    with pytest.raises(ConfigurationError, match="unknown kernel backend"):
        resolve_backend("fortran")


def test_resolve_auto_is_available_and_not_degraded():
    actual, degraded_from = resolve_backend("auto")
    assert availability(actual) is None
    assert degraded_from is None


def test_resolve_python_is_exactly_itself():
    assert resolve_backend("python") == ("python", None)


def test_degradation_is_reported(monkeypatch):
    """With compiled backends gone, explicit requests degrade loudly."""

    def only_numpy(name):
        if name in ("numpy", "python"):
            return None
        if name in BACKEND_NAMES:
            return f"{name} disabled for this test"
        raise ConfigurationError(f"unknown kernel backend {name!r}")

    monkeypatch.setattr(backends, "availability", only_numpy)
    assert backends.resolve_backend("numba") == ("numpy", "numba")
    assert backends.resolve_backend("cext") == ("numpy", "cext")
    # auto lands on the same fallback but is never "degraded".
    assert backends.resolve_backend("auto") == ("numpy", None)


def test_use_backend_yields_resolved_and_restores():
    before = default_backend_name()
    with use_backend("python") as actual:
        assert actual == "python"
        assert default_backend_name() == "python"
    assert default_backend_name() == before


def test_use_backend_validates_eagerly():
    with pytest.raises(ConfigurationError, match="unknown kernel backend"):
        with use_backend("fortran"):
            pass  # pragma: no cover - never entered


def test_env_var_is_the_process_default(monkeypatch):
    monkeypatch.setenv("REPRO_FAST_BACKEND", "numpy")
    assert default_backend_name() == "numpy"
    assert resolve_backend(None) == ("numpy", None)
    # ...but a use_backend override wins over the environment.
    with use_backend("python"):
        assert resolve_backend(None)[0] == "python"


def test_env_var_typo_fails_loudly(monkeypatch):
    monkeypatch.setenv("REPRO_FAST_BACKEND", "cetx")
    with pytest.raises(ConfigurationError, match="unknown kernel backend"):
        resolve_backend(None)


# -- cross-backend parity against the committed goldens -----------------------


@pytest.mark.parametrize("backend", CONCRETE)
@pytest.mark.parametrize("name", _PERTURBED_CASES)
def test_perturbed_goldens_reproduce_under_every_backend(backend, name):
    if backend == "python" and name not in _PYTHON_CASES:
        pytest.skip("interpreted backend proves parity on the rich cases")
    with use_backend(backend) as actual:
        assert actual == backend  # CONCRETE entries never degrade
        reports = run_batch(CASES[name], workers=1)
    assert digest_reports(reports) == GOLDEN[name], (
        f"backend {backend!r} does not reproduce golden case {name!r} "
        "bit-for-bit"
    )


# -- scenario pins: identity, recording, validation ---------------------------

_NESTS = NestConfig.binary(4, {1})


def _pin_scenario(**params) -> Scenario:
    return Scenario(
        algorithm="simple",
        n=64,
        nests=_NESTS,
        seed=11,
        max_rounds=2_000,
        params=params,
    )


def test_explicit_pin_recorded_in_extras():
    report = run(_pin_scenario(kernel_backend="numpy"))
    assert report.extras["kernel_backend"] == "numpy"


def test_environment_selection_is_not_recorded():
    with use_backend("numpy"):
        report = run(_pin_scenario())
    assert "kernel_backend" not in report.extras


@pytest.mark.parametrize("backend", CONCRETE)
def test_pinned_backends_agree_bit_for_bit(backend):
    reference = run(_pin_scenario(kernel_backend="numpy"))
    pinned = run(_pin_scenario(kernel_backend=backend))
    assert pinned.converged == reference.converged
    assert pinned.converged_round == reference.converged_round
    assert pinned.rounds_executed == reference.rounds_executed
    assert pinned.chosen_nest == reference.chosen_nest
    assert np.array_equal(pinned.final_counts, reference.final_counts)


def test_unknown_pin_rejected():
    with pytest.raises(ConfigurationError, match="unknown kernel backend"):
        run(_pin_scenario(kernel_backend="cuda"))


def test_pin_plus_v1_matcher_rejected():
    with pytest.raises(ConfigurationError, match="v1 matcher"):
        run(_pin_scenario(kernel_backend="numpy", matcher="v1"))


@pytest.mark.parametrize(
    "params, match",
    [
        ({"kernel_backend": "cuda", "matcher": "v1"}, "unknown kernel backend"),
        ({"kernel_backend": "numpy", "matcher": "v1"}, "v1 matcher"),
    ],
)
def test_bad_pin_rejected_even_on_agent_fallback(params, match):
    """Validation is as eager as the matcher param's: a bad pin raises even
    when the scenario's structure would route to the agent engine (where
    the pin would otherwise be silently ignored)."""
    from repro import DelayModel

    scenario = Scenario(
        algorithm="simple",
        n=64,
        nests=_NESTS,
        seed=11,
        max_rounds=2_000,
        # v1 + delay is not a fast-path structure -> agent fallback.
        delay_model=DelayModel(0.5),
        params=params,
    )
    with pytest.raises(ConfigurationError, match=match):
        run(scenario)


def test_pin_rejected_by_algorithms_without_the_seam():
    scenario = Scenario(
        algorithm="optimal",
        n=64,
        nests=_NESTS,
        seed=11,
        max_rounds=2_000,
        params={"kernel_backend": "numpy"},
    )
    with pytest.raises(ConfigurationError, match="does not accept params"):
        run(scenario)


# -- the arena's array-API namespace seam -------------------------------------


class _ApiArray:
    """Minimal array-API-shaped wrapper: no ``fill``, no ``nbytes``."""

    def __init__(self, data: np.ndarray) -> None:
        self._data = data

    @property
    def dtype(self):
        return self._data.dtype

    @property
    def shape(self):
        return self._data.shape

    @property
    def size(self):
        return self._data.size

    def __getitem__(self, index):
        return _ApiArray(self._data[index])

    def __setitem__(self, index, value):
        self._data[index] = value


_FAKE_XP = SimpleNamespace(
    empty=lambda shape, dtype=None: _ApiArray(np.empty(shape, dtype=dtype))
)


def test_arena_generic_namespace_allocates_and_recycles():
    arena = Arena(xp=_FAKE_XP)
    assert arena.xp is _FAKE_XP
    view = arena.buf("plane", (4, 3), np.float64)
    assert isinstance(view, _ApiArray)
    assert view.shape == (4, 3)
    backing = arena._buffers["plane"]
    # Shrinking rows recycles the same backing allocation.
    arena.buf("plane", (2, 3), np.float64)
    assert arena._buffers["plane"] is backing
    # Growing rows replaces it.
    arena.buf("plane", (8, 3), np.float64)
    assert arena._buffers["plane"] is not backing


def test_arena_full_works_without_ndarray_fill():
    arena = Arena(xp=_FAKE_XP)
    view = arena.full("mask", (3,), np.int64, 7)
    assert view._data.tolist() == [7, 7, 7]


def test_arena_aliasing_check_is_numpy_gated():
    arena = Arena(xp=_FAKE_XP)
    arena.buf("a", (4,), np.int64)
    arena.buf("b", (4,), np.int64)
    # No shares_memory outside numpy: degrade to a no-op, never a guess.
    arena.check_aliasing()


def test_arena_nbytes_falls_back_to_size_times_itemsize():
    arena = Arena(xp=_FAKE_XP)
    arena.buf("a", (5,), np.int64)
    assert arena.nbytes() == 5 * 8


def test_arena_default_is_numpy_and_checks_aliasing():
    arena = Arena()
    assert arena.xp is np
    first = arena.buf("a", (4,), np.int64)
    arena._buffers["b"] = first  # simulate a bookkeeping bug
    with pytest.raises(AssertionError, match="alias"):
        arena.check_aliasing()
