"""Tests for seeded random-stream management."""

import numpy as np

from repro.sim.rng import RandomSource


class TestStreams:
    def test_same_seed_same_streams(self):
        a, b = RandomSource(7), RandomSource(7)
        assert a.colony.random(5).tolist() == b.colony.random(5).tolist()
        assert a.matcher.random(5).tolist() == b.matcher.random(5).tolist()

    def test_different_seeds_differ(self):
        a, b = RandomSource(7), RandomSource(8)
        assert a.colony.random(5).tolist() != b.colony.random(5).tolist()

    def test_streams_are_independent(self):
        a, b = RandomSource(7), RandomSource(7)
        # Drawing heavily from one stream must not perturb another.
        a.environment.random(1000)
        assert a.colony.random(5).tolist() == b.colony.random(5).tolist()

    def test_stream_identity_is_name_order_independent(self):
        a, b = RandomSource(7), RandomSource(7)
        a.stream("alpha")
        a_draw = a.stream("beta").random(3)
        b.stream("beta")  # requested first here
        b_draw = b.stream("beta").random(3)
        assert a_draw.tolist() == b_draw.tolist()

    def test_same_generator_returned_on_repeat_access(self):
        source = RandomSource(7)
        assert source.colony is source.colony

    def test_anagram_names_get_distinct_streams(self):
        source = RandomSource(7)
        a = source.stream("ab").random(4)
        b = source.stream("ba").random(4)
        assert a.tolist() != b.tolist()

    def test_named_accessors_cover_canonical_streams(self):
        source = RandomSource(0)
        generators = [
            source.environment,
            source.matcher,
            source.colony,
            source.faults,
            source.noise,
            source.delays,
        ]
        assert len({id(g) for g in generators}) == 6


class TestTrials:
    def test_trials_are_reproducible(self):
        a = RandomSource(7).trial(3)
        b = RandomSource(7).trial(3)
        assert a.colony.random(5).tolist() == b.colony.random(5).tolist()

    def test_distinct_trials_differ(self):
        root = RandomSource(7)
        a, b = root.trial(0), root.trial(1)
        assert a.colony.random(5).tolist() != b.colony.random(5).tolist()

    def test_trial_differs_from_root(self):
        root = RandomSource(7)
        trial = root.trial(0)
        assert root.colony.random(5).tolist() != trial.colony.random(5).tolist()

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(123)
        source = RandomSource(seq)
        assert source.seed_sequence is seq
