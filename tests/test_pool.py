"""The persistent worker pool, result transports, and arena plumbing.

PR-5 contracts under test:

- ``run_study`` through a persistent :class:`~repro.api.WorkerPool` is
  bit-identical to serial execution and to per-call pools — fresh pool,
  reused pool, and ``workers=1`` must produce equal ``ResultTable``s;
- the packed-column and shared-memory transports reproduce every report
  field exactly;
- the arena recycles buffers and compacts rows without reallocation;
- the phase profiler accounts kernel time when (and only when) installed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    Scenario,
    Study,
    Sweep,
    WorkerPool,
    default_batch_chunk,
    grid,
    nests_spec,
    run_batch,
    run_study,
)
import repro.api.transport as transport
from repro.fast.arena import Arena, compact_rows
from repro.fast.profiling import phase_timing
from repro.model.nests import NestConfig


def _study(trials: int = 6) -> Study:
    return Study(
        name="pool-determinism",
        sweep=Sweep(
            base={
                "algorithm": "simple",
                "nests": nests_spec("all_good", k=4),
                "seed": 11,
                "max_rounds": 20_000,
            },
            axes=(grid("n", (64, 128)),),
        ),
        trials=trials,
    )


@pytest.mark.usefixtures("shm_watch")
class TestWorkerPool:
    def test_pool_reuse_determinism(self):
        """Same study: workers=1, fresh pool, reused pool — one answer."""
        study = _study()
        serial = run_study(study, workers=1, cache=None)
        fresh = run_study(study, workers=2, cache=None, batch_chunk=2)
        with WorkerPool(2) as pool:
            reused_first = run_study(
                study, cache=None, batch_chunk=2, pool=pool
            )
            reused_second = run_study(
                study, cache=None, batch_chunk=2, pool=pool
            )
        assert serial.table.equals(fresh.table)
        assert serial.table.equals(reused_first.table)
        assert serial.table.equals(reused_second.table)

    def test_pool_starts_lazily_and_only_for_parallel_work(self):
        pool = WorkerPool(2)
        assert not pool.started
        scenario = Scenario(
            algorithm="simple",
            n=64,
            nests=NestConfig.all_good(3),
            seed=5,
            max_rounds=20_000,
        )
        # A single task never spawns workers.
        run_batch(scenario.trials(2), pool=pool)
        assert not pool.started
        run_batch(scenario.trials(4), batch_chunk=2, pool=pool)
        assert pool.started
        pool.close()
        assert not pool.started

    def test_pool_of_one_stays_serial(self):
        with WorkerPool(1) as pool:
            scenario = Scenario(
                algorithm="simple",
                n=64,
                nests=NestConfig.all_good(3),
                seed=5,
                max_rounds=20_000,
            )
            run_batch(scenario.trials(4), batch_chunk=2, pool=pool)
            assert not pool.started

    def test_run_batch_pool_matches_serial(self):
        scenario = Scenario(
            algorithm="simple",
            n=128,
            nests=NestConfig.all_good(4),
            seed=31,
            max_rounds=20_000,
        )
        scenarios = scenario.trials(6)
        serial = run_batch(scenarios, workers=1)
        with WorkerPool(2) as pool:
            pooled = run_batch(scenarios, batch_chunk=2, pool=pool)
        for a, b in zip(serial, pooled):
            assert a.to_dict(include_history=True) == b.to_dict(
                include_history=True
            )


@pytest.mark.usefixtures("shm_watch")
class TestTransports:
    def _reports(self, **overrides):
        base = dict(
            algorithm="simple",
            n=96,
            nests=NestConfig.binary(4, {2, 3, 4}),
            seed=77,
            max_rounds=4_000,
        )
        base.update(overrides)
        scenarios = Scenario(**base).trials(5)
        return run_batch(scenarios, workers=1), scenarios

    def test_packed_roundtrip(self):
        reports, scenarios = self._reports()
        packed = transport.pack_reports(reports)
        rebuilt = transport.unpack_reports(packed, scenarios)
        for a, b in zip(reports, rebuilt):
            assert a.to_dict(include_history=True) == b.to_dict(
                include_history=True
            )

    def test_packed_roundtrip_with_history(self):
        reports, scenarios = self._reports(record_history=True, n=48)
        packed = transport.pack_reports(reports)
        rebuilt = transport.unpack_reports(packed, scenarios)
        for a, b in zip(reports, rebuilt):
            assert np.array_equal(a.population_history, b.population_history)
            assert a.to_dict(include_history=True) == b.to_dict(
                include_history=True
            )

    def test_packed_roundtrip_without_final_counts(self):
        reports, scenarios = self._reports(
            algorithm="spread", nests=NestConfig.single_good(3)
        )
        packed = transport.pack_reports(reports)
        assert packed["final_counts"] is None
        rebuilt = transport.unpack_reports(packed, scenarios)
        for a, b in zip(reports, rebuilt):
            assert b.final_counts is None
            assert a.to_dict(include_history=True) == b.to_dict(
                include_history=True
            )

    def test_packed_length_mismatch_rejected(self):
        reports, scenarios = self._reports()
        packed = transport.pack_reports(reports)
        with pytest.raises(ValueError):
            transport.unpack_reports(packed, scenarios[:-1])

    def test_shm_roundtrip(self):
        reports, scenarios = self._reports(record_history=True, n=48)
        descriptor = transport.maybe_to_shm(
            transport.pack_reports(reports), min_bytes=0
        )
        assert transport.is_shm_descriptor(descriptor)
        rebuilt = transport.unpack_reports(
            transport.from_shm(descriptor), scenarios
        )
        for a, b in zip(reports, rebuilt):
            assert a.to_dict(include_history=True) == b.to_dict(
                include_history=True
            )

    def test_shm_small_payloads_stay_pickled(self):
        reports, _ = self._reports()
        packed = transport.pack_reports(reports)
        assert transport.maybe_to_shm(packed, min_bytes=1 << 30) is packed

    def test_shm_transport_through_workers(self, monkeypatch):
        reports, scenarios = self._reports()
        monkeypatch.setattr(transport, "SHM_MIN_BYTES", 0)
        shipped = run_batch(
            scenarios, workers=2, batch_chunk=2, transport="shm"
        )
        for a, b in zip(reports, shipped):
            assert a.to_dict(include_history=True) == b.to_dict(
                include_history=True
            )

    def test_unknown_transport_rejected(self):
        from repro.exceptions import ConfigurationError

        _, scenarios = self._reports()
        with pytest.raises(ConfigurationError):
            run_batch(scenarios, workers=2, transport="carrier-pigeon")


class TestBatchChunkPolicy:
    def test_size_aware_default(self):
        assert default_batch_chunk(4096) == 64
        assert default_batch_chunk(1024) == 256
        assert default_batch_chunk(2) == 512  # clamped high
        # Past the auto-tile threshold the scratch term is computed over
        # the tile width and the 2^23-element state cap takes over (the
        # full breakpoint table lives in tests/test_tiling.py).
        assert default_batch_chunk(10**6) == 8
        assert default_batch_chunk(10**9) == 1  # state-capped low

    def test_chunking_invisible_to_results(self):
        scenario = Scenario(
            algorithm="simple",
            n=64,
            nests=NestConfig.all_good(3),
            seed=9,
            max_rounds=20_000,
        )
        scenarios = scenario.trials(5)
        default = run_batch(scenarios)
        explicit = run_batch(scenarios, batch_chunk=1)
        for a, b in zip(default, explicit):
            assert a.to_dict(include_history=True) == b.to_dict(
                include_history=True
            )


class TestArena:
    def test_buffer_recycled_when_compatible(self):
        arena = Arena()
        first = arena.buf("x", (8, 16), np.int32)
        second = arena.buf("x", (4, 16), np.int32)
        assert second.base is first.base or second.base is first
        assert second.shape == (4, 16)

    def test_buffer_replaced_on_growth_or_dtype_change(self):
        arena = Arena()
        first = arena.buf("x", (4, 16), np.int32)
        grown = arena.buf("x", (8, 16), np.int32)
        assert grown.shape == (8, 16)
        retyped = arena.buf("x", (8, 16), np.int64)
        assert retyped.dtype == np.int64
        assert first.shape == (4, 16)  # old view unaffected

    def test_full_fills(self):
        arena = Arena()
        view = arena.full("y", (3, 4), np.int32, 7)
        assert (view == 7).all()

    def test_nbytes_and_clear(self):
        arena = Arena()
        arena.buf("x", (4, 16), np.int64)
        assert arena.nbytes() == 4 * 16 * 8
        arena.clear()
        assert arena.nbytes() == 0

    def test_compact_rows_matches_fancy_indexing(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 100, (10, 7))
        b = rng.random((10, 3))
        keep = np.array([0, 3, 4, 8])
        expected_a, expected_b = a[keep].copy(), b[keep].copy()
        ca, cb = compact_rows(keep, a, b)
        assert np.array_equal(ca, expected_a)
        assert np.array_equal(cb, expected_b)
        assert ca.base is a  # compacted in place, no reallocation


class TestPhaseProfiling:
    def test_profile_captures_phases(self):
        scenario = Scenario(
            algorithm="simple",
            n=64,
            nests=NestConfig.all_good(3),
            seed=3,
            max_rounds=20_000,
        )
        with phase_timing() as profile:
            run_batch(scenario.trials(3), backend="fast", workers=1)
        assert profile.batches == 1
        assert profile.rounds > 0
        assert profile.total_seconds > 0
        assert set(profile.phase_seconds) <= {
            "draw",
            "match",
            "move",
            "bookkeep",
            "compact",
        }
        summary = profile.as_dict()
        assert summary["rounds"] == profile.rounds
        assert abs(sum(p["share"] for p in summary["phases"].values()) - 1.0) < 1e-9

    def test_profiling_off_is_inert(self):
        from repro.fast import profiling

        assert profiling.active() is None

    def test_profiler_smoke_cli(self):
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        proc = subprocess.run(
            [sys.executable, str(repo / "tools" / "profile_hotpath.py"), "--smoke"],
            capture_output=True,
            text=True,
            env={
                "PYTHONPATH": str(repo / "src"),
                "PATH": "/usr/bin:/bin",
            },
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        assert "kernel" in proc.stdout
