"""The content-addressed result cache: hits, misses, corruption, identity."""

import json

import pytest

import repro.api.scheduler as scheduler_module
from repro.api import (
    CACHE_FORMAT_VERSION,
    ResultCache,
    Scenario,
    Study,
    Sweep,
    default_cache,
    grid,
    nests_spec,
    run_study,
)
from repro.api.cache import content_key, stats_from_dict, stats_to_dict
from repro.sim.run import TrialStats

import numpy as np


def study(trials: int = 4, metrics=("n_trials", "success_rate", "median_rounds")) -> Study:
    return Study(
        name="cache-study",
        sweep=Sweep(
            base={
                "algorithm": "simple",
                "nests": nests_spec("all_good", k=2),
                "seed": 11,
                "max_rounds": 10_000,
            },
            axes=(grid("n", (16, 32, 64)),),
        ),
        trials=trials,
        metrics=tuple(metrics),
    )


def cache_files(cache: ResultCache):
    return sorted(cache.root.glob("*/*.json"))


class TestHitMissAccounting:
    def test_cold_then_warm(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_study(study(), cache=cache)
        assert (cold.cache_hits, cold.cache_misses) == (0, 3)
        assert cold.simulated_trials == 12
        assert len(cache_files(cache)) == 3

        warm = run_study(study(), cache=cache)
        assert (warm.cache_hits, warm.cache_misses) == (3, 0)
        assert warm.simulated_trials == 0
        assert all(cell.cached for cell in warm.cells)

    def test_warm_run_never_touches_run_batch(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        run_study(study(), cache=cache)

        def boom(*args, **kwargs):
            raise AssertionError("warm run must execute zero simulations")

        monkeypatch.setattr(scheduler_module, "run_batch", boom)
        warm = run_study(study(), cache=cache)
        assert warm.simulated_trials == 0

    def test_partial_warm_resume(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_study(study(), cache=cache)
        # A grown sweep re-runs only the new cell (interrupted-sweep resume
        # is the same mechanism: completed cells persist individually).
        bigger = Study(
            name="cache-study",
            sweep=Sweep(
                base=study().sweep.base,
                axes=(grid("n", (16, 32, 64, 128)),),
            ),
            trials=4,
            metrics=study().metrics,
        )
        grown = run_study(bigger, cache=cache)
        assert (grown.cache_hits, grown.cache_misses) == (3, 1)
        assert grown.simulated_trials == 4

    def test_key_includes_trials_metrics_and_backend(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_study(study(), cache=cache)
        assert run_study(study(trials=5), cache=cache).cache_misses == 3
        assert (
            run_study(study(metrics=("n_trials",)), cache=cache).cache_misses == 3
        )
        assert run_study(study(), cache=cache, backend="agent").cache_misses == 3

    def test_equal_scenarios_hash_equal(self):
        from repro.model.nests import NestConfig

        a = Scenario(
            algorithm="simple",
            n=8,
            nests=NestConfig.all_good(2),
            params={"matcher": "v2", "x": 1},
        )
        b = a.replace(params={"x": 1, "matcher": "v2"})
        assert content_key({"scenario": a.to_dict()}) == content_key(
            {"scenario": b.to_dict()}
        )


class TestCorruptionTolerance:
    def test_truncated_entry_recomputes(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_study(study(), cache=cache)
        victim = cache_files(cache)[0]
        victim.write_text(victim.read_text()[: 40], encoding="utf-8")

        recovered = run_study(study(), cache=cache)
        assert (recovered.cache_hits, recovered.cache_misses) == (2, 1)
        # The recompute overwrote the corrupt entry; next run is fully warm.
        healed = run_study(study(), cache=cache)
        assert (healed.cache_hits, healed.cache_misses) == (3, 0)

    def test_payload_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        stats = TrialStats(
            n_trials=1, n_converged=1, rounds=np.array([3]), censored_at=10
        )
        cache.store({"a": 1}, stats, {"m": 1.0})
        # Different payload hashing to a different key: plain miss.
        assert cache.load({"a": 2}) is None
        # Entry whose recorded payload disagrees with the request (as after
        # a forged/bit-rotted file) is also a miss.
        key_path = cache_files(cache)[0]
        entry = json.loads(key_path.read_text())
        entry["payload"] = {"a": 99}
        key_path.write_text(json.dumps(entry), encoding="utf-8")
        cache.misses = 0
        assert cache.load({"a": 1}) is None
        assert cache.misses == 1

    def test_version_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        stats = TrialStats(
            n_trials=1, n_converged=0, rounds=np.array([], dtype=np.int64), censored_at=5
        )
        cache.store({"b": 1}, stats, {})
        path = cache_files(cache)[0]
        entry = json.loads(path.read_text())
        entry["version"] = CACHE_FORMAT_VERSION + 1
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.load({"b": 1}) is None

    def test_garbage_bytes_recompute(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_study(study(), cache=cache)
        victim = cache_files(cache)[0]
        # Non-UTF-8 binary noise: not even decodable, let alone JSON.
        victim.write_bytes(bytes(range(256)) * 4)

        recovered = run_study(study(), cache=cache)
        assert (recovered.cache_hits, recovered.cache_misses) == (2, 1)
        healed = run_study(study(), cache=cache)
        assert (healed.cache_hits, healed.cache_misses) == (3, 0)

    def test_defects_record_corruption_but_not_cold_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        stats = TrialStats(
            n_trials=1, n_converged=1, rounds=np.array([3]), censored_at=10
        )
        cache.store({"c": 1}, stats, {"m": 1.0})
        # Cold miss: nothing existed, nothing is defective.
        assert cache.load({"c": 2}) is None
        assert cache.defects == []
        # Corrupt the entry that *does* exist: miss + recorded defect.
        path = cache_files(cache)[0]
        path.write_text("{truncated", encoding="utf-8")
        assert cache.load({"c": 1}) is None
        assert len(cache.defects) == 1
        key, reason = cache.defects[0]
        assert key == content_key({"c": 1})
        assert reason  # human-readable, never empty
        # A store heals it; the defect log keeps the history.
        cache.store({"c": 1}, stats, {"m": 1.0})
        assert cache.load({"c": 1}) is not None
        assert len(cache.defects) == 1

    def test_concurrent_writers_race_atomically(self, tmp_path):
        """Two writers storing the same cell hash: both atomic, one wins,
        and a reader at any point sees a complete valid entry."""
        import threading

        cache = ResultCache(tmp_path)
        payload = {"cell": "shared"}
        stats = TrialStats(
            n_trials=2, n_converged=2, rounds=np.array([3, 5]), censored_at=10
        )
        metrics_by_writer = [{"m": 1.0}, {"m": 2.0}]
        barrier = threading.Barrier(2)

        def writer(metrics):
            barrier.wait()
            for _ in range(50):
                cache.store(payload, stats, metrics)

        threads = [
            threading.Thread(target=writer, args=(m,))
            for m in metrics_by_writer
        ]
        for t in threads:
            t.start()
        # Read concurrently with the race: every load must be valid.
        reader = ResultCache(tmp_path)
        observed = set()
        while any(t.is_alive() for t in threads):
            loaded = reader.load(payload)
            if loaded is not None:
                observed.add(loaded[1]["m"])
        for t in threads:
            t.join()
        assert reader.defects == []  # no torn reads, ever
        assert observed <= {1.0, 2.0}
        # One writer won; the surviving entry is fully valid.
        final = ResultCache(tmp_path).load(payload)
        assert final is not None
        assert final[1]["m"] in (1.0, 2.0)
        # No stray temp files left behind by either writer.
        stray = [p for p in cache.root.glob("*/*") if p.suffix != ".json"]
        assert stray == []

    def test_stats_round_trip(self):
        stats = TrialStats(
            n_trials=7,
            n_converged=5,
            rounds=np.array([4, 6, 6, 9, 12]),
            censored_at=100,
            chosen_nests={2: 3, 1: 2},
        )
        clone = stats_from_dict(stats_to_dict(stats))
        assert clone.n_trials == stats.n_trials
        assert clone.n_converged == stats.n_converged
        assert np.array_equal(clone.rounds, stats.rounds)
        assert clone.rounds.dtype == np.int64
        assert clone.chosen_nests == stats.chosen_nests


class TestBitIdenticalTables:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_cold_vs_warm_identical(self, tmp_path, workers):
        cold_cache = ResultCache(tmp_path / "cold")
        cold = run_study(study(), cache=cold_cache, workers=workers)
        warm = run_study(study(), cache=cold_cache, workers=workers)
        assert warm.simulated_trials == 0
        assert cold.table.equals(warm.table)

    def test_cross_worker_cross_cache_identical(self, tmp_path):
        serial = run_study(study(), cache=ResultCache(tmp_path / "w1"), workers=1)
        parallel = run_study(study(), cache=ResultCache(tmp_path / "w4"), workers=4)
        # Warm read from the serial run's cache under workers=4.
        mixed = run_study(study(), cache=ResultCache(tmp_path / "w1"), workers=4)
        assert serial.table.equals(parallel.table)
        assert serial.table.equals(mixed.table)
        assert mixed.simulated_trials == 0


class TestDefaultCache:
    def test_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache() is None
        result = run_study(study(trials=1), cache="auto")
        assert result.cache_hits == result.cache_misses == 0

    def test_env_enables(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        cache = default_cache()
        assert cache is not None
        result = run_study(study(trials=1), cache="auto")
        assert result.cache_misses == 3
        assert run_study(study(trials=1), cache="auto").cache_hits == 3
