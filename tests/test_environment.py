"""Tests for the environment substrate (locations, known nests, counts)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ProtocolError
from repro.model.environment import Environment
from repro.model.nests import NestConfig
from repro.types import HOME_NEST


class TestInitialState:
    def test_everyone_starts_at_home(self, small_environment):
        assert all(
            small_environment.location_of(a) == HOME_NEST
            for a in range(small_environment.n)
        )

    def test_initial_counts(self, small_environment):
        counts = small_environment.counts()
        assert counts[HOME_NEST] == small_environment.n
        assert counts[1:].sum() == 0

    def test_home_is_always_known(self, small_environment):
        assert small_environment.knows(0, HOME_NEST)

    def test_candidates_initially_unknown(self, small_environment):
        assert not any(small_environment.knows(0, i) for i in range(1, 5))

    def test_round_starts_at_zero(self, small_environment):
        assert small_environment.round == 0

    def test_rejects_empty_colony(self, mixed_nests):
        with pytest.raises(ConfigurationError):
            Environment(0, mixed_nests)


class TestMoves:
    def test_apply_moves_updates_locations_and_round(self, small_environment):
        destinations = np.array([1, 2, 3, 4, 0, 0])
        small_environment.apply_moves(destinations)
        assert small_environment.location_of(0) == 1
        assert small_environment.location_of(4) == HOME_NEST
        assert small_environment.round == 1

    def test_apply_moves_marks_known(self, small_environment):
        small_environment.apply_moves(np.array([1, 2, 3, 4, 0, 0]))
        assert small_environment.knows(0, 1)
        assert not small_environment.knows(0, 2)

    def test_counts_after_moves(self, small_environment):
        small_environment.apply_moves(np.array([1, 1, 1, 2, 0, 0]))
        counts = small_environment.counts()
        assert counts.tolist() == [2, 3, 1, 0, 0]

    def test_count_at(self, small_environment):
        small_environment.apply_moves(np.array([1, 1, 2, 2, 2, 0]))
        assert small_environment.count_at(2) == 3

    def test_wrong_shape_rejected(self, small_environment):
        with pytest.raises(ConfigurationError):
            small_environment.apply_moves(np.array([1, 2]))

    def test_out_of_range_destination_rejected(self, small_environment):
        with pytest.raises(ConfigurationError):
            small_environment.apply_moves(np.array([1, 2, 3, 4, 5, 0]))


class TestPreconditions:
    def test_go_requires_known_nest(self, small_environment):
        with pytest.raises(ProtocolError, match="unknown"):
            small_environment.check_go(0, 1)

    def test_go_after_visit_allowed(self, small_environment):
        small_environment.apply_moves(np.array([1, 0, 0, 0, 0, 0]))
        small_environment.check_go(0, 1)  # must not raise

    def test_go_home_forbidden(self, small_environment):
        with pytest.raises(ProtocolError, match="go\\(0\\)"):
            small_environment.check_go(0, HOME_NEST)

    def test_go_out_of_range(self, small_environment):
        with pytest.raises(ProtocolError):
            small_environment.check_go(0, 9)

    def test_recruit_requires_known_nest(self, small_environment):
        with pytest.raises(ProtocolError):
            small_environment.check_recruit(2, 3)

    def test_recruit_out_of_range(self, small_environment):
        with pytest.raises(ProtocolError):
            small_environment.check_recruit(0, 0)

    def test_mark_known_enables_go(self, small_environment):
        # Recruitment teaches locations (DESIGN.md §3.7).
        small_environment.mark_known(3, 2)
        small_environment.check_go(3, 2)
        small_environment.check_recruit(3, 2)


class TestSnapshot:
    def test_snapshot_contents(self, small_environment):
        small_environment.apply_moves(np.array([1, 2, 0, 0, 0, 0]))
        snapshot = small_environment.snapshot()
        assert snapshot.round == 1
        assert snapshot.counts.tolist() == [4, 1, 1, 0, 0]
        assert snapshot.count_at(1) == 1

    def test_snapshot_is_immutable(self, small_environment):
        snapshot = small_environment.snapshot()
        with pytest.raises(ValueError):
            snapshot.counts[0] = 99

    def test_snapshot_detached_from_environment(self, small_environment):
        snapshot = small_environment.snapshot()
        small_environment.apply_moves(np.array([1, 1, 1, 1, 1, 1]))
        assert snapshot.counts[HOME_NEST] == 6


class TestSearchSampling:
    def test_destination_range(self, small_environment, rng):
        draws = [
            small_environment.sample_search_destination(rng) for _ in range(200)
        ]
        assert min(draws) >= 1
        assert max(draws) <= small_environment.k

    def test_batch_destinations(self, small_environment, rng):
        draws = small_environment.sample_search_destinations(500, rng)
        assert draws.shape == (500,)
        # Uniformity sanity: every nest hit at least once in 500 draws.
        assert set(np.unique(draws)) == {1, 2, 3, 4}

    def test_known_matrix_copy(self, small_environment):
        matrix = small_environment.known_matrix()
        matrix[:] = True
        assert not small_environment.knows(0, 1)
