"""Tests for the recruitment pairing process (the paper's Algorithm 1)."""

import numpy as np
import pytest

from repro.model.recruitment import (
    MatchOutcome,
    RecruitRequest,
    match_arrays,
    run_recruitment,
)


def outcome(requests, seed=0) -> MatchOutcome:
    return run_recruitment(requests, np.random.default_rng(seed))


class TestEmptyAndTrivial:
    def test_no_participants(self):
        result = outcome([])
        assert result.assignments == {}
        assert result.pairs == ()

    def test_single_passive_ant_keeps_nest(self):
        result = outcome([RecruitRequest(ant=0, active=False, target=3)])
        assert result.assignments == {0: 3}
        assert not result.was_recruited(0)

    def test_single_active_ant_self_recruits(self):
        # With c(0, r) = 1 the only possible choice is itself (the forced
        # self-recruitment the Theorem 3.2 proof leans on).
        result = outcome([RecruitRequest(ant=0, active=True, target=3)])
        assert result.assignments == {0: 3}
        assert result.recruited_by == {0: 0}
        assert 0 in result.successful_recruiters


class TestPairingInvariants:
    @pytest.mark.parametrize("seed", range(10))
    def test_each_ant_in_at_most_one_pair(self, seed):
        requests = [
            RecruitRequest(ant=a, active=a % 2 == 0, target=1 + a % 3)
            for a in range(20)
        ]
        result = outcome(requests, seed)
        recruitees = list(result.recruited_by)
        assert len(recruitees) == len(set(recruitees))
        recruiters = list(result.recruited_by.values())
        assert len(recruiters) == len(set(recruiters))
        # No ant is recruiter in one pair and recruitee in another.
        overlap = set(recruitees) & set(recruiters)
        assert all(result.recruited_by[a] == a for a in overlap)

    @pytest.mark.parametrize("seed", range(10))
    def test_only_active_ants_recruit(self, seed):
        requests = [
            RecruitRequest(ant=a, active=a < 5, target=1) for a in range(15)
        ]
        result = outcome(requests, seed)
        assert all(r < 5 for r in result.recruited_by.values())

    @pytest.mark.parametrize("seed", range(10))
    def test_recruited_ants_learn_recruiters_nest(self, seed):
        requests = [RecruitRequest(ant=0, active=True, target=7)] + [
            RecruitRequest(ant=a, active=False, target=1) for a in range(1, 8)
        ]
        result = outcome(requests, seed)
        for recruitee, recruiter in result.recruited_by.items():
            if recruiter == 0:
                assert result.assignments[recruitee] == 7

    def test_unrecruited_ants_keep_their_input(self):
        requests = [RecruitRequest(ant=a, active=False, target=a + 1) for a in range(5)]
        result = outcome(requests)
        assert result.assignments == {a: a + 1 for a in range(5)}

    def test_all_active_high_success_rate(self):
        # With everyone recruiting, roughly a constant fraction succeeds.
        requests = [RecruitRequest(ant=a, active=True, target=1) for a in range(100)]
        result = outcome(requests, seed=5)
        assert len(result.successful_recruiters) >= 20


class TestMatchArrays:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            match_arrays(
                np.array([True]), np.array([1, 2]), np.random.default_rng(0)
            )

    def test_empty(self):
        results, recruiter_of, is_recruiter = match_arrays(
            np.zeros(0, dtype=bool), np.zeros(0, dtype=np.int64),
            np.random.default_rng(0),
        )
        assert len(results) == len(recruiter_of) == len(is_recruiter) == 0

    def test_no_active_means_no_pairs(self):
        results, recruiter_of, is_recruiter = match_arrays(
            np.zeros(6, dtype=bool),
            np.arange(6, dtype=np.int64),
            np.random.default_rng(0),
        )
        assert (recruiter_of == -1).all()
        assert not is_recruiter.any()
        assert (results == np.arange(6)).all()

    def test_deterministic_under_seed(self):
        active = np.array([True, False, True, False, True])
        targets = np.array([1, 2, 3, 4, 5], dtype=np.int64)
        first = match_arrays(active, targets, np.random.default_rng(42))
        second = match_arrays(active, targets, np.random.default_rng(42))
        for a, b in zip(first, second):
            assert (a == b).all()

    def test_results_do_not_alias_targets(self):
        active = np.array([True, True])
        targets = np.array([1, 2], dtype=np.int64)
        results, *_ = match_arrays(active, targets, np.random.default_rng(0))
        results[0] = 99
        assert targets[0] == 1


class TestSuccessProbability:
    def test_lemma_2_1_bound_everyone_active(self):
        """Lemma 2.1: success probability >= 1/16 whenever c(0,r) >= 2."""
        rng = np.random.default_rng(7)
        active = np.ones(32, dtype=bool)
        targets = np.arange(32, dtype=np.int64)
        successes = sum(
            int(match_arrays(active, targets, rng)[2][0]) for _ in range(800)
        )
        assert successes / 800 >= 1 / 16

    def test_lone_recruiter_among_passives_usually_succeeds(self):
        rng = np.random.default_rng(7)
        active = np.zeros(32, dtype=bool)
        active[0] = True
        targets = np.arange(32, dtype=np.int64)
        successes = sum(
            int(match_arrays(active, targets, rng)[2][0]) for _ in range(400)
        )
        # Only failure mode is drawing itself (p = 1/32).
        assert successes / 400 > 0.9
