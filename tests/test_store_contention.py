"""Cross-process contention on the SQLite store: busy is not corruption.

The regression class under test: ``sqlite3.OperationalError`` ("database
is locked" after the busy timeout) is a *subclass* of
``sqlite3.DatabaseError``, so a catch-all quarantine handler renames a
shard full of perfectly valid cells to ``*.corrupt-N`` just because
another process held a write transaction too long.  These tests induce
real lock contention — a writer process/connection holding a write
transaction on a shard while the store ``get``s and ``put``s — and
assert the shard survives untouched.

Also here: stable shard assignment across ``PYTHONHASHSEED`` (the
builtin ``hash`` fallback was salted per process, silently breaking
shared-store mode for non-hex keys) and the threaded ``dedupe_waits``
exactness counter.
"""

import sqlite3
import subprocess
import sys
import textwrap
import threading
import time

import pytest

from repro.api import ResultCache, SQLiteStore
from repro.api.cache import content_key
from repro.api.store import StoreDefect
from repro.service.dedupe import DedupingCache

KEY_A = "a" * 64
KEY_B = "b" * 64

#: Fast-failing store for contention tests: each attempt waits out the
#: lock for only a fraction of a second instead of the 10s default.
def quick_store(root, **kwargs) -> SQLiteStore:
    kwargs.setdefault("shards", 1)
    kwargs.setdefault("busy_timeout", 0.05)
    kwargs.setdefault("retries", 2)
    return SQLiteStore(root, **kwargs)


def hold_write_lock(path) -> sqlite3.Connection:
    """A raw connection holding a write transaction on ``path``."""
    # check_same_thread=False: some tests release the lock from a timer
    # thread, and the point is the file lock, not the connection owner.
    conn = sqlite3.connect(path, timeout=0.05, check_same_thread=False)
    conn.execute("BEGIN IMMEDIATE")
    return conn


class TestBusyIsNotCorruption:
    def test_get_under_lock_never_quarantines(self, tmp_path):
        store = quick_store(tmp_path)
        store.put(KEY_A, "healthy")
        shard = store.shard_path(KEY_A)
        holder = hold_write_lock(shard)
        try:
            # WAL readers never block on the writer: the read (and the
            # busy LRU touch it would ride on) must come back clean.
            assert store.get(KEY_A) == "healthy"
        finally:
            holder.rollback()
            holder.close()
        assert store.quarantined_shards == 0
        assert not list(tmp_path.glob("*.corrupt-*"))
        assert store.get(KEY_A) == "healthy"

    def test_touch_is_best_effort_under_contention(self, tmp_path):
        store = quick_store(tmp_path)
        store.put(KEY_A, "healthy")
        shard = store.shard_path(KEY_A)
        before = sqlite3.connect(shard)
        (seq_before,) = before.execute(
            "SELECT seq FROM cells WHERE key = ?", (KEY_A,)
        ).fetchone()
        before.close()
        holder = hold_write_lock(shard)
        try:
            assert store.get(KEY_A) == "healthy"
        finally:
            holder.rollback()
            holder.close()
        # The contended touch was skipped — counted, not raised — and
        # the LRU clock simply did not advance.
        assert store.touch_skips >= 1
        after = sqlite3.connect(shard)
        (seq_after,) = after.execute(
            "SELECT seq FROM cells WHERE key = ?", (KEY_A,)
        ).fetchone()
        after.close()
        assert seq_after == seq_before
        assert store.quarantined_shards == 0

    def test_put_under_lock_retries_without_losing_entries(self, tmp_path):
        store = quick_store(tmp_path)
        store.put(KEY_A, "first")
        shard = store.shard_path(KEY_A)
        holder = hold_write_lock(shard)
        released = threading.Event()

        def release_soon():
            # Long enough that the first put attempt hits the busy
            # timeout, short enough that a retry attempt succeeds.
            time.sleep(0.15)
            holder.rollback()
            holder.close()
            released.set()

        timer = threading.Thread(target=release_soon)
        timer.start()
        try:
            store.put(KEY_B, "second")  # retried through the lock window
        finally:
            timer.join()
        assert released.is_set()
        assert store.busy_retries >= 1
        assert store.quarantined_shards == 0
        assert not list(tmp_path.glob("*.corrupt-*"))
        # No lost entries: both the pre-lock and the contended write.
        assert store.get(KEY_A) == "first"
        assert store.get(KEY_B) == "second"

    def test_persistently_locked_put_raises_busy_not_quarantine(self, tmp_path):
        store = quick_store(tmp_path, retries=1)
        store.put(KEY_A, "healthy")
        holder = hold_write_lock(store.shard_path(KEY_A))
        try:
            with pytest.raises(sqlite3.OperationalError):
                store.put(KEY_B, "never lands")
        finally:
            holder.rollback()
            holder.close()
        assert store.busy_failures == 1
        assert store.quarantined_shards == 0
        assert not list(tmp_path.glob("*.corrupt-*"))
        # The shard stayed healthy: the write goes through post-release.
        store.put(KEY_B, "lands now")
        assert store.get(KEY_B) == "lands now"

    def test_contention_from_another_process(self, tmp_path):
        """A real second process holds the write transaction."""
        store = quick_store(tmp_path)
        store.put(KEY_A, "cross-process")
        shard = store.shard_path(KEY_A)
        script = textwrap.dedent(
            """
            import sqlite3, sys, time
            conn = sqlite3.connect(sys.argv[1])
            conn.execute("BEGIN IMMEDIATE")
            print("locked", flush=True)
            time.sleep(0.4)
            conn.rollback()
            conn.close()
            print("released", flush=True)
            """
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(shard)],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "locked"
            assert store.get(KEY_A) == "cross-process"
            # The put outlasts the 0.4s window through its retries.
            big = quick_store(tmp_path, busy_timeout=0.2, retries=4)
            big.put(KEY_B, "written through contention")
        finally:
            proc.wait(timeout=10)
        assert store.quarantined_shards == 0
        assert big.quarantined_shards == 0
        assert not list(tmp_path.glob("*.corrupt-*"))
        assert store.get(KEY_A) == "cross-process"
        assert store.get(KEY_B) == "written through contention"

    def test_real_corruption_still_quarantines(self, tmp_path):
        store = quick_store(tmp_path)
        store.put(KEY_A, "doomed")
        store.shard_path(KEY_A).write_bytes(b"not a sqlite database......")
        with pytest.raises(StoreDefect):
            store.get(KEY_A)
        assert store.quarantined_shards == 1
        assert list(tmp_path.glob("*.corrupt-*"))

    def test_busy_counters_in_stats(self, tmp_path):
        store = quick_store(tmp_path)
        stats = store.stats()
        assert stats["busy_retries"] == 0
        assert stats["busy_failures"] == 0
        assert stats["touch_skips"] == 0


class TestStableShardAssignment:
    def test_hex_keys_shard_by_prefix(self, tmp_path):
        store = SQLiteStore(tmp_path, shards=4)
        assert store._shard_index(KEY_A) == int(KEY_A[:8], 16) % 4

    @pytest.mark.parametrize("key", ["run:42/cell#7", "Ω-nest", "zz" * 32])
    def test_non_hex_keys_stable_across_hash_seeds(self, tmp_path, key):
        """The same key names the same shard in every process."""
        script = textwrap.dedent(
            """
            import sys
            from repro.api import SQLiteStore
            store = SQLiteStore(sys.argv[1], shards=7)
            print(store._shard_index(sys.argv[2]))
            """
        )
        indices = set()
        for seed in ("0", "1", "12345"):
            proc = subprocess.run(
                [sys.executable, "-c", script, str(tmp_path), key],
                capture_output=True,
                text=True,
                env={
                    "PYTHONHASHSEED": seed,
                    "PYTHONPATH": "src",
                    "PATH": "/usr/bin:/bin",
                },
                check=True,
            )
            indices.add(int(proc.stdout.strip()))
        assert len(indices) == 1
        # And the in-process store agrees with the subprocesses.
        assert SQLiteStore(tmp_path, shards=7)._shard_index(key) in indices

    def test_non_hex_round_trip_across_store_objects(self, tmp_path):
        quick_store(tmp_path, shards=5).put("plain-key", "shared")
        assert quick_store(tmp_path, shards=5).get("plain-key") == "shared"


class _RecordingEvent(threading.Event):
    """A claim event that records which threads entered ``wait()``.

    The ident is registered *before* blocking, and a ``DedupingCache``
    waiter only calls ``wait()`` after setting its ``waited`` flag — so
    once every waiter thread's ident appears here, each one is
    guaranteed to increment ``dedupe_waits`` exactly once, no matter how
    the subsequent wake-up and re-probe interleave.
    """

    def __init__(self) -> None:
        super().__init__()
        self.waiter_idents: set[int] = set()

    def wait(self, timeout=None):
        self.waiter_idents.add(threading.get_ident())
        return super().wait(timeout)


class TestDedupeWaitsExactness:
    def test_threaded_waits_counted_exactly(self, tmp_path):
        """N waiters on one in-flight cell → dedupe_waits == N, exactly."""
        cache = DedupingCache(
            ResultCache(tmp_path / "cache"), poll_seconds=0.05
        )
        payload = {"scenario": {"n": 8}, "trials": 1}
        from repro.sim.run import TrialStats

        stats = TrialStats(
            n_trials=1,
            n_converged=1,
            rounds=(3,),
            censored_at=100,
            chosen_nests={1: 1},
        )
        assert cache.load(payload) is None  # this thread owns the claim
        # Deterministic rendezvous: swap an instrumented event into the
        # claim slot so the store() below can wait for proof that every
        # waiter reached its claim wait, instead of guessing via sleep.
        event = _RecordingEvent()
        with cache._lock:
            cache._claims[content_key(payload)] = event
        n_waiters = 32
        barrier = threading.Barrier(n_waiters + 1)
        results = []

        def waiter():
            barrier.wait()
            results.append(cache.load(payload))

        threads = [threading.Thread(target=waiter) for _ in range(n_waiters)]
        for thread in threads:
            thread.start()
        barrier.wait()
        deadline = time.monotonic() + 30.0
        while len(event.waiter_idents) < n_waiters:
            assert time.monotonic() < deadline, (
                f"only {len(event.waiter_idents)}/{n_waiters} waiters "
                "reached the claim wait"
            )
            time.sleep(0.001)
        cache.store(payload, stats, {"n_trials": 1})
        for thread in threads:
            thread.join()
        assert len(results) == n_waiters
        assert all(entry is not None for entry in results)
        # The exactness claim: every waiter's increment survived the
        # concurrent rush (the unlocked += lost updates under load).
        assert cache.dedupe_waits == n_waiters
        assert cache.stats()["dedupe_waits"] == n_waiters
