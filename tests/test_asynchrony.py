"""Tests for the partial-asynchrony (delay) layer."""

import numpy as np
import pytest

from repro.core.colony import simple_factory
from repro.core.simple import SimpleAnt
from repro.exceptions import ConfigurationError
from repro.model.actions import Go, Recruit, Search, SearchResult
from repro.sim.asynchrony import DelayedAnt, DelayModel, with_delays
from repro.sim.run import build_colony, run_trial


class CountingAnt(SimpleAnt):
    """SimpleAnt that counts how many results its FSM actually consumed."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.consumed = 0

    def observe(self, result):
        self.consumed += 1
        super().observe(result)


def make(delay, seed=0):
    inner = CountingAnt(0, 16, np.random.default_rng(seed))
    wrapper = DelayedAnt(inner, DelayModel(delay), np.random.default_rng(seed + 1))
    return inner, wrapper


class AlwaysStall:
    """Deterministic stand-in for the delay stream: always stalls."""

    @staticmethod
    def random():
        return 0.0


class TestDelayModel:
    def test_null(self):
        assert DelayModel(0.0).is_null
        assert not DelayModel(0.2).is_null

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DelayModel(-0.1)
        with pytest.raises(ConfigurationError):
            DelayModel(1.0)


class TestDelayedAnt:
    def test_first_action_never_delayed(self):
        _, wrapper = make(delay=0.99)
        assert isinstance(wrapper.decide(), Search)

    def test_stalls_hold_position(self):
        from repro.model.actions import GoResult

        inner, wrapper = make(delay=0.99, seed=1)
        wrapper.decide()
        wrapper.observe(SearchResult(nest=2, quality=1.0, count=4))
        wrapper._delay_rng = AlwaysStall()
        for _ in range(3):
            action = wrapper.decide()
            assert action == Go(2)  # holding at the current nest
            wrapper.observe(GoResult(nest=2, count=4, quality=1.0))
        # The inner FSM consumed only the search result.
        assert inner.consumed == 1

    def test_filler_at_home_is_passive_recruit(self):
        from repro.model.actions import RecruitResult

        inner, wrapper = make(delay=0.0, seed=2)
        wrapper.decide()
        wrapper.observe(SearchResult(nest=3, quality=1.0, count=4))
        action = wrapper.decide()  # recruit round executes normally
        assert isinstance(action, Recruit)
        wrapper.observe(RecruitResult(nest=3, home_count=16))
        # Now force a stall while at home.
        wrapper.model = DelayModel(0.99)
        wrapper._delay_rng = AlwaysStall()
        stall = wrapper.decide()
        assert stall == Recruit(False, 3)

    def test_deferred_action_eventually_executes(self):
        from repro.model.actions import GoResult

        inner, wrapper = make(delay=0.0, seed=4)
        wrapper.decide()
        wrapper.observe(SearchResult(nest=1, quality=1.0, count=4))
        wrapper.model = DelayModel(0.99)
        wrapper._delay_rng = AlwaysStall()
        intended_seen = inner.consumed
        # Stall a few rounds, then lift the delay: the postponed action runs.
        for _ in range(3):
            assert wrapper.decide() == Go(1)
            wrapper.observe(GoResult(nest=1, count=4, quality=1.0))
        assert inner.consumed == intended_seen
        wrapper.model = DelayModel(0.0)
        action = wrapper.decide()
        assert isinstance(action, Recruit)  # the deferred recruit round

    def test_delegation(self):
        inner, wrapper = make(delay=0.5)
        wrapper.decide()
        wrapper.observe(SearchResult(nest=2, quality=1.0, count=4))
        assert wrapper.committed_nest == inner.committed_nest
        assert wrapper.state_label() == inner.state_label()


class TestWithDelays:
    def test_null_model_identity(self, rng):
        colony = build_colony(simple_factory(), 4, rng)
        assert with_delays(colony, DelayModel(0.0), rng) == colony

    def test_wrapping(self, rng):
        colony = build_colony(simple_factory(), 4, rng)
        wrapped = with_delays(colony, DelayModel(0.3), rng)
        assert all(isinstance(a, DelayedAnt) for a in wrapped)

    def test_delayed_colony_converges(self, all_good_4):
        result = run_trial(
            simple_factory(),
            64,
            all_good_4,
            seed=6,
            max_rounds=8000,
            delay_model=DelayModel(0.25),
        )
        assert result.converged
