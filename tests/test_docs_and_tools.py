"""Documentation artifacts and the EXPERIMENTS.md build tool."""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).parent.parent


class TestDocumentationArtifacts:
    def test_required_docs_exist(self):
        for name in ("README.md", "DESIGN.md", "docs/MODEL.md"):
            assert (ROOT / name).is_file(), name

    def test_design_md_covers_all_experiments(self):
        text = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
        for eid in ("E1", "E4b", "E7", "E14"):
            assert f"| {eid} " in text, eid

    def test_readme_quickstart_is_current_api(self):
        text = (ROOT / "README.md").read_text(encoding="utf-8")
        assert "run_trial(simple_factory()" in text
        assert "NestConfig.binary" in text

    def test_template_markers_match_registry(self):
        from repro.analysis.experiments import EXPERIMENTS

        template = (ROOT / "tools" / "EXPERIMENTS.template.md").read_text(
            encoding="utf-8"
        )
        # Every registered experiment id appears in the template (E3a/E3b
        # share the E3 table).
        base_ids = {eid.rstrip("ab") if eid != "E4b" else "E4b" for eid in EXPERIMENTS}
        for eid in base_ids:
            assert f"TABLE:{eid}" in template or eid in ("E3a", "E3b"), eid


class TestBuildTool:
    def test_build_inlines_available_tables(self, tmp_path):
        process = subprocess.run(
            [sys.executable, str(ROOT / "tools" / "build_experiments_md.py")],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert process.returncode == 0, process.stderr
        output = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        assert "paper vs. measured" in output
        # At least some tables must be inlined as fenced blocks.
        assert output.count("```text") >= 5
