"""Tests for the non-binary quality extension."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.extensions.nonbinary import QualityWeightedAnt, quality_weighted_factory
from repro.model.actions import GoResult, RecruitResult, SearchResult
from repro.model.nests import NestConfig
from repro.core.states import SimpleState
from repro.sim.convergence import UnanimousCommitment
from repro.sim.run import run_trial


def make_ant(seed=0, weight=1.0, sharpness=1.0, n=16):
    return QualityWeightedAnt(
        0,
        n,
        np.random.default_rng(seed),
        quality_weight=weight,
        acceptance_sharpness=sharpness,
    )


class TestAcceptance:
    def test_acceptance_probability_tracks_quality(self):
        accepted = 0
        for seed in range(800):
            ant = make_ant(seed=seed)
            ant.decide()
            ant.observe(SearchResult(nest=1, quality=0.3, count=4))
            accepted += ant.state is SimpleState.ACTIVE
        assert 0.24 < accepted / 800 < 0.36

    def test_quality_one_always_accepted(self):
        ant = make_ant()
        ant.decide()
        ant.observe(SearchResult(nest=1, quality=1.0, count=4))
        assert ant.state is SimpleState.ACTIVE

    def test_quality_zero_never_accepted(self):
        ant = make_ant()
        ant.decide()
        ant.observe(SearchResult(nest=1, quality=0.0, count=4))
        assert ant.state is SimpleState.PASSIVE


class TestRecruitment:
    def test_quality_weighted_rate(self):
        # count/n = 1/2, q = 0.5, weight 1 -> p = 1/4.
        draws = []
        for seed in range(800):
            ant = make_ant(seed=seed)
            ant.decide()
            ant.observe(SearchResult(nest=1, quality=1.0, count=8))
            ant.quality = 0.5
            draws.append(ant.decide().active)
        assert 0.19 < np.mean(draws) < 0.31

    def test_weight_zero_ignores_quality(self):
        draws = []
        for seed in range(800):
            ant = make_ant(seed=seed, weight=0.0)
            ant.decide()
            ant.observe(SearchResult(nest=1, quality=1.0, count=8))
            ant.quality = 0.2
            draws.append(ant.decide().active)
        assert 0.42 < np.mean(draws) < 0.58

    def test_reassessment_on_visit(self):
        ant = make_ant()
        ant.decide()
        ant.observe(SearchResult(nest=1, quality=0.9, count=4))
        ant.decide()
        ant.observe(RecruitResult(nest=2, home_count=16))  # recruited away
        ant.decide()
        ant.observe(GoResult(nest=2, count=5, quality=0.4))
        assert ant.quality == pytest.approx(0.4)
        assert ant.count == 5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_ant(weight=-1.0)
        with pytest.raises(ConfigurationError):
            make_ant(sharpness=0.0)


class TestEndToEnd:
    def test_big_gap_picks_best(self):
        nests = NestConfig.graded([0.9, 0.2])
        wins = 0
        for seed in range(8):
            result = run_trial(
                quality_weighted_factory(quality_weight=2.0),
                96,
                nests,
                seed=seed,
                max_rounds=20_000,
                criterion_factory=UnanimousCommitment,
            )
            assert result.converged
            wins += int(result.chosen_nest == 1)
        assert wins >= 7

    def test_label(self):
        ant = make_ant()
        assert ant.state_label().startswith("graded-")
