"""Tests for the result-table renderer."""

import numpy as np
import pytest

from repro.analysis.tables import Table
from repro.exceptions import ConfigurationError


class TestConstruction:
    def test_needs_columns(self):
        with pytest.raises(ConfigurationError):
            Table("t", [])

    def test_row_arity_checked(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ConfigurationError):
            table.add_row(1)

    def test_add_rows(self):
        table = Table("t", ["a"])
        table.add_rows([[1], [2], [3]])
        assert table.n_rows == 3


class TestRendering:
    def test_render_contains_everything(self):
        table = Table("My results", ["name", "value"])
        table.add_row("alpha", 1.5)
        table.add_row("beta", 20000.0)
        table.add_note("a footnote")
        text = table.render()
        assert "My results" in text
        assert "alpha" in text
        assert "1.5" in text
        assert "20,000" in text
        assert "* a footnote" in text

    def test_columns_aligned(self):
        table = Table("t", ["col", "x"])
        table.add_row("aaa", 1)
        table.add_row("b", 22)
        lines = table.render().splitlines()
        data_lines = lines[2:]  # header onwards
        assert len({len(line) for line in data_lines[:3]}) == 1

    def test_float_formatting(self):
        table = Table("t", ["v"])
        table.add_row(0.123456)
        assert "0.1235" in table.render()

    def test_nan_renders_as_dash(self):
        table = Table("t", ["v"])
        table.add_row(float("nan"))
        assert "-" in table.render().splitlines()[-1]

    def test_bools_render_yes_no(self):
        table = Table("t", ["v"])
        table.add_row(True)
        table.add_row(np.bool_(False))
        text = table.render()
        assert "yes" in text
        assert "no" in text

    def test_numpy_integers(self):
        table = Table("t", ["v"])
        table.add_row(np.int64(7))
        assert "7" in table.render()

    def test_str_is_render(self):
        table = Table("t", ["v"])
        table.add_row(1)
        assert str(table) == table.render()


class TestMarkdown:
    def test_markdown_shape(self):
        table = Table("Results", ["a", "b"])
        table.add_row(1, 2)
        table.add_note("note")
        md = table.to_markdown()
        assert md.startswith("**Results**")
        assert "| a | b |" in md
        assert "| 1 | 2 |" in md
        assert "- note" in md
