"""Tests for the uniform-recruitment ablation."""

import numpy as np
import pytest

from repro.baselines.uniform import UniformRecruitAnt, uniform_factory
from repro.exceptions import ConfigurationError
from repro.fast.simple_fast import simulate_simple
from repro.model.actions import SearchResult
from repro.model.nests import NestConfig
from repro.sim.run import run_trial, run_trials


class TestAnt:
    def test_constant_recruit_rate(self):
        draws = []
        for seed in range(400):
            ant = UniformRecruitAnt(
                0, 100, np.random.default_rng(seed), recruit_probability=0.3
            )
            ant.decide()
            # Tiny nest: Algorithm 3 would recruit w.p. 1/100; the ablation
            # ignores the population entirely.
            ant.observe(SearchResult(nest=1, quality=1.0, count=1))
            draws.append(ant.decide().active)
        assert 0.22 < np.mean(draws) < 0.38

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UniformRecruitAnt(
                0, 8, np.random.default_rng(0), recruit_probability=1.5
            )

    def test_label(self):
        ant = UniformRecruitAnt(0, 8, np.random.default_rng(0))
        assert ant.state_label().startswith("uniform-")


class TestDynamics:
    def test_converges_eventually_small_world(self):
        nests = NestConfig.all_good(2)
        result = run_trial(
            uniform_factory(), 32, nests, seed=1, max_rounds=20_000
        )
        assert result.converged

    def test_positive_feedback_is_load_bearing(self):
        """The ablation's whole point: removing proportional recruitment
        slows convergence by an order of magnitude."""
        nests = NestConfig.all_good(4)
        ablation = run_trials(
            uniform_factory(), 64, nests, n_trials=5, base_seed=3,
            max_rounds=20_000,
        )
        simple_rounds = [
            simulate_simple(64, nests, seed=s, max_rounds=20_000).converged_round
            for s in range(5)
        ]
        assert ablation.median_rounds > 3 * np.median(simple_rounds)
