"""Tests for the vectorized Algorithm 2 simulator."""

import numpy as np
import pytest

from repro.core.colony import optimal_factory
from repro.exceptions import ConfigurationError
from repro.fast.optimal_fast import simulate_optimal
from repro.model.nests import NestConfig
from repro.sim.convergence import CommittedToSingleGoodNest
from repro.sim.run import run_trials


class TestBasics:
    def test_converges(self, all_good_4):
        result = simulate_optimal(128, all_good_4, seed=0, max_rounds=8000)
        assert result.converged
        assert result.chosen_nest in (1, 2, 3, 4)

    def test_reproducible(self, all_good_4):
        a = simulate_optimal(64, all_good_4, seed=9, max_rounds=8000)
        b = simulate_optimal(64, all_good_4, seed=9, max_rounds=8000)
        assert a.converged_round == b.converged_round
        assert a.chosen_nest == b.chosen_nest

    def test_avoids_bad_nests(self, mixed_nests):
        for seed in range(3):
            result = simulate_optimal(128, mixed_nests, seed=seed, max_rounds=8000)
            assert result.converged
            assert result.chosen_nest in (1, 3)

    def test_single_ant_settles_in_one_block(self):
        nests = NestConfig.all_good(1)
        result = simulate_optimal(1, nests, seed=0, max_rounds=100)
        assert result.converged
        assert result.converged_round == 5

    def test_round_cap(self, all_good_4):
        result = simulate_optimal(64, all_good_4, seed=0, max_rounds=4)
        assert not result.converged

    def test_invalid_n(self, all_good_4):
        with pytest.raises(ConfigurationError):
            simulate_optimal(0, all_good_4)


class TestHistory:
    def test_row_sums_follow_locations(self, all_good_4):
        result = simulate_optimal(
            64, all_good_4, seed=1, max_rounds=8000, record_history=True
        )
        history = result.population_history
        # Row 0 is the search round: everyone at a candidate nest.
        assert history[0, 0] == 0
        assert history[0].sum() == 64
        # Every row distributes exactly n ants.
        assert (history.sum(axis=1) == 64).all()

    def test_b2_rows_hold_only_active_cohorts(self, mixed_nests):
        result = simulate_optimal(
            128, mixed_nests, seed=2, max_rounds=8000, record_history=True
        )
        history = result.population_history
        # Sub-round B2 rows are indices 2, 6, 10, ...; passive ants (bad
        # nests 2 and 4) are at home then, so bad nests must be empty.
        for row in range(2, len(history), 4):
            assert history[row][2] == 0
            assert history[row][4] == 0


class TestStrictMode:
    def test_strict_mode_is_worse(self, all_good_4):
        clarified = [
            simulate_optimal(128, all_good_4, seed=s, max_rounds=2000)
            for s in range(8)
        ]
        strict = [
            simulate_optimal(
                128, all_good_4, seed=s, max_rounds=2000, strict_pseudocode=True
            )
            for s in range(8)
        ]
        assert sum(r.converged for r in clarified) > sum(r.converged for r in strict)


class TestAgentEquivalence:
    def test_distributional_match(self, all_good_4):
        agent = run_trials(
            optimal_factory(),
            96,
            all_good_4,
            n_trials=15,
            base_seed=7,
            max_rounds=8000,
            criterion_factory=lambda: CommittedToSingleGoodNest(require_settled=True),
        )
        fast = [
            simulate_optimal(96, all_good_4, seed=2000 + s, max_rounds=8000)
            for s in range(15)
        ]
        fast_median = float(np.median([r.converged_round for r in fast]))
        assert agent.success_rate == 1.0
        assert all(r.converged for r in fast)
        assert abs(fast_median - agent.median_rounds) <= 0.35 * max(
            fast_median, agent.median_rounds
        )
