"""Tests for event tracing."""

import pytest

from repro.core.colony import simple_factory
from repro.model.environment import Environment
from repro.model.nests import NestConfig
from repro.sim.engine import Simulation
from repro.sim.rng import RandomSource
from repro.sim.run import build_colony
from repro.sim.trace import (
    AttemptEvent,
    EventTrace,
    RecruitmentEvent,
    SearchEvent,
    VisitEvent,
)


@pytest.fixture
def traced_run(all_good_4):
    source = RandomSource(8)
    colony = build_colony(simple_factory(), 24, source.colony)
    trace = EventTrace()
    sim = Simulation(
        colony,
        Environment(24, all_good_4),
        source,
        max_rounds=30,
        hooks=[trace],
    )
    result = sim.run()
    return trace, result


class TestEventCollection:
    def test_round_one_searches(self, traced_run):
        trace, _ = traced_run
        searches = trace.events(SearchEvent)
        assert len(searches) == 24
        assert all(event.round == 1 for event in searches)
        assert all(1 <= event.nest <= 4 for event in searches)

    def test_visits_recorded(self, traced_run):
        trace, _ = traced_run
        visits = trace.events(VisitEvent)
        assert visits  # assessment rounds produce go() events
        assert all(event.round >= 3 for event in visits)

    def test_attempts_match_successes(self, traced_run):
        trace, _ = traced_run
        successes = {
            (event.round, event.ant)
            for event in trace.events(AttemptEvent)
            if event.succeeded
        }
        recruiters = {
            (event.round, event.recruiter)
            for event in trace.events(RecruitmentEvent)
            if event.recruiter != event.recruitee
        }
        # Every non-self pairing has a matching successful attempt record.
        assert recruiters <= {
            (event.round, event.ant) for event in trace.events(AttemptEvent)
        }
        assert successes >= recruiters

    def test_len_and_iter(self, traced_run):
        trace, _ = traced_run
        assert len(trace) == len(list(trace))


class TestFiltering:
    def test_filter_restricts_to_ants_of_interest(self, all_good_4):
        source = RandomSource(9)
        colony = build_colony(simple_factory(), 16, source.colony)
        trace = EventTrace(ants_of_interest=[0, 1])
        sim = Simulation(
            colony, Environment(16, all_good_4), source, max_rounds=20, hooks=[trace]
        )
        sim.run()
        for event in trace.events(SearchEvent):
            assert event.ant in (0, 1)
        for event in trace.events(RecruitmentEvent):
            assert event.recruiter in (0, 1) or event.recruitee in (0, 1)


class TestInformingChain:
    def test_chain_terminates_and_is_causal(self, traced_run):
        trace, _ = traced_run
        for ant_id in range(24):
            chain = trace.informing_chain(ant_id)
            rounds = [event.round for event in chain]
            assert rounds == sorted(rounds)
            for event in chain[1:]:
                assert isinstance(event, RecruitmentEvent)

    def test_never_recruited_ant_has_empty_chain(self, traced_run):
        trace, _ = traced_run
        recruited_ever = {
            event.recruitee for event in trace.events(RecruitmentEvent)
        }
        unrecruited = set(range(24)) - recruited_ever
        for ant_id in unrecruited:
            assert trace.informing_chain(ant_id) == []
