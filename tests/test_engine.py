"""Tests for the synchronous round engine."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ProtocolError
from repro.model.actions import (
    Go,
    GoResult,
    Recruit,
    RecruitResult,
    Search,
    SearchResult,
)
from repro.model.ant import Ant
from repro.model.environment import Environment
from repro.model.nests import NestConfig
from repro.sim.engine import Simulation
from repro.sim.rng import RandomSource


class ScriptedAnt(Ant):
    """Plays back a fixed action list and records everything it observes."""

    def __init__(self, ant_id, n, rng, script):
        super().__init__(ant_id, n, rng)
        self.script = list(script)
        self.observed = []
        self._step = 0

    def decide(self):
        action = self.script[self._step]
        self._step += 1
        return action

    def observe(self, result):
        self.observed.append(result)

    @property
    def committed_nest(self):
        return None


def make_sim(scripts, nests=None, seed=0, **kwargs):
    nests = nests or NestConfig.all_good(4)
    n = len(scripts)
    source = RandomSource(seed)
    ants = [
        ScriptedAnt(i, n, source.colony, script) for i, script in enumerate(scripts)
    ]
    sim = Simulation(ants, Environment(n, nests), source, **kwargs)
    return sim, ants


class TestRoundMechanics:
    def test_search_round_places_everyone_at_candidates(self):
        sim, ants = make_sim([[Search()]] * 6)
        record = sim.step()
        assert record.snapshot.counts[0] == 0
        assert record.snapshot.counts[1:].sum() == 6
        for ant in ants:
            result = ant.observed[0]
            assert isinstance(result, SearchResult)
            assert 1 <= result.nest <= 4

    def test_search_result_reports_end_of_round_count(self):
        sim, ants = make_sim([[Search()]] * 12)
        record = sim.step()
        for ant_id, ant in enumerate(ants):
            result = ant.observed[0]
            assert result.count == record.snapshot.counts[result.nest]

    def test_search_result_reports_quality(self, mixed_nests):
        sim, ants = make_sim([[Search()]] * 8, nests=mixed_nests)
        sim.step()
        for ant in ants:
            result = ant.observed[0]
            expected = 1.0 if result.nest in (1, 3) else 0.0
            assert result.quality == expected

    def test_go_revisits_and_counts(self):
        scripts = [[Search(), None]] * 3
        sim, ants = make_sim(scripts)
        sim.step()
        for ant in ants:
            ant.script[1] = Go(ant.observed[0].nest)
        record = sim.step()
        for ant in ants:
            result = ant.observed[1]
            assert isinstance(result, GoResult)
            assert result.count == record.snapshot.counts[result.nest]
            assert result.quality == 1.0

    def test_recruit_places_participants_home(self):
        scripts = [[Search(), None]] * 4
        sim, ants = make_sim(scripts)
        sim.step()
        for ant in ants:
            ant.script[1] = Recruit(False, ant.observed[0].nest)
        record = sim.step()
        assert record.snapshot.counts[0] == 4
        for ant in ants:
            result = ant.observed[1]
            assert isinstance(result, RecruitResult)
            assert result.home_count == 4

    def test_active_recruitment_transfers_nest_id(self):
        # One recruiter among passives: recruited ants learn its nest.
        scripts = [[Search(), None]] * 5
        sim, ants = make_sim(scripts, seed=3)
        sim.step()
        recruiter_nest = ants[0].observed[0].nest
        ants[0].script[1] = Recruit(True, recruiter_nest)
        for ant in ants[1:]:
            ant.script[1] = Recruit(False, ant.observed[0].nest)
        record = sim.step()
        recruited = record.match.recruited_by
        assert len(recruited) == 1
        (recruitee,) = [a for a in recruited if recruited[a] == 0]
        assert ants[recruitee].observed[1].nest == recruiter_nest

    def test_recruited_ant_learns_location(self):
        # After being recruited, go() to the recruiter's nest is legal.
        scripts = [[Search(), None, None]] * 5
        sim, ants = make_sim(scripts, seed=3)
        sim.step()
        ants[0].script[1] = Recruit(True, ants[0].observed[0].nest)
        for ant in ants[1:]:
            ant.script[1] = Recruit(False, ant.observed[0].nest)
        record = sim.step()
        (recruitee,) = record.match.recruited_by
        target = ants[recruitee].observed[1].nest
        for ant_id, ant in enumerate(ants):
            ant.script[2] = (
                Go(target) if ant_id == recruitee else Go(ant.observed[0].nest)
            )
        sim.step()  # must not raise ProtocolError


class TestValidation:
    def test_go_unknown_nest_raises(self):
        sim, _ = make_sim([[Go(1)]])
        with pytest.raises(ProtocolError):
            sim.step()

    def test_recruit_unknown_nest_raises(self):
        sim, _ = make_sim([[Recruit(True, 2)]])
        with pytest.raises(ProtocolError):
            sim.step()

    def test_non_action_raises(self):
        sim, _ = make_sim([["hop"]])
        with pytest.raises(TypeError):
            sim.step()

    def test_colony_size_mismatch(self, mixed_nests):
        source = RandomSource(0)
        ants = [ScriptedAnt(0, 2, source.colony, [Search()])]
        with pytest.raises(ConfigurationError):
            Simulation(ants, Environment(2, mixed_nests), source)

    def test_ant_order_enforced(self, mixed_nests):
        source = RandomSource(0)
        ants = [
            ScriptedAnt(1, 2, source.colony, [Search()]),
            ScriptedAnt(0, 2, source.colony, [Search()]),
        ]
        with pytest.raises(ConfigurationError, match="id order"):
            Simulation(ants, Environment(2, mixed_nests), source)

    def test_max_rounds_must_be_positive(self, mixed_nests):
        source = RandomSource(0)
        ants = [ScriptedAnt(0, 1, source.colony, [Search()])]
        with pytest.raises(ConfigurationError):
            Simulation(ants, Environment(1, mixed_nests), source, max_rounds=0)


class TestHooksAndHistory:
    def test_hooks_called_each_round(self):
        calls = []
        sim, _ = make_sim([[Search(), Search()]] * 2, hooks=[calls.append])
        sim.step()
        sim.step()
        assert [record.round for record in calls] == [1, 2]

    def test_history_kept_when_requested(self):
        sim, _ = make_sim(
            [[Search(), Search()]] * 2, keep_history=True, max_rounds=2
        )
        result = sim.run()
        assert len(result.history) == 2
        assert result.history[0].round == 1

    def test_run_respects_max_rounds(self):
        sim, _ = make_sim([[Search()] * 5] * 2, max_rounds=5)
        result = sim.run()
        assert result.rounds_executed == 5
        assert not result.converged
        assert result.converged_round is None

    def test_round_record_counts_searchers_and_recruiters(self):
        scripts = [[Search(), None]] * 3
        sim, ants = make_sim(scripts)
        record = sim.step()
        assert record.n_searching == 3
        assert record.n_recruiting == 0
        for ant in ants:
            ant.script[1] = Recruit(True, ant.observed[0].nest)
        record = sim.step()
        assert record.n_recruiting == 3
        assert record.n_at_home == 3
