"""Tests for the exception hierarchy."""

import pytest

from repro.exceptions import (
    ConfigurationError,
    NotConvergedError,
    ProtocolError,
    ReproError,
    SimulationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [ConfigurationError, NotConvergedError, ProtocolError, SimulationError],
    )
    def test_all_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_configuration_error_is_value_error(self):
        # Callers using plain ValueError handling still catch config issues.
        assert issubclass(ConfigurationError, ValueError)


class TestProtocolError:
    def test_message_includes_ant_id(self):
        error = ProtocolError(17, "go(3): nest unknown")
        assert "ant 17" in str(error)
        assert "go(3)" in str(error)

    def test_ant_id_attribute(self):
        assert ProtocolError(4, "x").ant_id == 4

    def test_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            raise ProtocolError(0, "violation")
