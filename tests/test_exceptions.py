"""Tests for the exception hierarchy."""

import pytest

from repro.exceptions import (
    CellQuarantined,
    ChunkTimeout,
    ConfigurationError,
    ExecutionError,
    NotConvergedError,
    ProtocolError,
    ReproError,
    SimulationError,
    WorkerCrash,
    is_retryable,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            ConfigurationError,
            NotConvergedError,
            ProtocolError,
            SimulationError,
            ExecutionError,
            WorkerCrash,
            ChunkTimeout,
            CellQuarantined,
        ],
    )
    def test_all_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_configuration_error_is_value_error(self):
        # Callers using plain ValueError handling still catch config issues.
        assert issubclass(ConfigurationError, ValueError)


class TestExecutionTaxonomy:
    def test_substrate_faults_are_retryable(self):
        assert is_retryable(WorkerCrash("worker died"))
        assert is_retryable(ChunkTimeout("deadline", timeout=1.5))

    def test_work_faults_are_not_retryable(self):
        assert not is_retryable(ExecutionError("base"))
        assert not is_retryable(CellQuarantined("cell 3 gave up"))

    def test_non_execution_errors_are_never_retryable(self):
        assert not is_retryable(ValueError("kernel bug"))
        assert not is_retryable(SimulationError("inconsistent state"))
        assert not is_retryable(KeyboardInterrupt())

    def test_chunk_timeout_carries_deadline(self):
        assert ChunkTimeout("slow", timeout=2.5).timeout == 2.5

    def test_cell_quarantined_carries_cell_and_cause(self):
        cause = WorkerCrash("boom")
        error = CellQuarantined("cell 7 failed", cell_index=7, cause=cause)
        assert error.cell_index == 7
        assert error.cause is cause

    def test_execution_errors_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            raise WorkerCrash("gone")


class TestProtocolError:
    def test_message_includes_ant_id(self):
        error = ProtocolError(17, "go(3): nest unknown")
        assert "ant 17" in str(error)
        assert "go(3)" in str(error)

    def test_ant_id_attribute(self):
        assert ProtocolError(4, "x").ant_id == 4

    def test_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            raise ProtocolError(0, "violation")
