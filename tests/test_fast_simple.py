"""Tests for the vectorized Algorithm 3 simulator."""

import numpy as np
import pytest

from repro.core.colony import simple_factory
from repro.exceptions import ConfigurationError
from repro.fast.simple_fast import simulate_simple
from repro.model.nests import NestConfig
from repro.sim.noise import CountNoise
from repro.sim.run import run_trials


class TestBasics:
    def test_converges(self, all_good_4):
        result = simulate_simple(128, all_good_4, seed=0, max_rounds=4000)
        assert result.converged
        assert result.chosen_nest in (1, 2, 3, 4)
        assert result.converged_round % 2 == 0  # unanimity lands on recruit rounds

    def test_reproducible(self, all_good_4):
        a = simulate_simple(64, all_good_4, seed=9, max_rounds=4000)
        b = simulate_simple(64, all_good_4, seed=9, max_rounds=4000)
        assert a.converged_round == b.converged_round
        assert a.chosen_nest == b.chosen_nest

    def test_round_cap(self, all_good_4):
        result = simulate_simple(64, all_good_4, seed=0, max_rounds=4)
        assert not result.converged
        assert result.rounds_executed <= 4

    def test_avoids_bad_nests(self, mixed_nests):
        for seed in range(3):
            result = simulate_simple(128, mixed_nests, seed=seed, max_rounds=4000)
            assert result.converged
            assert result.chosen_nest in (1, 3)

    def test_final_counts_sum_to_n(self, all_good_4):
        result = simulate_simple(64, all_good_4, seed=1, max_rounds=4000)
        assert result.final_counts.sum() == 64

    def test_invalid_n(self, all_good_4):
        with pytest.raises(ConfigurationError):
            simulate_simple(0, all_good_4)


class TestHistory:
    def test_history_shape_and_sums(self, all_good_4):
        result = simulate_simple(
            64, all_good_4, seed=2, max_rounds=4000, record_history=True
        )
        history = result.population_history
        assert history.shape[0] == result.rounds_executed
        assert history.shape[1] == 5
        assert (history.sum(axis=1) == 64).all()

    def test_recruit_rounds_everyone_home(self, all_good_4):
        result = simulate_simple(
            64, all_good_4, seed=2, max_rounds=4000, record_history=True
        )
        history = result.population_history
        assert (history[1::2, 0] == 64).all()  # even rounds: all at home
        assert (history[0::2, 0] == 0).all()  # odd rounds: all at nests

    def test_no_history_by_default(self, all_good_4):
        result = simulate_simple(32, all_good_4, seed=0, max_rounds=400)
        assert result.population_history is None


class TestVariants:
    def test_rate_multiplier_speeds_up_large_k(self):
        nests = NestConfig.all_good(16)
        plain = [
            simulate_simple(512, nests, seed=s, max_rounds=20_000).converged_round
            for s in range(6)
        ]
        boosted = [
            simulate_simple(
                512,
                nests,
                seed=s,
                max_rounds=20_000,
                rate_multiplier=lambda phase: max(1.0, 16 * 0.5 ** ((phase - 1) / 4)),
            ).converged_round
            for s in range(6)
        ]
        assert np.median(boosted) < np.median(plain)

    def test_noise_preserves_correctness(self, mixed_nests):
        result = simulate_simple(
            128,
            mixed_nests,
            seed=3,
            max_rounds=8000,
            noise=CountNoise(relative_sigma=0.5),
        )
        assert result.converged
        assert result.chosen_nest in (1, 3)

    def test_quality_weighted_prefers_better_nest(self):
        nests = NestConfig.graded([0.9, 0.1], good_threshold=0.5)
        wins = 0
        for seed in range(10):
            result = simulate_simple(
                128, nests, seed=seed, max_rounds=8000, quality_weighted=True
            )
            if result.converged and result.chosen_nest == 1:
                wins += 1
        assert wins >= 8


class TestAgentEquivalence:
    """The two engines implement the same process: their convergence-round
    distributions must agree (medians within a generous tolerance)."""

    def test_distributional_match(self, all_good_4):
        agent = run_trials(
            simple_factory(), 96, all_good_4, n_trials=15, base_seed=7,
            max_rounds=4000,
        )
        fast = [
            simulate_simple(96, all_good_4, seed=1000 + s, max_rounds=4000)
            for s in range(15)
        ]
        fast_median = float(np.median([r.converged_round for r in fast]))
        assert agent.success_rate == 1.0
        assert all(r.converged for r in fast)
        assert abs(fast_median - agent.median_rounds) <= 0.35 * max(
            fast_median, agent.median_rounds
        )
