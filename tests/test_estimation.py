"""Tests for the low-level sensing subroutines (Section 6)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.extensions.estimation import (
    BuffonNeedleEstimator,
    EncounterNoise,
    EncounterRateEstimator,
)


class TestEncounterRateEstimator:
    def test_unbiased(self, rng):
        estimator = EncounterRateEstimator(trials=64, capacity=512)
        samples = [estimator.sample(100, rng) for _ in range(3000)]
        assert abs(np.mean(samples) - 100) < 5.0

    def test_more_trials_tighter_estimates(self, rng):
        coarse = EncounterRateEstimator(trials=8, capacity=512)
        fine = EncounterRateEstimator(trials=512, capacity=512)
        coarse_std = np.std([coarse.sample(100, rng) for _ in range(1500)])
        fine_std = np.std([fine.sample(100, rng) for _ in range(1500)])
        assert fine_std < coarse_std / 2

    def test_standard_error_formula(self, rng):
        estimator = EncounterRateEstimator(trials=64, capacity=512)
        predicted = estimator.standard_error(100)
        observed = np.std([estimator.sample(100, rng) for _ in range(4000)])
        assert abs(observed - predicted) < 0.2 * predicted

    def test_zero_count(self, rng):
        estimator = EncounterRateEstimator(trials=16, capacity=64)
        assert estimator.sample(0, rng) == 0

    def test_saturated_count(self, rng):
        estimator = EncounterRateEstimator(trials=16, capacity=64)
        assert estimator.sample(64, rng) == 64

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            EncounterRateEstimator(trials=0)
        with pytest.raises(ConfigurationError):
            EncounterRateEstimator(capacity=0)
        estimator = EncounterRateEstimator()
        with pytest.raises(ConfigurationError):
            estimator.sample(-1, rng)


class TestBuffonNeedleEstimator:
    def test_expected_crossings_inverse_in_area(self):
        estimator = BuffonNeedleEstimator(40.0, 40.0)
        small = estimator.expected_crossings(50.0)
        large = estimator.expected_crossings(200.0)
        assert small == pytest.approx(4 * large)

    def test_estimate_inverts_expectation(self):
        estimator = BuffonNeedleEstimator(40.0, 40.0)
        area = 100.0
        crossings = estimator.expected_crossings(area)
        assert estimator.estimate_area(round(crossings)) == pytest.approx(
            area, rel=0.05
        )

    def test_sampling_is_roughly_centered(self, rng):
        estimator = BuffonNeedleEstimator(60.0, 60.0)
        samples = [estimator.sample(100.0, rng) for _ in range(3000)]
        # 1/Poisson is biased upward; the median is the robust check.
        assert 70 < np.median(samples) < 140

    def test_zero_crossings_guarded(self):
        estimator = BuffonNeedleEstimator(10.0, 10.0)
        assert np.isfinite(estimator.estimate_area(0))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BuffonNeedleEstimator(first_visit_length=0.0)
        estimator = BuffonNeedleEstimator()
        with pytest.raises(ConfigurationError):
            estimator.expected_crossings(0.0)


class TestEncounterNoise:
    def test_interface(self, rng):
        noise = EncounterNoise()
        assert not noise.is_null
        value = noise.perturb_count(50, 100, rng)
        assert 0 <= value <= 100

    def test_quality_flip(self, rng):
        noise = EncounterNoise(quality_flip_prob=1.0)
        assert noise.perturb_quality(1.0, rng) == 0.0

    def test_quality_passthrough_by_default(self, rng):
        noise = EncounterNoise()
        assert noise.perturb_quality(1.0, rng) == 1.0

    def test_usable_with_noisy_ant(self, rng):
        from repro.core.simple import SimpleAnt
        from repro.model.actions import SearchResult
        from repro.sim.noise import NoisyAnt

        inner = SimpleAnt(0, 64, np.random.default_rng(0))
        noisy = NoisyAnt(inner, EncounterNoise(), rng)
        noisy.decide()
        noisy.observe(SearchResult(nest=1, quality=1.0, count=30))
        assert 0 <= inner.count <= 64
