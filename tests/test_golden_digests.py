"""Bit-identity of every batch kernel against pre-refactor golden digests.

The fixtures in ``tests/golden/digests.json`` were captured from PR-4 HEAD
(the state the PR-5 zero-allocation refactor started from).  Every case
must reproduce its digest bit-for-bit — across chunk sizes and worker
counts — or the refactor changed a draw, a count, or a round number.

If a future PR *intentionally* changes realization (a new RNG schedule, a
semantic fix), regenerate the fixture in the same commit and document the
change; silent drift is the failure mode this suite exists to catch.
"""

from __future__ import annotations

import pytest

from repro.api import run_batch
from tests.helpers.golden import digest_reports, golden_cases, load_golden

CASES = golden_cases()
GOLDEN = load_golden()


def test_fixture_covers_every_case():
    assert set(GOLDEN) == set(CASES)


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_digest(name):
    reports = run_batch(CASES[name], workers=1)
    assert digest_reports(reports) == GOLDEN[name], (
        f"case {name!r} no longer reproduces its pre-refactor golden digest"
    )


#: Representatives of each kernel family for the (slower) invariance runs.
_INVARIANT_CASES = (
    "simple_clean",
    "simple_composite",
    "optimal_clean",
    "quorum_clean",
    "spread_mixed",
)


@pytest.mark.parametrize("name", _INVARIANT_CASES)
def test_digest_invariant_under_chunking(name):
    reports = run_batch(CASES[name], workers=1, batch_chunk=2)
    assert digest_reports(reports) == GOLDEN[name]


@pytest.mark.parametrize("name", ("simple_clean", "simple_composite"))
def test_digest_invariant_under_workers(name):
    reports = run_batch(CASES[name], workers=2, batch_chunk=2)
    assert digest_reports(reports) == GOLDEN[name]


#: The ant-axis tile matrix (golden cases run at n = 128): an exact
#: divisor, non-divisors below n (the remainder-span path), and widths at
#: and above n (which resolve to the untiled fast path — the resolver
#: contract).  Every width must reproduce the digests bit-for-bit:
#: REPRO_TILE_ANTS is a pure performance knob (docs/PERFORMANCE.md §8).
_TILE_WIDTHS = ("none", "64", "48", "100", "127", "128", "135", "1000")

#: Kernel variants whose draw schedules the tiled loop restructures
#: (clean, composite noise, constant-rate, rate-schedule, flip+gauss)
#: plus one perturbed-path case proving the knob is inert there.
_TILE_CASES = (
    "simple_clean",
    "simple_composite",
    "uniform_clean",
    "adaptive_clean",
    "simple_gauss_flip_noise",
    "simple_delay",
)


@pytest.mark.parametrize("width", _TILE_WIDTHS)
@pytest.mark.parametrize("name", _TILE_CASES)
def test_digest_invariant_under_tiling(name, width, monkeypatch):
    monkeypatch.setenv("REPRO_TILE_ANTS", width)
    reports = run_batch(CASES[name], workers=1)
    assert digest_reports(reports) == GOLDEN[name], (
        f"case {name!r} diverges from its golden digest at tile width "
        f"{width} — tiling must be bit-invisible"
    )
