"""Tests for the unified Scenario API (repro.api)."""

import pickle

import numpy as np
import pytest

from repro.api import (
    REGISTRY,
    AlgorithmRegistry,
    RunReport,
    Scenario,
    aggregate,
    resolve_backend,
    run,
    run_batch,
    run_stats,
)
from repro.exceptions import ConfigurationError
from repro.extensions.estimation import EncounterNoise, EncounterRateEstimator
from repro.model.nests import NestConfig
from repro.sim.asynchrony import DelayModel
from repro.sim.faults import CrashMode, FaultPlan
from repro.sim.noise import CountNoise
from repro.sim.run import run_trials


def nests_for(algorithm: str) -> NestConfig:
    """A small workload every algorithm accepts (spread needs good nest 1)."""
    if algorithm == "spread":
        return NestConfig.single_good(4, good_nest=1)
    return NestConfig.binary(4, {1, 3})


class TestScenario:
    def test_validation(self):
        nests = NestConfig.all_good(2)
        with pytest.raises(ConfigurationError):
            Scenario(algorithm="simple", n=0, nests=nests)
        with pytest.raises(ConfigurationError):
            Scenario(algorithm="simple", n=4, nests=nests, max_rounds=0)
        with pytest.raises(ConfigurationError):
            Scenario(algorithm="simple", n=4, nests=nests, criterion="nope")
        with pytest.raises(ConfigurationError):
            Scenario(algorithm="simple", n=4, nests=nests, trial_index=-1)

    def test_trial_derivation_matches_random_source(self):
        from repro.sim.rng import RandomSource

        scenario = Scenario(algorithm="simple", n=8, nests=NestConfig.all_good(2), seed=9)
        derived = scenario.trial(3).source()
        reference = RandomSource(9).trial(3)
        assert (
            derived.seed_sequence.spawn_key == reference.seed_sequence.spawn_key
        )
        assert derived.seed_sequence.entropy == reference.seed_sequence.entropy

    def test_dict_round_trip_full_featured(self):
        scenario = Scenario(
            algorithm="simple",
            n=64,
            nests=NestConfig.graded([0.9, 0.2, 0.6], good_threshold=0.5),
            seed=42,
            trial_index=7,
            max_rounds=1234,
            params={"note": "x", "beta": 0.5},
            noise=CountNoise(relative_sigma=0.3, quality_flip_prob=0.1),
            fault_plan=FaultPlan(
                crash_fraction=0.1,
                byzantine_fraction=0.05,
                crash_round_range=(2, 9),
                crash_mode=CrashMode.AT_NEST,
                seek_bad=False,
            ),
            delay_model=DelayModel(0.2),
            criterion="good_healthy",
            record_history=True,
        )
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_json_round_trip_encounter_noise(self):
        scenario = Scenario(
            algorithm="simple",
            n=32,
            nests=NestConfig.binary(3, {1}),
            noise=EncounterNoise(
                estimator=EncounterRateEstimator(trials=16, capacity=64)
            ),
        )
        rebuilt = Scenario.from_json(scenario.to_json())
        assert rebuilt == scenario
        assert isinstance(rebuilt.noise, EncounterNoise)
        assert rebuilt.noise.estimator.trials == 16

    def test_pickle_round_trip(self):
        scenario = Scenario(
            algorithm="optimal", n=16, nests=NestConfig.all_good(3), seed=5
        )
        assert pickle.loads(pickle.dumps(scenario)) == scenario

    def test_serialization_is_canonical_across_param_key_order(self):
        # Shuffled-key params must serialize (and therefore hash) identically
        # — the sweep cache's content addressing depends on it.
        nests = NestConfig.all_good(2)
        a = Scenario(
            algorithm="simple", n=8, nests=nests,
            params={"zeta": 1, "alpha": 2, "mid": {"b": 1, "a": 2}},
        )
        b = Scenario(
            algorithm="simple", n=8, nests=nests,
            params={"mid": {"a": 2, "b": 1}, "alpha": 2, "zeta": 1},
        )
        assert a == b
        assert a.to_json() == b.to_json()
        assert list(a.to_dict()["params"]) == ["alpha", "mid", "zeta"]

    def test_serialization_normalizes_numpy_scalars(self):
        import json

        import numpy as np

        scenario = Scenario(
            algorithm="simple",
            n=8,
            nests=NestConfig.all_good(2),
            params={
                "count": np.int64(4),
                "rate": np.float64(0.5),
                "flag": np.bool_(True),
                "values": [np.int32(1), np.float32(2.0)],
            },
        )
        params = scenario.to_dict()["params"]
        assert params == {
            "count": 4,
            "flag": True,
            "rate": 0.5,
            "values": [1, 2.0],
        }
        assert all(
            type(value) in (int, float, bool, list)
            for value in params.values()
        )
        # And the numpy form serializes byte-identically to the plain form.
        plain = scenario.replace(
            params={"count": 4, "rate": 0.5, "flag": True, "values": [1, 2.0]}
        )
        assert scenario.to_json() == plain.to_json()
        json.loads(scenario.to_json())  # genuinely JSON-safe


class TestRegistry:
    def test_every_entry_runs_on_every_supported_backend(self):
        for entry in REGISTRY:
            scenario = Scenario(
                algorithm=entry.name,
                n=24,
                nests=nests_for(entry.name),
                seed=3,
                max_rounds=3000,
            )
            assert entry.backends, entry.name
            for backend in entry.backends:
                if backend == "fast" and not entry.supports_fast(scenario):
                    continue
                report = run(scenario, backend=backend)
                assert isinstance(report, RunReport)
                assert report.backend == backend
                assert report.algorithm == entry.name
                assert report.rounds_executed >= 1

    def test_papers_algorithms_register_both_engines(self):
        for name in ("simple", "optimal", "spread", "adaptive"):
            entry = REGISTRY.get(name)
            assert entry.has_agent and entry.has_fast, name

    def test_all_four_baselines_registered(self):
        for name in ("quorum", "uniform", "rumor", "polya"):
            assert name in REGISTRY, name

    def test_unknown_algorithm_raises_with_known_names(self):
        with pytest.raises(ConfigurationError, match="simple"):
            REGISTRY.get("definitely-not-registered")

    def test_unknown_params_rejected(self):
        scenario = Scenario(
            algorithm="simple",
            n=8,
            nests=NestConfig.all_good(2),
            params={"bogus_knob": 1},
        )
        with pytest.raises(ConfigurationError, match="bogus_knob"):
            run(scenario, backend="fast")

    def test_duplicate_registration_rejected(self):
        registry = AlgorithmRegistry()
        registry.register("x", "first", agent_builder=lambda s: (None, None))
        with pytest.raises(ConfigurationError):
            registry.register("x", "second", agent_builder=lambda s: (None, None))
        registry.register("x", "third", agent_builder=lambda s: (None, None), replace=True)
        assert registry.get("x").summary == "third"


class TestBackendSelection:
    def test_auto_prefers_fast_for_plain_scenarios(self):
        scenario = Scenario(algorithm="simple", n=16, nests=NestConfig.all_good(2))
        assert resolve_backend(scenario) == "fast"

    def test_auto_keeps_perturbed_simple_scenarios_on_the_fast_path(self):
        # Since the perturbation-aware batch kernels, faults, delays and
        # quality flips no longer force the simple family off the fast path.
        nests = NestConfig.all_good(2)
        faulted = Scenario(
            algorithm="simple", n=16, nests=nests,
            fault_plan=FaultPlan(crash_fraction=0.1),
        )
        delayed = Scenario(
            algorithm="simple", n=16, nests=nests, delay_model=DelayModel(0.1)
        )
        flipping = Scenario(
            algorithm="simple", n=16, nests=nests,
            noise=CountNoise(quality_flip_prob=0.5),
        )
        assert resolve_backend(faulted) == "fast"
        assert resolve_backend(delayed) == "fast"
        assert resolve_backend(flipping) == "fast"

    def test_auto_falls_back_to_agent_for_unimplemented_features(self):
        # Algorithm 2's kernel declares no perturbation features, so the
        # same layers still fall back — and the report says why.
        scenario = Scenario(
            algorithm="optimal",
            n=16,
            nests=NestConfig.all_good(2),
            fault_plan=FaultPlan(crash_fraction=0.1),
            max_rounds=40,
        )
        assert resolve_backend(scenario) == "agent"
        report = run(scenario)
        assert report.backend == "agent"
        assert report.extras["agent_fallback"] == ["fault_plan.crash"]

    def test_explicit_fast_with_unsupported_feature_raises(self):
        scenario = Scenario(
            algorithm="optimal",
            n=16,
            nests=NestConfig.all_good(2),
            fault_plan=FaultPlan(crash_fraction=0.1),
        )
        with pytest.raises(ConfigurationError, match="fault_plan.crash"):
            run(scenario, backend="fast")

    def test_agent_backend_missing_raises(self):
        scenario = Scenario(algorithm="rumor", n=16, nests=NestConfig.all_good(2))
        with pytest.raises(ConfigurationError):
            run(scenario, backend="agent")

    def test_unknown_backend_rejected(self):
        scenario = Scenario(algorithm="simple", n=16, nests=NestConfig.all_good(2))
        with pytest.raises(ConfigurationError):
            run(scenario, backend="warp")


class TestRunReportParity:
    def test_agent_and_fast_share_the_schema(self):
        scenario = Scenario(
            algorithm="simple",
            n=48,
            nests=NestConfig.binary(4, {1, 3}),
            seed=11,
            max_rounds=5000,
        )
        fast = run(scenario, backend="fast")
        agent = run(scenario, backend="agent")
        assert set(fast.to_dict()) == set(agent.to_dict())
        for report in (fast, agent):
            assert report.converged
            assert report.chose_good_nest
            assert report.solved
            assert report.k == 4
            assert report.final_counts is not None
            assert int(report.final_counts.sum()) == scenario.n

    def test_report_to_dict_is_json_safe(self):
        import json

        scenario = Scenario(
            algorithm="optimal", n=32, nests=NestConfig.all_good(2), seed=1,
            max_rounds=4000,
        )
        report = run(scenario, backend="fast")
        text = json.dumps(report.to_dict(include_history=True))
        assert "converged" in text

    def test_population_history_parity(self):
        scenario = Scenario(
            algorithm="simple",
            n=24,
            nests=NestConfig.all_good(2),
            seed=4,
            max_rounds=2000,
            record_history=True,
        )
        fast = run(scenario, backend="fast")
        agent = run(scenario, backend="agent")
        for report in (fast, agent):
            assert report.population_history is not None
            assert report.population_history.shape[1] == scenario.nests.k + 1
            assert report.population_history.shape[0] == report.rounds_executed


class TestRunBatch:
    def test_workers_do_not_change_results(self):
        scenario = Scenario(
            algorithm="simple",
            n=32,
            nests=NestConfig.all_good(3),
            seed=21,
            max_rounds=3000,
        )
        serial = run_batch(scenario.trials(6), workers=1)
        parallel = run_batch(scenario.trials(6), workers=4)
        assert [r.converged_round for r in serial] == [
            r.converged_round for r in parallel
        ]
        assert [r.chosen_nest for r in serial] == [r.chosen_nest for r in parallel]
        assert [r.trial_index for r in parallel] == list(range(6))
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.final_counts, b.final_counts)

    def test_batch_matches_individual_runs(self):
        scenario = Scenario(
            algorithm="optimal",
            n=24,
            nests=NestConfig.all_good(2),
            seed=8,
            max_rounds=3000,
        )
        batch = run_batch(scenario.trials(3), workers=1, backend="fast")
        singles = [run(scenario.trial(t), backend="fast") for t in range(3)]
        assert [r.converged_round for r in batch] == [
            r.converged_round for r in singles
        ]

    def test_invalid_workers(self):
        scenario = Scenario(algorithm="simple", n=8, nests=NestConfig.all_good(2))
        with pytest.raises(ConfigurationError):
            run_batch([scenario], workers=0)


class TestAggregation:
    def test_run_stats_matches_run_trials(self):
        """The Scenario API reproduces the legacy agent-engine aggregates."""
        from repro.core.colony import simple_factory

        nests = NestConfig.binary(4, {1, 3})
        scenario = Scenario(
            algorithm="simple", n=32, nests=nests, seed=13, max_rounds=3000
        )
        stats_api = run_stats(scenario, n_trials=5, backend="agent")
        stats_legacy = run_trials(
            simple_factory(), 32, nests, n_trials=5, base_seed=13, max_rounds=3000
        )
        assert stats_api.n_trials == stats_legacy.n_trials
        assert stats_api.n_converged == stats_legacy.n_converged
        assert stats_api.chosen_nests == stats_legacy.chosen_nests
        assert np.array_equal(stats_api.rounds, stats_legacy.rounds)
        assert stats_api.censored_at == stats_legacy.censored_at

    def test_aggregate_counts_only_good_nest_convergence(self):
        good = RunReport(
            algorithm="x", backend="fast", n=4, k=2, seed=0, trial_index=0,
            max_rounds=100, converged=True, converged_round=10,
            rounds_executed=10, chosen_nest=1, chose_good_nest=True,
        )
        bad = RunReport(
            algorithm="x", backend="fast", n=4, k=2, seed=0, trial_index=1,
            max_rounds=100, converged=True, converged_round=12,
            rounds_executed=12, chosen_nest=2, chose_good_nest=False,
        )
        stats = aggregate([good, bad])
        assert stats.n_trials == 2
        assert stats.n_converged == 1
        assert stats.success_rate == 0.5
        assert stats.chosen_nests == {1: 1, 2: 1}


class TestStandaloneProcesses:
    def test_rumor_kernel(self):
        scenario = Scenario(
            algorithm="rumor",
            n=128,
            nests=NestConfig.all_good(2),
            seed=5,
            params={"mode": "push_pull"},
        )
        report = run(scenario)
        assert report.converged
        assert report.chosen_nest is None
        assert 1 <= report.rounds_to_convergence < 64

    def test_rumor_completion_exactly_at_the_cap_counts(self):
        # n=2 with one informed node: push gossip completes in round 1.
        scenario = Scenario(
            algorithm="rumor",
            n=2,
            nests=NestConfig.all_good(2),
            seed=0,
            max_rounds=1,
        )
        report = run(scenario)
        assert report.converged
        assert report.converged_round == 1
        assert report.rounds_executed <= scenario.max_rounds

    def test_polya_steps_bounded_by_max_rounds(self):
        scenario = Scenario(
            algorithm="polya",
            n=1000,
            nests=NestConfig.all_good(2),
            seed=0,
            max_rounds=100,
        )
        report = run(scenario)
        assert report.rounds_executed == 100
        assert report.converged_round == 100

    def test_polya_kernel(self):
        scenario = Scenario(
            algorithm="polya",
            n=64,
            nests=NestConfig.all_good(2),
            seed=5,
            params={"gamma": 2.0, "steps": 200},
        )
        report = run(scenario)
        assert report.converged
        assert report.chosen_nest in (1, 2)
        assert report.chose_good_nest
        assert int(report.final_counts.sum()) == 64 + 200

    def test_spread_backends_agree_on_workload(self):
        scenario = Scenario(
            algorithm="spread",
            n=48,
            nests=NestConfig.single_good(6, good_nest=1),
            seed=2,
            max_rounds=2000,
        )
        fast = run(scenario, backend="fast")
        agent = run(scenario, backend="agent")
        assert fast.converged and agent.converged
        assert fast.chosen_nest == agent.chosen_nest == 1
        assert "informed_history" in fast.extras
