"""Tests for the shared type helpers and constants."""

from repro.types import (
    BAD_QUALITY,
    GOOD_QUALITY,
    GOOD_THRESHOLD,
    HOME_NEST,
    is_candidate,
    is_home,
)


class TestConstants:
    def test_home_nest_is_zero(self):
        assert HOME_NEST == 0

    def test_binary_qualities(self):
        assert BAD_QUALITY == 0.0
        assert GOOD_QUALITY == 1.0

    def test_threshold_separates_binary_qualities(self):
        assert BAD_QUALITY <= GOOD_THRESHOLD < GOOD_QUALITY


class TestIsHome:
    def test_home(self):
        assert is_home(0)

    def test_candidate_is_not_home(self):
        assert not is_home(1)

    def test_negative_is_not_home(self):
        assert not is_home(-1)


class TestIsCandidate:
    def test_first_candidate(self):
        assert is_candidate(1, k=4)

    def test_last_candidate(self):
        assert is_candidate(4, k=4)

    def test_home_is_not_candidate(self):
        assert not is_candidate(0, k=4)

    def test_out_of_range(self):
        assert not is_candidate(5, k=4)

    def test_negative(self):
        assert not is_candidate(-2, k=4)
