"""Tests for fault injection."""

import numpy as np
import pytest

from repro.core.colony import simple_factory
from repro.core.simple import SimpleAnt
from repro.exceptions import ConfigurationError
from repro.model.actions import Go, Recruit, Search, SearchResult
from repro.model.nests import NestConfig
from repro.sim.convergence import CommittedToSingleGoodNest
from repro.sim.faults import ByzantineAnt, CrashedAnt, CrashMode, FaultPlan
from repro.sim.run import build_colony, run_trial


def make_inner(seed=0):
    return SimpleAnt(0, 16, np.random.default_rng(seed))


class TestCrashedAnt:
    def test_transparent_before_crash(self):
        ant = CrashedAnt(make_inner(), crash_round=3, mode=CrashMode.AT_HOME)
        assert isinstance(ant.decide(), Search)
        ant.observe(SearchResult(nest=2, quality=1.0, count=4))
        assert ant.committed_nest == 2
        assert not ant.crashed

    def test_at_nest_zombie_goes_forever(self):
        ant = CrashedAnt(make_inner(), crash_round=2, mode=CrashMode.AT_NEST)
        ant.decide()
        ant.observe(SearchResult(nest=3, quality=1.0, count=4))
        for _ in range(5):
            action = ant.decide()
            assert action == Go(3)
        assert ant.crashed

    def test_at_home_zombie_waits_forever(self):
        ant = CrashedAnt(make_inner(), crash_round=2, mode=CrashMode.AT_HOME)
        ant.decide()
        ant.observe(SearchResult(nest=3, quality=1.0, count=4))
        for _ in range(5):
            assert ant.decide() == Recruit(False, 3)

    def test_crash_before_any_visit_searches_once(self):
        ant = CrashedAnt(make_inner(), crash_round=1, mode=CrashMode.AT_NEST)
        assert isinstance(ant.decide(), Search)
        ant.observe(SearchResult(nest=1, quality=0.0, count=2))
        assert ant.decide() == Go(1)

    def test_crashed_never_settled(self):
        ant = CrashedAnt(make_inner(), crash_round=1, mode=CrashMode.AT_HOME)
        ant.decide()
        ant.observe(SearchResult(nest=1, quality=1.0, count=2))
        assert not ant.settled
        assert ant.state_label() == "crashed"

    def test_crash_round_validation(self):
        with pytest.raises(ConfigurationError):
            CrashedAnt(make_inner(), crash_round=0, mode=CrashMode.AT_HOME)


class TestByzantineAnt:
    def test_seeks_bad_nest(self):
        rng = np.random.default_rng(0)
        ant = ByzantineAnt(0, 16, rng, seek_bad=True)
        assert isinstance(ant.decide(), Search)
        ant.observe(SearchResult(nest=1, quality=1.0, count=4))
        assert isinstance(ant.decide(), Search)  # good nest rejected
        ant.observe(SearchResult(nest=2, quality=0.0, count=4))
        assert ant.decide() == Recruit(True, 2)

    def test_first_nest_mode(self):
        ant = ByzantineAnt(0, 16, np.random.default_rng(0), seek_bad=False)
        ant.decide()
        ant.observe(SearchResult(nest=1, quality=1.0, count=4))
        assert ant.decide() == Recruit(True, 1)

    def test_gives_up_after_max_search(self):
        ant = ByzantineAnt(0, 16, np.random.default_rng(0), max_search_rounds=2)
        ant.decide()
        ant.observe(SearchResult(nest=1, quality=1.0, count=4))
        ant.decide()
        ant.observe(SearchResult(nest=3, quality=1.0, count=4))
        assert ant.decide() == Recruit(True, 3)

    def test_label(self):
        ant = ByzantineAnt(0, 16, np.random.default_rng(0))
        assert ant.state_label() == "byzantine"


class TestFaultPlan:
    def test_counts(self):
        plan = FaultPlan(crash_fraction=0.25, byzantine_fraction=0.125)
        assert plan.n_crashed(16) == 4
        assert plan.n_byzantine(16) == 2

    def test_apply_wraps_chosen_ants(self, rng):
        colony = build_colony(simple_factory(), 16, rng)
        plan = FaultPlan(crash_fraction=0.25, byzantine_fraction=0.125)
        faulty = plan.apply(colony, rng)
        assert len(faulty) == 16
        assert sum(isinstance(a, CrashedAnt) for a in faulty) == 4
        assert sum(isinstance(a, ByzantineAnt) for a in faulty) == 2
        assert [a.ant_id for a in faulty] == list(range(16))

    def test_zero_plan_is_identity(self, rng):
        colony = build_colony(simple_factory(), 8, rng)
        assert FaultPlan().apply(colony, rng) == colony

    def test_crash_rounds_within_range(self, rng):
        colony = build_colony(simple_factory(), 32, rng)
        plan = FaultPlan(crash_fraction=0.5, crash_round_range=(3, 9))
        faulty = plan.apply(colony, rng)
        for ant in faulty:
            if isinstance(ant, CrashedAnt):
                assert 3 <= ant.crash_round <= 9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(crash_fraction=-0.1)
        with pytest.raises(ConfigurationError):
            FaultPlan(crash_fraction=0.7, byzantine_fraction=0.7)
        with pytest.raises(ConfigurationError):
            FaultPlan(crash_round_range=(5, 2))


class TestEndToEnd:
    def test_colony_survives_crashes(self, all_good_4):
        result = run_trial(
            simple_factory(),
            64,
            all_good_4,
            seed=3,
            max_rounds=4000,
            fault_plan=FaultPlan(crash_fraction=0.15),
            criterion_factory=lambda: CommittedToSingleGoodNest(exclude_faulty=True),
        )
        assert result.converged
        assert result.chosen_nest in (1, 2, 3, 4)

    def test_colony_survives_mild_byzantine(self):
        nests = NestConfig.binary(4, {1, 2, 3})
        result = run_trial(
            simple_factory(),
            64,
            nests,
            seed=5,
            max_rounds=6000,
            fault_plan=FaultPlan(byzantine_fraction=0.03),
            criterion_factory=lambda: CommittedToSingleGoodNest(exclude_faulty=True),
        )
        assert result.converged
        assert result.chosen_nest in (1, 2, 3)
