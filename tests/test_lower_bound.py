"""Tests for the lower-bound information-spreading process."""

import numpy as np
import pytest

from repro.core.colony import informed_spread_factory
from repro.core.lower_bound import (
    IgnorantPolicy,
    InformedSpreadAnt,
    validate_lower_bound_world,
)
from repro.exceptions import ConfigurationError
from repro.model.actions import Recruit, RecruitResult, Search, SearchResult
from repro.sim.run import run_trial


def make_ant(policy=IgnorantPolicy.WAIT, seed=0):
    return InformedSpreadAnt(0, 64, np.random.default_rng(seed), policy=policy)


class TestAntBehavior:
    def test_starts_ignorant_and_searching(self):
        ant = make_ant()
        assert not ant.informed
        assert isinstance(ant.decide(), Search)

    def test_search_finding_good_nest_informs(self):
        ant = make_ant()
        ant.decide()
        ant.observe(SearchResult(nest=3, quality=1.0, count=2))
        assert ant.informed
        assert ant.committed_nest == 3
        assert ant.settled

    def test_search_finding_bad_nest_stays_ignorant(self):
        ant = make_ant()
        ant.decide()
        ant.observe(SearchResult(nest=2, quality=0.0, count=2))
        assert not ant.informed

    def test_informed_ant_pushes_every_round(self):
        ant = make_ant()
        ant.decide()
        ant.observe(SearchResult(nest=3, quality=1.0, count=2))
        for _ in range(4):
            assert ant.decide() == Recruit(True, 3)
            ant.observe(RecruitResult(nest=3, home_count=10))

    def test_wait_policy_waits_at_home(self):
        ant = make_ant(IgnorantPolicy.WAIT)
        ant.decide()
        ant.observe(SearchResult(nest=2, quality=0.0, count=2))
        assert ant.decide() == Recruit(False, 2)

    def test_search_policy_keeps_searching(self):
        ant = make_ant(IgnorantPolicy.SEARCH)
        ant.decide()
        ant.observe(SearchResult(nest=2, quality=0.0, count=2))
        assert isinstance(ant.decide(), Search)

    def test_recruitment_informs(self):
        ant = make_ant(IgnorantPolicy.WAIT)
        ant.decide()
        ant.observe(SearchResult(nest=2, quality=0.0, count=2))
        ant.decide()
        ant.observe(RecruitResult(nest=5, home_count=10))
        assert ant.informed
        assert ant.committed_nest == 5

    def test_unrecruited_stays_ignorant(self):
        ant = make_ant(IgnorantPolicy.WAIT)
        ant.decide()
        ant.observe(SearchResult(nest=2, quality=0.0, count=2))
        ant.decide()
        ant.observe(RecruitResult(nest=2, home_count=10))  # own input back
        assert not ant.informed

    def test_state_labels(self):
        ant = make_ant()
        assert ant.state_label() == "ignorant"
        ant.decide()
        ant.observe(SearchResult(nest=1, quality=1.0, count=1))
        assert ant.state_label() == "informed"


class TestValidation:
    def test_requires_two_nests(self):
        with pytest.raises(ConfigurationError):
            validate_lower_bound_world(k=1, good_nest=1)

    def test_good_nest_in_range(self):
        with pytest.raises(ConfigurationError):
            validate_lower_bound_world(k=4, good_nest=5)
        validate_lower_bound_world(k=4, good_nest=4)


class TestEndToEnd:
    @pytest.mark.parametrize(
        "policy", [IgnorantPolicy.WAIT, IgnorantPolicy.MIXED, IgnorantPolicy.SEARCH]
    )
    def test_all_policies_complete(self, policy, single_good_8):
        result = run_trial(
            informed_spread_factory(policy),
            64,
            single_good_8,
            seed=1,
            max_rounds=2000,
        )
        assert result.converged
        assert result.chosen_nest == 3

    def test_wait_policy_not_slower_than_pure_search(self, single_good_8):
        wait = run_trial(
            informed_spread_factory(IgnorantPolicy.WAIT),
            128,
            single_good_8,
            seed=2,
            max_rounds=4000,
        )
        search = run_trial(
            informed_spread_factory(IgnorantPolicy.SEARCH),
            128,
            single_good_8,
            seed=2,
            max_rounds=4000,
        )
        # Recruitment doubles the informed set; solo search is coupon
        # collecting — over one seeded pair WAIT should finish no later
        # within generous slack (x3) to avoid flakiness.
        assert wait.converged_round <= 3 * search.converged_round
