"""Tests for the HouseHunting problem statement."""

import numpy as np
import pytest

from repro.model.ant import Ant
from repro.model.nests import NestConfig
from repro.model.problem import HouseHuntingProblem, SolutionStatus


class StubAnt(Ant):
    """Minimal ant with a fixed commitment for predicate tests."""

    def __init__(self, ant_id, nest, settled=False):
        super().__init__(ant_id, n=4, rng=np.random.default_rng(0))
        self._nest = nest
        self._settled = settled

    def decide(self):  # pragma: no cover - never driven
        raise NotImplementedError

    def observe(self, result):  # pragma: no cover - never driven
        raise NotImplementedError

    @property
    def committed_nest(self):
        return self._nest

    @property
    def settled(self):
        return self._settled


@pytest.fixture
def problem(mixed_nests) -> HouseHuntingProblem:
    return HouseHuntingProblem(n=4, nests=mixed_nests)


class TestStatus:
    def test_solved(self, problem):
        ants = [StubAnt(i, 1) for i in range(4)]
        assert problem.status(ants) is SolutionStatus.SOLVED
        assert problem.is_solved(ants)

    def test_agreed_on_bad_nest(self, problem):
        ants = [StubAnt(i, 2) for i in range(4)]
        assert problem.status(ants) is SolutionStatus.AGREED_ON_BAD_NEST
        assert not problem.is_solved(ants)

    def test_split(self, problem):
        ants = [StubAnt(0, 1), StubAnt(1, 3), StubAnt(2, 1), StubAnt(3, 1)]
        assert problem.status(ants) is SolutionStatus.SPLIT

    def test_undecided(self, problem):
        ants = [StubAnt(0, 1), StubAnt(1, None)]
        assert problem.status(ants) is SolutionStatus.UNDECIDED

    def test_require_settled(self, mixed_nests):
        problem = HouseHuntingProblem(2, mixed_nests, require_settled=True)
        unsettled = [StubAnt(0, 1, settled=True), StubAnt(1, 1, settled=False)]
        assert problem.status(unsettled) is SolutionStatus.UNDECIDED
        settled = [StubAnt(0, 1, settled=True), StubAnt(1, 1, settled=True)]
        assert problem.status(settled) is SolutionStatus.SOLVED


class TestChosenNest:
    def test_unanimous(self, problem):
        assert problem.chosen_nest([StubAnt(0, 2), StubAnt(1, 2)]) == 2

    def test_split_returns_none(self, problem):
        assert problem.chosen_nest([StubAnt(0, 1), StubAnt(1, 2)]) is None

    def test_k_property(self, problem):
        assert problem.k == 4
