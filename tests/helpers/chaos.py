"""Builders for deterministic ``$REPRO_CHAOS`` fault-injection plans.

A chaos plan (see :mod:`repro.api.chaos`) is a JSON list of entries, each
matching an execution point — run_batch scope, chunk index, retry
attempt, task kind, phase — and firing one action.  These helpers build
entries and install plans into the environment, so a test reads as its
fault scenario::

    plan_env(monkeypatch, kill(scope="cell0", task=0))
    result = run_study(study, workers=4, policy=policy, cache=None)

Entries default to ``attempt=0``: the fault fires on the first attempt
only, so the supervised retry observes a healthy substrate — the
deterministic analogue of a transient crash.  Pass ``attempt="*"`` for a
*persistent* fault (fires on every retry: the quarantine scenario).
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.api.chaos import CHAOS_ENV


def entry(action: str, **fields: Any) -> dict[str, Any]:
    """One plan entry; unspecified selectors use the harness defaults."""
    built: dict[str, Any] = {
        "action": action,
        "scope": fields.pop("scope", "*"),
        "task": fields.pop("task", "*"),
        "attempt": fields.pop("attempt", 0),
        "kind": fields.pop("kind", "*"),
        "phase": fields.pop("phase", "start"),
    }
    built.update(fields)
    return built


def kill(**fields: Any) -> dict[str, Any]:
    """SIGKILL the worker running the matched chunk."""
    return entry("kill", **fields)


def stall(seconds: float, **fields: Any) -> dict[str, Any]:
    """Hang the matched chunk for ``seconds`` (past the chunk deadline)."""
    return entry("stall", seconds=seconds, **fields)


def poison(message: str = "chaos: injected failure", **fields: Any) -> dict[str, Any]:
    """Raise a non-retryable ChaosError — a deterministic kernel crash."""
    return entry("raise", message=message, **fields)


def flake(**fields: Any) -> dict[str, Any]:
    """Raise a retryable WorkerCrash — a transient infrastructure error."""
    return entry("flake", **fields)


def plan_env(monkeypatch, *entries: dict[str, Any]) -> None:
    """Install a plan into ``$REPRO_CHAOS`` for the test's duration.

    Worker pools fork after the test body starts, so the plan propagates
    into every worker the run creates.
    """
    monkeypatch.setenv(CHAOS_ENV, json.dumps(list(entries)))


def seeded_plan(
    seed: int,
    n_tasks: int,
    scope: str = "*",
    actions: tuple[str, ...] = ("kill", "flake"),
    n_faults: int = 2,
) -> list[dict[str, Any]]:
    """A reproducible random plan: ``n_faults`` first-attempt faults.

    Same seed, same plan — a fuzz run that fails is rerunnable verbatim.
    Only transient (attempt-0, retryable-path) actions are drawn, so any
    plan this builds must leave results bit-identical.
    """
    rng = np.random.default_rng(seed)
    tasks = rng.choice(n_tasks, size=min(n_faults, n_tasks), replace=False)
    return [
        entry(str(rng.choice(list(actions))), scope=scope, task=int(task))
        for task in tasks
    ]
