"""Golden fixed-seed digests of the batch kernels' outputs.

The PR-5 arena refactor promises **bit-identical outputs**: same RNG draw
order, same reports, for every kernel and every perturbation layer.  The
enforcement is this module: a matrix of small fixed-seed workloads covering
every batch kernel x feature combination, each reduced to a SHA-256 digest
of its reports' canonical JSON form.  The digests in
``tests/golden/digests.json`` were captured from pre-refactor HEAD (PR 4)
and must never change without an explicit, documented realization change.

The digest canonicalization goes through
:meth:`repro.api.report.RunReport.to_dict` (histories included), so it is
dtype-agnostic but value-exact: internal dtype tightening is invisible,
any change to a single count, round number, or draw is not.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Callable, Sequence

from repro.api.scenario import Scenario
from repro.extensions.estimation import EncounterNoise, EncounterRateEstimator
from repro.model.nests import NestConfig
from repro.sim.asynchrony import DelayModel
from repro.sim.faults import CrashMode, FaultPlan
from repro.sim.noise import CountNoise

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "golden" / "digests.json"

#: Shared small-world shapes: big enough to exercise compaction, matching
#: collisions and multi-phase convergence, small enough to run in CI.
_N = 128
_TRIALS = 6


def _simple(seed: int, **overrides) -> Scenario:
    base = dict(
        algorithm="simple",
        n=_N,
        nests=NestConfig.all_good(4),
        seed=seed,
        max_rounds=20_000,
    )
    base.update(overrides)
    return Scenario(**base)


#: One bad nest among four — the shape fault/flip cases need so Byzantine
#: ants have a bad nest to push and flips can change a reading.
_BINARY = NestConfig.binary(4, {2, 3, 4})


def golden_cases() -> dict[str, list[Scenario]]:
    """Case name -> the scenarios whose reports are digested (in order)."""
    cases: dict[str, Callable[[], Scenario]] = {
        # -- the unperturbed kernels (two-sub-round fast path) --------------
        "simple_clean": lambda: _simple(101),
        "simple_history": lambda: _simple(102, n=64, record_history=True),
        "uniform_clean": lambda: _simple(
            103, algorithm="uniform", params={"recruit_probability": 0.3}
        ),
        "adaptive_clean": lambda: _simple(104, algorithm="adaptive"),
        "optimal_clean": lambda: _simple(105, algorithm="optimal"),
        "optimal_strict": lambda: _simple(
            106, algorithm="optimal", params={"strict_pseudocode": True}
        ),
        "optimal_history": lambda: _simple(
            107, algorithm="optimal", n=64, record_history=True
        ),
        "spread_wait": lambda: _simple(
            108, algorithm="spread", nests=NestConfig.single_good(3)
        ),
        "spread_search": lambda: _simple(
            109,
            algorithm="spread",
            nests=NestConfig.single_good(3),
            params={"policy": "search"},
        ),
        "spread_mixed": lambda: _simple(
            110,
            algorithm="spread",
            nests=NestConfig.single_good(3),
            params={"policy": "mixed"},
        ),
        "quorum_clean": lambda: _simple(111, algorithm="quorum"),
        "quorum_history": lambda: _simple(
            112, algorithm="quorum", n=64, record_history=True
        ),
        # -- noise layers on the unperturbed loop ---------------------------
        "simple_gauss_noise": lambda: _simple(
            113, noise=CountNoise(relative_sigma=0.4, absolute_sigma=1.0)
        ),
        "simple_flip_noise": lambda: _simple(
            114, nests=_BINARY, noise=CountNoise(quality_flip_prob=0.05)
        ),
        "simple_gauss_flip_noise": lambda: _simple(
            115,
            nests=_BINARY,
            noise=CountNoise(relative_sigma=0.3, quality_flip_prob=0.03),
        ),
        "simple_encounter_noise": lambda: _simple(
            116,
            noise=EncounterNoise(
                estimator=EncounterRateEstimator(trials=32, capacity=96)
            ),
        ),
        # -- the general perturbed loop -------------------------------------
        "simple_crash_home": lambda: _simple(
            117,
            nests=_BINARY,
            fault_plan=FaultPlan(crash_fraction=0.15),
            criterion="good_healthy",
        ),
        "simple_crash_nest": lambda: _simple(
            118,
            nests=_BINARY,
            fault_plan=FaultPlan(
                crash_fraction=0.15, crash_mode=CrashMode.AT_NEST
            ),
            criterion="good_healthy",
        ),
        # Byzantine pressure stalls convergence; a tight round cap keeps the
        # case fast and pins the censored-finalize path as a bonus.
        "simple_byzantine": lambda: _simple(
            119,
            nests=_BINARY,
            fault_plan=FaultPlan(byzantine_fraction=0.05),
            criterion="good_healthy",
            max_rounds=800,
        ),
        "simple_delay": lambda: _simple(120, delay_model=DelayModel(0.3)),
        "simple_delay_history": lambda: _simple(
            121, n=64, delay_model=DelayModel(0.2), record_history=True
        ),
        "simple_composite": lambda: _simple(
            122,
            nests=_BINARY,
            fault_plan=FaultPlan(crash_fraction=0.1, byzantine_fraction=0.04),
            delay_model=DelayModel(0.15),
            noise=CountNoise(relative_sigma=0.2, quality_flip_prob=0.02),
            criterion="good_healthy",
            max_rounds=800,
        ),
        "adaptive_delay": lambda: _simple(
            123, algorithm="adaptive", delay_model=DelayModel(0.25)
        ),
        "uniform_crash": lambda: _simple(
            124,
            algorithm="uniform",
            nests=_BINARY,
            fault_plan=FaultPlan(crash_fraction=0.1),
            criterion="good_healthy",
            params={"recruit_probability": 0.4},
        ),
        # -- standalone fast-only processes (report-path guard) -------------
        "rumor": lambda: _simple(125, algorithm="rumor", n=256),
        "polya": lambda: _simple(126, algorithm="polya", n=64, max_rounds=512),
        # -- measurement processes (Lemma 2.1 / Lemma 5.4 samplers) ---------
        "tagged_recruitment": lambda: _simple(
            127,
            algorithm="tagged_recruitment",
            params={"active_fraction": 0.5},
        ),
        "initial_split": lambda: _simple(128, algorithm="initial_split"),
    }
    return {name: build().trials(_TRIALS) for name, build in cases.items()}


def digest_reports(reports: Sequence) -> str:
    """SHA-256 over the canonical JSON of every report, in order."""
    payload = json.dumps(
        [report.to_dict(include_history=True) for report in reports],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def load_golden() -> dict[str, str]:
    """The committed pre-refactor digests."""
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
