"""The statistical-equivalence harness shared across engine-parity suites.

Factored out of the v1-vs-v2 matcher suites (``tests/test_matcher_v2.py``,
``tests/test_batch_engine.py``) so every claim of the form "engine A and
engine B sample the same law" — matcher schedules, batch kernels, and the
vectorized perturbation layers against their agent-engine wrappers — is
made with one vocabulary and one set of tolerances:

- **Two-sample Kolmogorov–Smirnov** distance over convergence-round
  distributions (censored trials contribute their ``max_rounds`` atom, so
  engines must also censor alike), against the asymptotic critical value at
  a small ``alpha``.  Implemented directly on numpy so the harness has no
  dependency beyond the package itself.
- **Binomial compatibility** of success rates via overlapping Wilson score
  intervals (:func:`repro.analysis.stats.wilson_interval`), the right
  shape near the 0/1 rates our claims live at.
- **Pooled-SD mean comparison** for matched summary statistics (the
  original matcher-suite notion).
- **Fixed-seed trial batteries**: both sides draw trials
  ``RandomSource(seed).trial(t)`` through :func:`repro.api.run_batch`, so
  a battery is a pure function of ``(scenario, backend, trials)`` and
  failures replay exactly.

The tolerances are deliberately loose (``alpha = 1e-3``, ``z = 4``): these
are regression tripwires for *distribution-level* divergence across
hundreds of CI runs, not significance tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api import RunReport, Scenario, run_batch
from repro.analysis.stats import wilson_interval

#: Default false-alarm rate for the KS tripwire.
DEFAULT_ALPHA = 1e-3
#: Default pooled-SD multiple for mean comparisons.
DEFAULT_Z = 4.0
#: Default confidence for Wilson-interval overlap checks.
DEFAULT_CONFIDENCE = 0.999


# -- two-sample Kolmogorov–Smirnov -------------------------------------------


def ks_statistic(a, b) -> float:
    """Sup-distance between the empirical CDFs of two samples."""
    a = np.sort(np.asarray(a, dtype=float))
    b = np.sort(np.asarray(b, dtype=float))
    if a.size == 0 or b.size == 0:
        raise ValueError("KS statistic needs two non-empty samples")
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


def ks_critical(n: int, m: int, alpha: float = DEFAULT_ALPHA) -> float:
    """Asymptotic two-sample KS rejection threshold at level ``alpha``."""
    coefficient = np.sqrt(-np.log(alpha / 2.0) / 2.0)
    return float(coefficient * np.sqrt((n + m) / (n * m)))


def assert_ks_equivalent(a, b, alpha: float = DEFAULT_ALPHA, label: str = ""):
    """Fail when the two samples' CDFs are further apart than chance allows."""
    statistic = ks_statistic(a, b)
    threshold = ks_critical(len(a), len(b), alpha)
    assert statistic <= threshold, (
        f"{label or 'samples'}: KS distance {statistic:.3f} exceeds the "
        f"alpha={alpha} threshold {threshold:.3f} "
        f"(n={len(a)}, m={len(b)})"
    )


# -- binomial success-rate compatibility -------------------------------------


def assert_rates_compatible(
    successes_a: int,
    trials_a: int,
    successes_b: int,
    trials_b: int,
    confidence: float = DEFAULT_CONFIDENCE,
    label: str = "",
):
    """Fail when the two Wilson score intervals do not even overlap."""
    lo_a, hi_a = wilson_interval(successes_a, trials_a, confidence)
    lo_b, hi_b = wilson_interval(successes_b, trials_b, confidence)
    assert max(lo_a, lo_b) <= min(hi_a, hi_b), (
        f"{label or 'rates'}: {successes_a}/{trials_a} vs "
        f"{successes_b}/{trials_b} — Wilson {confidence:.1%} intervals "
        f"[{lo_a:.3f}, {hi_a:.3f}] and [{lo_b:.3f}, {hi_b:.3f}] are disjoint"
    )


# -- summary-statistic comparisons -------------------------------------------


def assert_means_close(a, b, z: float = DEFAULT_Z, label: str = ""):
    """Pooled-SD mean comparison (the matcher suites' original notion)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    pooled_sd = np.sqrt(a.var() / a.size + b.var() / b.size)
    gap = abs(float(a.mean()) - float(b.mean()))
    assert gap <= z * pooled_sd or gap == 0.0, (
        f"{label or 'means'}: |{a.mean():.3f} - {b.mean():.3f}| = {gap:.3f} "
        f"exceeds {z} pooled SDs ({z * pooled_sd:.3f})"
    )


def assert_medians_close(a, b, rel: float = 0.35, label: str = ""):
    """Relative median comparison (the batch-engine suites' notion)."""
    med_a = float(np.median(np.asarray(a, dtype=float)))
    med_b = float(np.median(np.asarray(b, dtype=float)))
    bound = rel * max(med_a, med_b)
    assert abs(med_a - med_b) <= bound, (
        f"{label or 'medians'}: |{med_a:.1f} - {med_b:.1f}| exceeds "
        f"{rel:.0%} of max ({bound:.1f})"
    )


# -- fixed-seed trial batteries ----------------------------------------------


@dataclass(frozen=True)
class TrialBattery:
    """The comparison-ready outcome arrays of one scenario's trial sweep."""

    backend: str
    rounds: np.ndarray  # rounds to convergence; censored trials = max_rounds
    solved: np.ndarray  # converged on a *good* nest
    converged: np.ndarray
    reports: tuple[RunReport, ...]

    @property
    def n_trials(self) -> int:
        return len(self.reports)

    @property
    def n_solved(self) -> int:
        return int(self.solved.sum())

    @property
    def solved_rounds(self) -> np.ndarray:
        """Convergence rounds of the solved trials only."""
        return self.rounds[self.solved]


def collect_battery(
    scenario: Scenario,
    trials: int,
    backend: str = "auto",
    workers: int = 1,
    batch_chunk: int | None = None,
) -> TrialBattery:
    """Run the scenario's first ``trials`` seeded trials on one backend."""
    reports = run_batch(
        scenario.trials(trials),
        workers=workers,
        backend=backend,
        batch_chunk=batch_chunk,
    )
    return TrialBattery(
        backend=backend,
        rounds=np.asarray([r.rounds_to_convergence for r in reports], dtype=np.int64),
        solved=np.asarray([r.solved for r in reports], dtype=bool),
        converged=np.asarray([r.converged for r in reports], dtype=bool),
        reports=tuple(reports),
    )


def assert_batteries_equivalent(
    a: TrialBattery,
    b: TrialBattery,
    alpha: float = DEFAULT_ALPHA,
    confidence: float = DEFAULT_CONFIDENCE,
    label: str = "",
):
    """The composite engine-parity claim for one scenario.

    Success rates must be binomially compatible and the full
    (censoring-included) convergence-round distributions must pass the KS
    tripwire.  Censored trials carry ``max_rounds``, so an engine that
    converges where the other stalls fails the KS check too.
    """
    assert_rates_compatible(
        a.n_solved,
        a.n_trials,
        b.n_solved,
        b.n_trials,
        confidence=confidence,
        label=f"{label} success rate" if label else "success rate",
    )
    assert_ks_equivalent(
        a.rounds,
        b.rounds,
        alpha=alpha,
        label=f"{label} rounds" if label else "rounds",
    )


# -- bit-level report identity ------------------------------------------------


def reports_bit_identical(a: RunReport, b: RunReport) -> bool:
    """Field-for-field identity of two reports (the batching invariant)."""
    if (
        a.converged != b.converged
        or a.converged_round != b.converged_round
        or a.rounds_executed != b.rounds_executed
        or a.chosen_nest != b.chosen_nest
        or a.extras.get("matcher") != b.extras.get("matcher")
    ):
        return False
    if (a.final_counts is None) != (b.final_counts is None):
        return False
    if a.final_counts is not None and not np.array_equal(
        a.final_counts, b.final_counts
    ):
        return False
    if (a.population_history is None) != (b.population_history is None):
        return False
    if a.population_history is not None and not np.array_equal(
        a.population_history, b.population_history
    ):
        return False
    return True


def assert_reports_bit_identical(got, expected, label: str = ""):
    """Pairwise bit-identity of two report lists."""
    assert len(got) == len(expected), label
    for index, (a, b) in enumerate(zip(got, expected)):
        assert reports_bit_identical(a, b), (
            f"{label or 'reports'}: trial {index} diverged "
            f"({a.converged_round} vs {b.converged_round} rounds)"
        )
