"""Shared test utilities (not collected as tests)."""
