"""Tests for the statistics helpers."""

import numpy as np
import pytest

from repro.analysis.stats import (
    bootstrap_mean_interval,
    empirical_probability,
    geometric_mean,
    summarize,
    wilson_interval,
)
from repro.exceptions import ConfigurationError


class TestSummarize:
    def test_basic(self):
        summary = summarize([1, 2, 3, 4, 5])
        assert summary.n == 5
        assert summary.mean == 3.0
        assert summary.median == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0

    def test_single_value(self):
        summary = summarize([7])
        assert summary.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])

    def test_str_smoke(self):
        assert "median" in str(summarize([1, 2, 3]))


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(80, 100)
        assert lo < 0.8 < hi

    def test_bounded_in_unit_interval(self):
        lo, hi = wilson_interval(0, 10)
        assert lo == 0.0
        assert hi > 0.0
        lo, hi = wilson_interval(10, 10)
        assert hi == 1.0
        assert lo < 1.0

    def test_narrows_with_trials(self):
        lo1, hi1 = wilson_interval(8, 10)
        lo2, hi2 = wilson_interval(800, 1000)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_higher_confidence_widens(self):
        lo90, hi90 = wilson_interval(50, 100, confidence=0.90)
        lo99, hi99 = wilson_interval(50, 100, confidence=0.99)
        assert (hi99 - lo99) > (hi90 - lo90)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(1, 0)
        with pytest.raises(ConfigurationError):
            wilson_interval(5, 4)
        with pytest.raises(ConfigurationError):
            wilson_interval(1, 4, confidence=1.0)


class TestBootstrap:
    def test_contains_true_mean_usually(self):
        rng = np.random.default_rng(0)
        data = rng.normal(10.0, 2.0, size=200)
        lo, hi = bootstrap_mean_interval(data, seed=1)
        assert lo < 10.3 and hi > 9.7

    def test_single_point(self):
        assert bootstrap_mean_interval([5.0]) == (5.0, 5.0)

    def test_custom_statistic(self):
        lo, hi = bootstrap_mean_interval([1, 2, 3, 100], statistic=np.median)
        assert hi <= 100

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            bootstrap_mean_interval([])


class TestSmallHelpers:
    def test_empirical_probability(self):
        assert empirical_probability(3, 4) == 0.75
        with pytest.raises(ConfigurationError):
            empirical_probability(1, 0)

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ConfigurationError):
            geometric_mean([])
