"""Out-of-core ResultTable spill: round-trips, budgets, study wiring.

The contract under test (docs/PERFORMANCE.md §8): a spilled table is the
*same table* — ``equals``-identical bit for bit, same ``select`` /
``group_by`` / CSV / JSON behaviour — just memmap-backed; a spill
directory alone suffices to resume (no re-simulation); and the automatic
policy in :func:`~repro.api.scheduler.fold_study_result` is inert unless
``$REPRO_SPILL_DIR`` opts in.  Plus the tiling acceptance cross-check:
tiled and untiled study runs fold to ``equals``-identical tables, cold
and warm.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    ResultCache,
    Scenario,
    Study,
    Sweep,
    grid,
    nests_spec,
    run_study,
)
from repro.api.results import ResultTable
from repro.api.spill import (
    DEFAULT_SPILL_ROWS,
    load_spilled,
    maybe_spill,
    spill_table,
)
from repro.exceptions import ConfigurationError


def sample_table() -> ResultTable:
    return ResultTable(
        {
            "n": [4096, 65536, 4096, 65536],
            "metric": [1.5, float("nan"), 2.0, 3.25],
            "algorithm": ["simple", "simple", "optimal", None],
            "flag": [True, False, True, True],
        }
    )


class TestSpillRoundTrip:
    def test_equals_both_directions(self, tmp_path):
        table = sample_table()
        spill_table(table, tmp_path)
        loaded = load_spilled(tmp_path)
        assert table.equals(loaded)
        assert loaded.equals(table)

    def test_numeric_columns_are_memmaps(self, tmp_path):
        spill_table(sample_table(), tmp_path)
        loaded = load_spilled(tmp_path)
        assert isinstance(loaded.column("n"), np.memmap)
        assert isinstance(loaded.column("metric"), np.memmap)
        assert loaded.column("algorithm").dtype.kind == "O"

    def test_dtypes_preserved(self, tmp_path):
        table = sample_table()
        spill_table(table, tmp_path)
        loaded = load_spilled(tmp_path)
        for name in table.column_names:
            assert table.column(name).dtype.kind == loaded.column(name).dtype.kind

    def test_relational_ops_unchanged(self, tmp_path):
        table = sample_table()
        spill_table(table, tmp_path)
        loaded = load_spilled(tmp_path)
        assert loaded.select(n=4096).n_rows == 2
        assert [key for key, _ in loaded.group_by("algorithm")] == [
            key for key, _ in table.group_by("algorithm")
        ]
        sub = loaded.select(n=65536, algorithm="simple")
        assert np.isnan(sub.column("metric")[0])

    def test_exports_unchanged(self, tmp_path):
        table = sample_table()
        spill_table(table, tmp_path)
        loaded = load_spilled(tmp_path)
        assert table.to_csv() == loaded.to_csv()
        assert table.to_json() == loaded.to_json()

    def test_resume_from_spill(self, tmp_path):
        """The manifest alone rebuilds the table — twice, identically."""
        table = sample_table()
        spill_table(table, tmp_path)
        first = load_spilled(tmp_path)
        second = load_spilled(tmp_path)
        assert first.equals(second)
        assert second.spill_dir == tmp_path

    def test_spill_refuses_overwrite(self, tmp_path):
        spill_table(sample_table(), tmp_path)
        with pytest.raises(ConfigurationError):
            spill_table(sample_table(), tmp_path)

    def test_load_requires_manifest(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_spilled(tmp_path)


class TestMaybeSpill:
    def test_identity_without_directory(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPILL_DIR", raising=False)
        table = sample_table()
        assert maybe_spill(table) is table

    def test_under_budget_passthrough(self, tmp_path):
        table = sample_table()
        assert maybe_spill(table, directory=tmp_path, max_rows=100) is table

    def test_row_budget_spills(self, tmp_path):
        table = sample_table()
        spilled = maybe_spill(table, directory=tmp_path, max_rows=2)
        assert spilled is not table
        assert isinstance(spilled.column("n"), np.memmap)
        assert spilled.equals(table)
        # The spill directory is recorded for later resumes.
        assert load_spilled(spilled.spill_dir).equals(table)

    def test_byte_budget_spills(self, tmp_path):
        table = sample_table()
        spilled = maybe_spill(
            table, directory=tmp_path, max_rows=10**9, max_bytes=1
        )
        assert isinstance(spilled.column("n"), np.memmap)

    def test_env_configuration(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_SPILL_ROWS", "2")
        table = sample_table()
        spilled = maybe_spill(table)
        assert isinstance(spilled.column("n"), np.memmap)

    def test_default_row_budget(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_SPILL_ROWS", raising=False)
        # 4 rows is far under DEFAULT_SPILL_ROWS: no spill.
        table = sample_table()
        assert maybe_spill(table) is table
        assert DEFAULT_SPILL_ROWS == 100_000


def tiny_study(name: str = "spill-study") -> Study:
    return Study(
        name=name,
        sweep=Sweep(
            base={
                "algorithm": "simple",
                "nests": nests_spec("all_good", k=2),
                "seed": 11,
                "max_rounds": 10_000,
            },
            axes=(grid("n", (16, 32, 64)),),
        ),
        trials=3,
        metrics=("n_trials", "success_rate", "median_rounds"),
    )


class TestStudyWiring:
    def test_fold_spills_when_configured(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path / "spills"))
        monkeypatch.setenv("REPRO_SPILL_ROWS", "1")
        result = run_study(tiny_study())
        assert isinstance(result.table.column("n"), np.memmap)
        # The spilled study table equals an unspilled rerun's, bit for bit.
        monkeypatch.delenv("REPRO_SPILL_DIR")
        monkeypatch.delenv("REPRO_SPILL_ROWS")
        plain = run_study(tiny_study())
        assert result.table.equals(plain.table)
        assert load_spilled(result.table.spill_dir).equals(plain.table)

    def test_fold_inert_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPILL_DIR", raising=False)
        result = run_study(tiny_study())
        assert not isinstance(result.table.column("n"), np.memmap)

    def test_spilled_warm_cache_run_identical(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        cold = run_study(tiny_study(), cache=cache)
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path / "spills"))
        monkeypatch.setenv("REPRO_SPILL_ROWS", "1")
        warm = run_study(tiny_study(), cache=cache)
        assert warm.cache_hits == 3 and warm.simulated_trials == 0
        assert isinstance(warm.table.column("n"), np.memmap)
        assert warm.table.equals(cold.table)


class TestTiledVsUntiledTables:
    """The tiling acceptance cross-check at the study level: tiled and
    untiled runs fold to ``equals``-identical tables, cold and warm —
    whether or not either side also spilled."""

    def test_cold_tables_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_TILE_ANTS", "none")
        untiled = run_study(tiny_study())
        monkeypatch.setenv("REPRO_TILE_ANTS", "7")  # non-divisor of 16/32/64
        tiled = run_study(tiny_study())
        assert untiled.table.equals(tiled.table)

    def test_warm_tables_identical(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        monkeypatch.setenv("REPRO_TILE_ANTS", "none")
        cold = run_study(tiny_study(), cache=cache)
        monkeypatch.setenv("REPRO_TILE_ANTS", "7")
        warm = run_study(tiny_study(), cache=cache)
        assert warm.cache_hits == 3 and warm.simulated_trials == 0
        assert cold.table.equals(warm.table)

    def test_tiled_spilled_table_identical(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TILE_ANTS", "none")
        untiled = run_study(tiny_study())
        monkeypatch.setenv("REPRO_TILE_ANTS", "7")
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path / "spills"))
        monkeypatch.setenv("REPRO_SPILL_ROWS", "1")
        tiled_spilled = run_study(tiny_study())
        assert isinstance(tiled_spilled.table.column("n"), np.memmap)
        assert untiled.table.equals(tiled_spilled.table)
