"""R-rules: the registry cross-checker against broken fixture trees.

Each test builds a miniature repo layout in ``tmp_path`` —
``src/repro/api/{algorithms,processes,registry}.py``, the golden helper,
the digest file, a parity test module — breaks exactly one contract, and
asserts the matching R-rule fires (and nothing else does on the healthy
variant).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lintkit import LintConfig, run_registry_checks

REPO_ROOT = Path(__file__).resolve().parent.parent

REGISTRY_PY = """\
CRITERIA = {"good": 1, "good_settled": 2, "good_healthy": 3, "unanimous": 4}
"""

ALGORITHMS_PY = """\
def _params(scenario, **defaults):
    return defaults


def _alpha_kwargs(scenario):
    return _params(scenario, matcher="v2", rate=1.0)


def _alpha_fast(scenario, source):
    return _alpha_kwargs(scenario)


def _alpha_batch(scenarios):
    return [_alpha_fast(s, None) for s in scenarios]


def _beta_agent(scenario):
    return scenario.params.get("beta_power", 2.0)


def register_builtin_algorithms(registry):
    registry.register(
        "alpha",
        "fixture kernel",
        fast_kernel=_alpha_fast,
        batch_kernel=_alpha_batch,
        params=("matcher", "rate"),
    )
    registry.register(
        "beta",
        "fixture agent",
        agent_builder=_beta_agent,
        params=("beta_power",),
    )
"""

GOLDEN_PY = """\
def golden_cases():
    cases = {
        "alpha_clean": lambda: _case(algorithm="alpha"),
    }
    return cases
"""

PARITY_TEST_PY = """\
def test_alpha_parity():
    assert run("alpha") == run_fast("alpha")
"""

DIGESTS = {"alpha_clean": "0" * 64}


def build_tree(
    tmp_path: Path,
    algorithms: str = ALGORITHMS_PY,
    golden: str = GOLDEN_PY,
    digests: dict | None = None,
    parity: str = PARITY_TEST_PY,
) -> Path:
    api = tmp_path / "src" / "repro" / "api"
    api.mkdir(parents=True)
    (api / "algorithms.py").write_text(algorithms)
    (api / "registry.py").write_text(REGISTRY_PY)
    helpers = tmp_path / "tests" / "helpers"
    helpers.mkdir(parents=True)
    (helpers / "golden.py").write_text(golden)
    golden_dir = tmp_path / "tests" / "golden"
    golden_dir.mkdir()
    (golden_dir / "digests.json").write_text(
        json.dumps(DIGESTS if digests is None else digests)
    )
    (tmp_path / "tests" / "test_fast_parity.py").write_text(parity)
    return tmp_path


def check(root: Path):
    return run_registry_checks(root, LintConfig(root=root, registry_checks=True))


def rules_of(findings):
    return sorted({f.rule for f in findings})


def test_healthy_fixture_tree_is_clean(tmp_path):
    assert check(build_tree(tmp_path)) == []


def test_r301_undeclared_accepted_param(tmp_path):
    broken = ALGORITHMS_PY.replace('params=("matcher", "rate"),', "")
    findings = check(build_tree(tmp_path, algorithms=broken))
    assert rules_of(findings) == ["R301"]
    assert "alpha" in findings[0].message and "rate" in findings[0].message


def test_r301_phantom_declared_param(tmp_path):
    broken = ALGORITHMS_PY.replace(
        'params=("beta_power",),', 'params=("beta_power", "ghost"),'
    )
    findings = check(build_tree(tmp_path, algorithms=broken))
    assert rules_of(findings) == ["R301"]
    assert "ghost" in findings[0].message


def test_r301_follows_helper_call_chain(tmp_path):
    """Params accepted two hops away (kernel -> kwargs -> _params) count."""
    broken = ALGORITHMS_PY.replace('rate=1.0', 'rate=1.0, extra=0')
    findings = check(build_tree(tmp_path, algorithms=broken))
    assert rules_of(findings) == ["R301"]
    assert "extra" in findings[0].message


def test_r302_batch_kernel_without_golden_case(tmp_path):
    golden = GOLDEN_PY.replace('"alpha_clean": lambda: _case(algorithm="alpha"),', "")
    # An empty-but-present cases dict still parses as the case table.
    golden = golden.replace("cases = {", 'cases = {\n        "other": lambda: _case(),')
    findings = check(build_tree(tmp_path, golden=golden, digests={"other": "0" * 64}))
    assert rules_of(findings) == ["R302"]
    assert "alpha" in findings[0].message


def test_r302_case_without_committed_digest(tmp_path):
    findings = check(build_tree(tmp_path, digests={}))
    assert "R302" in rules_of(findings)
    assert any("alpha_clean" in f.message for f in findings)


def test_r302_stale_digest_entry(tmp_path):
    digests = dict(DIGESTS, ghost_case="f" * 64)
    findings = check(build_tree(tmp_path, digests=digests))
    assert rules_of(findings) == ["R302"]
    assert "ghost_case" in findings[0].message


def test_r303_fast_kernel_without_parity_test(tmp_path):
    # A fast-only entry (no batch kernel, so no golden case naming it)
    # that no parity-bearing test module mentions.
    algorithms = ALGORITHMS_PY.replace("        batch_kernel=_alpha_batch,\n", "")
    golden = GOLDEN_PY.replace(
        '"alpha_clean": lambda: _case(algorithm="alpha"),',
        '"other": lambda: _case(),',
    )
    parity = PARITY_TEST_PY.replace("alpha", "something_else")
    findings = check(
        build_tree(
            tmp_path,
            algorithms=algorithms,
            golden=golden,
            digests={"other": "0" * 64},
            parity=parity,
        )
    )
    assert rules_of(findings) == ["R303"]
    assert "alpha" in findings[0].message


def test_golden_case_counts_as_parity_coverage(tmp_path):
    """A kernel named by the golden case table needs no separate parity test."""
    parity = PARITY_TEST_PY.replace("alpha", "something_else")
    assert check(build_tree(tmp_path, parity=parity)) == []


def test_r304_unknown_criterion_name(tmp_path):
    broken = ALGORITHMS_PY + (
        "\nCRITERION = criterion_feature(\"good_helathy\")\n"
    )
    findings = check(build_tree(tmp_path, algorithms=broken))
    assert rules_of(findings) == ["R304"]
    assert "good_helathy" in findings[0].message


def test_r304_known_criterion_is_silent(tmp_path):
    fine = ALGORITHMS_PY + "\nCRITERION = criterion_feature(\"good_healthy\")\n"
    assert check(build_tree(tmp_path, algorithms=fine)) == []


def test_tree_without_registry_is_skipped(tmp_path):
    assert run_registry_checks(tmp_path, LintConfig(root=tmp_path)) == []


# -- the real repository ------------------------------------------------------


def test_real_registry_cross_checks_are_clean():
    findings = run_registry_checks(REPO_ROOT, LintConfig(root=REPO_ROOT))
    assert findings == [], "\n" + "\n".join(f.render() for f in findings)


def test_real_registry_declares_params_for_every_entry():
    """Runtime view: the declarative field is populated on the registry."""
    from repro.api import REGISTRY

    with_params = {e.name for e in REGISTRY if e.param_names}
    assert {"simple", "optimal", "quorum", "tagged_recruitment"} <= with_params
    assert REGISTRY.get("simple").param_names == ("kernel_backend", "matcher")
    assert REGISTRY.get("initial_split").param_names == ()
