"""Tests for the rumor-spreading baseline."""

import networkx as nx
import numpy as np
import pytest

from repro.baselines.rumor import (
    RumorMode,
    expected_push_rounds,
    rumor_rounds,
    spread_on_graph,
)
from repro.exceptions import ConfigurationError


class TestCompleteGraph:
    @pytest.mark.parametrize(
        "mode", [RumorMode.PUSH, RumorMode.PULL, RumorMode.PUSH_PULL]
    )
    def test_completes(self, mode, rng):
        rounds = rumor_rounds(256, rng, mode)
        assert 1 <= rounds < 200

    def test_already_informed(self, rng):
        assert rumor_rounds(8, rng, initial_informed=8) == 0

    def test_push_matches_karp_estimate(self, rng):
        n = 4096
        measured = np.median([rumor_rounds(n, rng) for _ in range(10)])
        estimate = expected_push_rounds(n)
        assert abs(measured - estimate) <= 0.35 * estimate

    def test_push_pull_not_slower_than_push(self, rng):
        n = 2048
        push = np.median([rumor_rounds(n, rng, RumorMode.PUSH) for _ in range(10)])
        both = np.median(
            [rumor_rounds(n, rng, RumorMode.PUSH_PULL) for _ in range(10)]
        )
        assert both <= push

    def test_log_growth(self, rng):
        medians = [
            np.median([rumor_rounds(n, rng) for _ in range(10)])
            for n in (256, 1024, 4096)
        ]
        increments = np.diff(medians)
        assert all(0 <= inc <= 6 for inc in increments)

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            rumor_rounds(0, rng)
        with pytest.raises(ConfigurationError):
            rumor_rounds(4, rng, initial_informed=0)


class TestGraphSpread:
    def test_complete_graph_similar_to_direct(self, rng):
        graph = nx.complete_graph(256)
        rounds = spread_on_graph(graph, 0, rng)
        direct = rumor_rounds(256, rng)
        assert abs(rounds - direct) <= max(rounds, direct)  # same ballpark

    def test_path_graph_is_slow(self, rng):
        path = nx.path_graph(64)
        complete = nx.complete_graph(64)
        slow = spread_on_graph(path, 0, rng)
        fast = spread_on_graph(complete, 0, rng)
        assert slow > 2 * fast  # diameter dominates

    def test_star_graph_pull_completes(self, rng):
        star = nx.star_graph(32)
        rounds = spread_on_graph(star, 0, rng, RumorMode.PUSH_PULL)
        assert rounds >= 1

    def test_disconnected_rejected(self, rng):
        graph = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(ConfigurationError):
            spread_on_graph(graph, 0, rng)

    def test_missing_source_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            spread_on_graph(nx.complete_graph(4), 99, rng)

    def test_empty_graph_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            spread_on_graph(nx.Graph(), 0, rng)


class TestEstimate:
    def test_expected_push_rounds_small(self):
        assert expected_push_rounds(1) == 0.0
        assert expected_push_rounds(2) > 0
