"""Tests for measurement-noise injection."""

import numpy as np
import pytest

from repro.core.colony import simple_factory
from repro.core.simple import SimpleAnt
from repro.exceptions import ConfigurationError
from repro.model.actions import GoResult, RecruitResult, SearchResult
from repro.sim.noise import CountNoise, NoisyAnt, with_noise
from repro.sim.run import build_colony, run_trial


class RecordingAnt(SimpleAnt):
    """SimpleAnt that also logs raw observed results."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.seen = []

    def observe(self, result):
        self.seen.append(result)
        super().observe(result)


class TestCountNoise:
    def test_null_noise(self):
        noise = CountNoise()
        assert noise.is_null
        assert noise.perturb_count(5, 10, np.random.default_rng(0)) == 5
        assert noise.perturb_quality(1.0, np.random.default_rng(0)) == 1.0

    def test_unbiasedness(self, rng):
        noise = CountNoise(relative_sigma=0.2, absolute_sigma=1.0)
        samples = [noise.perturb_count(50, 1000, rng) for _ in range(4000)]
        assert abs(np.mean(samples) - 50) < 1.0

    def test_clamped_to_range(self, rng):
        noise = CountNoise(relative_sigma=3.0, absolute_sigma=10.0)
        samples = [noise.perturb_count(5, 10, rng) for _ in range(500)]
        assert min(samples) >= 0
        assert max(samples) <= 10

    def test_quality_flip_probability(self, rng):
        noise = CountNoise(quality_flip_prob=0.25)
        flips = sum(
            noise.perturb_quality(1.0, rng) == 0.0 for _ in range(4000)
        )
        assert 0.2 < flips / 4000 < 0.3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CountNoise(relative_sigma=-1)
        with pytest.raises(ConfigurationError):
            CountNoise(quality_flip_prob=1.5)


class TestNoisyAnt:
    def make(self, noise, seed=0):
        inner = RecordingAnt(0, 16, np.random.default_rng(seed))
        return inner, NoisyAnt(inner, noise, np.random.default_rng(seed + 1))

    def test_null_noise_passes_through(self):
        inner, noisy = self.make(CountNoise())
        result = SearchResult(nest=1, quality=1.0, count=7)
        noisy.observe(result)
        assert inner.seen[0] is result

    def test_counts_distorted(self):
        inner, noisy = self.make(CountNoise(absolute_sigma=50.0))
        noisy.observe(SearchResult(nest=1, quality=1.0, count=8))
        seen = inner.seen[0]
        assert isinstance(seen, SearchResult)
        assert seen.nest == 1  # identity never distorted
        assert 0 <= seen.count <= 16

    def test_recruit_nest_id_never_distorted(self):
        # The recruited-to nest is communication, not measurement.
        inner, noisy = self.make(CountNoise(relative_sigma=5.0))
        noisy.observe(SearchResult(nest=2, quality=1.0, count=8))
        noisy.observe(RecruitResult(nest=3, home_count=10))
        seen = inner.seen[1]
        assert seen.nest == 3

    def test_go_result_distortion_preserves_nest(self):
        inner, noisy = self.make(CountNoise(absolute_sigma=4.0))
        noisy.observe(SearchResult(nest=2, quality=1.0, count=8))
        noisy.observe(RecruitResult(nest=2, home_count=10))
        noisy.observe(GoResult(nest=2, count=5, quality=1.0))
        seen = inner.seen[2]
        assert isinstance(seen, GoResult)
        assert seen.nest == 2

    def test_delegation(self):
        inner, noisy = self.make(CountNoise(relative_sigma=0.1))
        noisy.observe(SearchResult(nest=1, quality=1.0, count=7))
        assert noisy.committed_nest == inner.committed_nest == 1
        assert noisy.state_label() == inner.state_label()
        assert noisy.settled == inner.settled


class TestWithNoise:
    def test_null_noise_returns_same_ants(self, rng):
        colony = build_colony(simple_factory(), 4, rng)
        assert with_noise(colony, CountNoise(), rng) == colony

    def test_wrapping(self, rng):
        colony = build_colony(simple_factory(), 4, rng)
        wrapped = with_noise(colony, CountNoise(relative_sigma=0.1), rng)
        assert all(isinstance(a, NoisyAnt) for a in wrapped)

    def test_noisy_colony_still_converges(self, all_good_4):
        result = run_trial(
            simple_factory(),
            64,
            all_good_4,
            seed=2,
            max_rounds=4000,
            noise=CountNoise(relative_sigma=0.5),
        )
        assert result.converged
