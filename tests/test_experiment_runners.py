"""Smoke tests for every experiment runner (quick grids).

These verify each E* runner executes end-to-end, returns a populated table,
and — where the claim admits a cheap check — that the reproduction
assertion holds at quick scale.
"""

import pytest

from repro.analysis.tables import Table
from repro.experiments import RUNNERS
from repro.experiments import (
    e01_lower_bound,
    e02_recruitment,
    e03_optimal_dropout,
    e05_simple_gap,
)


# Runners too slow for per-commit testing at quick scale are exercised with
# custom tiny grids below instead of their quick defaults.
FAST_ENOUGH = ["E1", "E2", "E3", "E5", "E6", "E7", "E4"]


@pytest.mark.parametrize("experiment_id", FAST_ENOUGH)
def test_runner_produces_table(experiment_id):
    table = RUNNERS[experiment_id](quick=True)
    assert isinstance(table, Table)
    assert table.n_rows > 0
    assert table.render()


class TestReproductionChecksAtQuickScale:
    def test_e1_lower_bound_never_beaten(self):
        table = e01_lower_bound.run(quick=True, trials=5, sizes=(128, 512))
        assert all(row[-1] == "yes" for row in table._rows)

    def test_e2_lemma_2_1_holds(self):
        table = e02_recruitment.run(quick=True, trials=300, sizes=(2, 16, 64))
        assert all(row[-1] == "yes" for row in table._rows)

    def test_e3_dropout_bound_holds(self):
        table = e03_optimal_dropout.run(
            quick=True, trials=12, configs=((512, 8),)
        )
        assert all(row[-1] == "yes" for row in table._rows)

    def test_e5_initial_gap_holds(self):
        table = e05_simple_gap.run(
            quick=True, trials=3000, configs=((256, 4), (1024, 8))
        )
        assert all(row[-1] == "yes" for row in table._rows)


class TestSlowRunnersTinyGrids:
    def test_e4b_strict_ablation(self):
        from repro.experiments import e04_optimal_scaling

        table = e04_optimal_scaling.run_strict_ablation(
            quick=True, configs=((64, 2),), trials=4
        )
        assert table.n_rows == 1

    def test_e8_comparison(self):
        from repro.experiments import e08_comparison

        table = e08_comparison.run(
            quick=True, n=64, k_values=(4,), trials=4, agent_trials=3,
            uniform_max_rounds=2000,
        )
        assert table.n_rows == 5  # five strategies

    def test_e9_adaptive(self):
        from repro.experiments import e09_adaptive

        table = e09_adaptive.run(
            quick=True, n=128, k_values=(8,), trials=4, agent_trials=2
        )
        assert table.n_rows == 4

    def test_e10_nonbinary(self):
        from repro.experiments import e10_nonbinary

        table = e10_nonbinary.run(
            quick=True, n=64, gaps=(0.4,), weights=(2.0,), trials=5
        )
        assert table.n_rows == 1

    def test_e11_noise(self):
        from repro.experiments import e11_noise

        table = e11_noise.run(
            quick=True, n=128, sigmas=(0.0, 0.5), encounter_trials=(32,),
            trials=4, agent_trials=2,
        )
        assert table.n_rows == 3

    def test_e12_faults(self):
        from repro.experiments import e12_faults

        table = e12_faults.run(
            quick=True, n=64, crash_fractions=(0.0, 0.2),
            byzantine_fractions=(), trials=3,
        )
        assert table.n_rows >= 3

    def test_e13_asynchrony(self):
        from repro.experiments import e13_asynchrony

        table = e13_asynchrony.run(quick=True, n=64, delays=(0.0, 0.2), trials=3)
        assert table.n_rows == 2

    def test_e14_polya(self):
        from repro.experiments import e14_polya

        table = e14_polya.run(quick=True, n=64, trials=30, urn_trials=30)
        assert table.n_rows == 4
