"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


def pytest_configure(config: pytest.Config) -> None:
    # The suite exercises the deprecated direct entry points
    # (run_trial/run_trials, repro.fast simulate_* imports) on purpose —
    # they are the substrate under test.  Filter the deprecation timeline's
    # warnings here; tests/test_deprecations.py asserts they still fire.
    config.addinivalue_line(
        "filterwarnings",
        "ignore:calling run_trial:DeprecationWarning",
    )
    config.addinivalue_line(
        "filterwarnings",
        "ignore:importing simulate_:DeprecationWarning",
    )
    config.addinivalue_line(
        "markers",
        "slow: large-n scale smokes, skipped unless REPRO_RUN_SLOW=1 "
        "(the CI scale-smoke job opts in)",
    )

from repro.model.environment import Environment
from repro.model.nests import NestConfig
from repro.sim.rng import RandomSource


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for direct-randomness tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def shm_watch():
    """Fail the test if it leaves new shared-memory segments behind.

    Scans ``/dev/shm`` for segment files before and after the test body
    (``psm_*`` are Python's anonymous segments, ``repro*`` the runner's
    parent-named ones).  Cleanup is asynchronous — pool teardown and the
    resource tracker can lag a beat — so leaked candidates are re-polled
    briefly before failing.
    """
    import time
    from pathlib import Path

    root = Path("/dev/shm")
    if not root.is_dir():  # pragma: no cover - non-Linux fallback
        yield
        return

    def scan() -> set:
        try:
            return {
                p.name
                for p in root.iterdir()
                if p.name.startswith(("psm_", "repro"))
            }
        except OSError:  # pragma: no cover - raced directory teardown
            return set()

    before = scan()
    yield
    leaked = scan() - before
    for _ in range(100):
        if not leaked:
            break
        time.sleep(0.05)
        leaked = scan() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


@pytest.fixture
def all_good_4() -> NestConfig:
    """Four candidate nests, all good (the pure-competition workload)."""
    return NestConfig.all_good(4)


@pytest.fixture
def mixed_nests() -> NestConfig:
    """Four candidate nests: 1 and 3 good, 2 and 4 bad."""
    return NestConfig.binary(4, {1, 3})


@pytest.fixture
def single_good_8() -> NestConfig:
    """Eight nests with a single good one (the lower-bound workload)."""
    return NestConfig.single_good(8, good_nest=3)


@pytest.fixture
def small_environment(mixed_nests) -> Environment:
    """A 6-ant environment over the mixed nest configuration."""
    return Environment(6, mixed_nests)


@pytest.fixture
def source() -> RandomSource:
    """A seeded random source."""
    return RandomSource(999)
