"""Tests for the colony factories."""

import numpy as np

from repro.core.colony import (
    informed_spread_factory,
    optimal_factory,
    simple_factory,
)
from repro.core.lower_bound import IgnorantPolicy, InformedSpreadAnt
from repro.core.optimal import OptimalAnt
from repro.core.simple import SimpleAnt
from repro.sim.run import build_colony


class TestFactories:
    def test_simple(self, rng):
        colony = build_colony(simple_factory(good_threshold=0.7), 3, rng)
        assert all(isinstance(a, SimpleAnt) for a in colony)
        assert all(a.good_threshold == 0.7 for a in colony)

    def test_optimal(self, rng):
        colony = build_colony(optimal_factory(strict_pseudocode=True), 3, rng)
        assert all(isinstance(a, OptimalAnt) for a in colony)
        assert all(a.strict_pseudocode for a in colony)

    def test_optimal_defaults(self, rng):
        colony = build_colony(optimal_factory(), 2, rng)
        assert not colony[0].strict_pseudocode

    def test_informed_spread(self, rng):
        colony = build_colony(
            informed_spread_factory(IgnorantPolicy.MIXED), 3, rng
        )
        assert all(isinstance(a, InformedSpreadAnt) for a in colony)
        assert all(a.policy is IgnorantPolicy.MIXED for a in colony)

    def test_ant_ids_sequential(self, rng):
        colony = build_colony(simple_factory(), 4, rng)
        assert [a.ant_id for a in colony] == [0, 1, 2, 3]

    def test_shared_rng(self, rng):
        colony = build_colony(simple_factory(), 4, rng)
        assert all(a.rng is rng for a in colony)
