"""Tests tying the experiment registry, runners, and bench files together."""

from pathlib import Path

import pytest

from repro.analysis.experiments import EXPERIMENTS, all_bench_files, get_experiment
from repro.experiments import RUNNERS

BENCH_DIR = Path(__file__).parent.parent / "benchmarks"


class TestRegistry:
    def test_all_paper_claims_covered(self):
        # One experiment per quantitative claim of the paper (DESIGN.md §4).
        expected = {
            "E1", "E2", "E3a", "E3b", "E4", "E4b", "E5", "E6", "E7", "E8",
            "E9", "E10", "E11", "E12", "E13", "E14",
        }
        assert set(EXPERIMENTS) == expected

    def test_get_experiment(self):
        spec = get_experiment("E7")
        assert "5.11" in spec.claim
        assert spec.bench_file == "bench_simple_scaling.py"
        with pytest.raises(KeyError):
            get_experiment("E99")

    def test_every_bench_file_exists(self):
        for bench_file in all_bench_files():
            assert (BENCH_DIR / bench_file).is_file(), bench_file

    def test_specs_are_complete(self):
        for spec in EXPERIMENTS.values():
            assert spec.claim
            assert spec.measures
            assert spec.bench_file.endswith(".py")


class TestRunnersMap:
    def test_runner_ids_match_registry(self):
        # E3a/E3b share the E3 runner; E4/E4b both present.
        registry_bases = {eid.rstrip("ab") or eid for eid in EXPERIMENTS}
        runner_bases = {eid.rstrip("b") if eid != "E4b" else "E4" for eid in RUNNERS}
        assert {"E1", "E2", "E3", "E4", "E5", "E6", "E7"} <= runner_bases
        assert registry_bases <= {f"E{i}" for i in range(1, 15)}

    def test_all_runners_callable(self):
        for runner in RUNNERS.values():
            assert callable(runner)
