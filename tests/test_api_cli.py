"""Smoke tests for the ``python -m repro.api`` command line."""

import json

from repro.api.__main__ import main


class TestApiCli:
    def test_list_shows_registry(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("simple", "optimal", "spread", "quorum", "rumor", "polya"):
            assert name in out
        assert "[fast+agent]" in out or "fast+agent" in out

    def test_single_run_fast(self, capsys):
        code = main(
            [
                "--algorithm", "simple", "--backend", "fast",
                "--n", "64", "--k", "4", "--good", "1,3", "--seed", "7",
                "--max-rounds", "5000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "backend=fast" in out
        assert "converged" in out

    def test_trials_aggregate_on_agent(self, capsys):
        code = main(
            [
                "--algorithm", "simple", "--backend", "agent",
                "--n", "32", "--k", "2", "--seed", "1",
                "--max-rounds", "3000", "--trials", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "success" in out

    def test_json_output_with_params(self, capsys):
        code = main(
            [
                "--algorithm", "optimal",
                "--n", "32", "--k", "2", "--seed", "2",
                "--max-rounds", "4000",
                "--param", "strict_pseudocode=false",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"]["algorithm"] == "optimal"
        assert payload["reports"][0]["converged"] is True

    def test_unknown_algorithm_is_an_error(self, capsys):
        assert main(["--algorithm", "nope", "--n", "8", "--k", "2"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_missing_algorithm_is_an_error(self, capsys):
        assert main([]) == 2

    def test_unsupported_backend_combination_is_an_error(self, capsys):
        assert main(["--algorithm", "rumor", "--backend", "agent"]) == 2
        assert "no agent-engine" in capsys.readouterr().err
