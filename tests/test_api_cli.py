"""Smoke tests for the ``python -m repro.api`` command line."""

import json

from repro.api.__main__ import main


class TestApiCli:
    def test_list_shows_registry(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("simple", "optimal", "spread", "quorum", "rumor", "polya"):
            assert name in out
        assert "[fast+agent]" in out or "fast+agent" in out

    def test_single_run_fast(self, capsys):
        code = main(
            [
                "--algorithm", "simple", "--backend", "fast",
                "--n", "64", "--k", "4", "--good", "1,3", "--seed", "7",
                "--max-rounds", "5000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "backend=fast" in out
        assert "converged" in out

    def test_trials_aggregate_on_agent(self, capsys):
        code = main(
            [
                "--algorithm", "simple", "--backend", "agent",
                "--n", "32", "--k", "2", "--seed", "1",
                "--max-rounds", "3000", "--trials", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "success" in out

    def test_json_output_with_params(self, capsys):
        code = main(
            [
                "--algorithm", "optimal",
                "--n", "32", "--k", "2", "--seed", "2",
                "--max-rounds", "4000",
                "--param", "strict_pseudocode=false",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"]["algorithm"] == "optimal"
        assert payload["reports"][0]["converged"] is True

    def test_unknown_algorithm_is_an_error(self, capsys):
        assert main(["--algorithm", "nope", "--n", "8", "--k", "2"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_missing_algorithm_is_an_error(self, capsys):
        assert main([]) == 2

    def test_unsupported_backend_combination_is_an_error(self, capsys):
        assert main(["--algorithm", "rumor", "--backend", "agent"]) == 2
        assert "no agent-engine" in capsys.readouterr().err


class TestSweepCli:
    def study_json(self, tmp_path) -> str:
        from repro.api import Study, Sweep, grid, nests_spec

        study = Study(
            name="cli-study",
            sweep=Sweep(
                base={
                    "algorithm": "simple",
                    "nests": nests_spec("all_good", k=2),
                    "seed": 3,
                    "max_rounds": 5_000,
                },
                axes=(grid("n", (16, 32)),),
            ),
            trials=2,
            metrics=("n_trials", "success_rate"),
        )
        path = tmp_path / "study.json"
        path.write_text(study.to_json(), encoding="utf-8")
        return str(path)

    def test_list_studies(self, capsys):
        assert main(["--list-studies"]) == 0
        out = capsys.readouterr().out
        for name in ("E1", "E7", "E14"):
            assert name in out

    def test_sweep_study_file_csv(self, tmp_path, capsys):
        assert main(["sweep", self.study_json(tmp_path), "--no-cache", "--csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "n,n_trials,success_rate"
        assert len(lines) == 3

    def test_sweep_uses_and_reports_cache(self, tmp_path, capsys):
        spec = self.study_json(tmp_path)
        cache_dir = str(tmp_path / "cache")
        assert main(["sweep", spec, "--cache-dir", cache_dir]) == 0
        assert "2 computed" in capsys.readouterr().out
        assert main(["sweep", spec, "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "2 cached" in out
        assert "0 trials simulated" in out

    def test_sweep_registered_study_json_output(self, capsys):
        assert main(
            ["sweep", "E13", "--quick", "--no-cache", "--workers", "1", "--json"]
        ) == 0
        # NDJSON: one event line per completed cell, then the summary line.
        lines = capsys.readouterr().out.strip().splitlines()
        payload = json.loads(lines[-1])
        assert payload["study"]["name"] == "E13"
        assert payload["cells"] == 2
        assert payload["simulated_trials"] > 0
        events = [json.loads(line) for line in lines[:-1]]
        assert [event["cell"] for event in events] == [0, 1]
        assert all(event["cached"] is False for event in events)
        assert sum(event["simulated"] for event in events) == (
            payload["simulated_trials"]
        )

    def test_sweep_json_stream_matches_summary_table(self, tmp_path, capsys):
        spec = self.study_json(tmp_path)
        cache_dir = str(tmp_path / "cache")
        assert main(["sweep", spec, "--cache-dir", cache_dir, "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        events = [json.loads(line) for line in lines[:-1]]
        summary = json.loads(lines[-1])
        # The streamed rows are exactly the summary table's rows.
        table = summary["table"]
        for index, event in enumerate(events):
            for column, values in table.items():
                assert event["row"].get(column) == values[index]
        # Warm re-run: same stream, now all cache hits.
        assert main(["sweep", spec, "--cache-dir", cache_dir, "--json"]) == 0
        warm_lines = capsys.readouterr().out.strip().splitlines()
        warm_events = [json.loads(line) for line in warm_lines[:-1]]
        assert all(event["cached"] for event in warm_events)
        assert json.loads(warm_lines[-1])["table"] == table

    def test_sweep_unknown_study_is_an_error(self, capsys):
        assert main(["sweep", "E99", "--no-cache"]) == 2
        assert "unknown study" in capsys.readouterr().err

    def test_registered_name_beats_stray_file(self, tmp_path, monkeypatch, capsys):
        # A stray cwd file named like a study must not shadow the registry.
        monkeypatch.chdir(tmp_path)
        (tmp_path / "E13").write_text("not json", encoding="utf-8")
        assert main(["sweep", "E13", "--quick", "--no-cache", "--csv"]) == 0
        assert "delay" in capsys.readouterr().out
