"""Robustness demo: a colony with imperfect ants in an imperfect world.

Section 6 of the paper conjectures Algorithm 3 survives noisy population
estimates, crashed and even malicious ants, and partial asynchrony.  This
example turns all of it on at once:

- every ant estimates nest populations by *encounter rates* (Pratt 2005)
  instead of exact counts,
- a fraction of ants crash mid-hunt (their bodies keep soaking up tandem
  runs at home),
- a Byzantine ant perpetually recruits to a bad nest,
- and every ant randomly stalls between rounds (partial asynchrony).

The healthy majority still agrees on a good nest.  The defaults are near a
real cliff, though: raise ``--byzantine`` to ~0.01 (two bad ants in 192!)
and the combination of Byzantine propaganda with asynchrony reliably drags
the whole colony to the bad nest — Algorithm 3 never re-assesses quality
after the initial search, so persistent full-rate recruiters beat honest
proportional feedback once delays weaken it.  Experiment E12 maps this
cliff; EXPERIMENTS.md discusses it.

Usage::

    python examples/noisy_colony.py [--n 192] [--crash 0.1] [--byzantine 0.005]
"""

from __future__ import annotations

import argparse

from repro import DelayModel, FaultPlan, NestConfig, Scenario, run_scenario
from repro.extensions.estimation import EncounterNoise, EncounterRateEstimator
from repro.sim.faults import CrashMode


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=192, help="colony size")
    parser.add_argument("--k", type=int, default=6, help="candidate nests")
    parser.add_argument("--crash", type=float, default=0.10, help="crash fraction")
    parser.add_argument("--byzantine", type=float, default=0.005, help="byzantine fraction")
    parser.add_argument("--delay", type=float, default=0.05, help="per-round stall probability")
    parser.add_argument("--samples", type=int, default=64, help="encounter samples per assessment")
    parser.add_argument("--seed", type=int, default=42, help="random seed")
    args = parser.parse_args()

    # Nests 1..k-1 good, nest k bad (the Byzantine ants' target of choice).
    nests = NestConfig.binary(args.k, set(range(1, args.k)))
    n_crash = int(round(args.crash * args.n))
    n_byz = int(round(args.byzantine * args.n))
    print(
        f"colony of {args.n}: {n_crash} will crash, {n_byz} are Byzantine, "
        f"everyone stalls w.p. {args.delay}/round and senses populations via "
        f"{args.samples}-sample encounter rates\n"
    )

    # Every perturbation is part of the declarative scenario; the API routes
    # it to the agent engine (the only one that can inject faults/delays).
    scenario = Scenario(
        algorithm="simple",
        n=args.n,
        nests=nests,
        seed=args.seed,
        max_rounds=50_000,
        noise=EncounterNoise(
            estimator=EncounterRateEstimator(trials=args.samples, capacity=2 * args.n)
        ),
        fault_plan=FaultPlan(
            crash_fraction=args.crash,
            byzantine_fraction=args.byzantine,
            crash_mode=CrashMode.AT_HOME,
            crash_round_range=(5, 40),
        ),
        delay_model=DelayModel(args.delay) if args.delay > 0 else None,
        criterion="good_healthy",
    )
    result = run_scenario(scenario)

    if result.converged:
        print(
            f"healthy ants agreed on nest {result.chosen_nest} "
            f"(quality {nests.quality(result.chosen_nest or 1):.0f}) "
            f"after {result.converged_round} rounds"
        )
    else:
        print(
            f"no agreement on a good nest within {result.rounds_executed} "
            f"rounds (final status: {result.extras['status']}) — you likely "
            "crossed the Byzantine/asynchrony cliff described above; try "
            "fewer faults"
        )
    print(f"final nest populations (home first): {result.final_counts.tolist()}")


if __name__ == "__main__":
    main()
