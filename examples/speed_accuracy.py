"""Speed vs accuracy: choosing the *best* home, not just a good one.

Real nest sites are not simply good or bad — they differ in darkness,
entrance width, cavity size.  Section 6 of the paper sketches how Algorithm
3 extends to real-valued qualities by weighting recruitment with quality;
Pratt & Sumpter (2006) showed real colonies tune exactly this trade-off:
recruit more carefully → better choices, slower moves.

This example declares the quality-weight sweep as one
:class:`repro.api.Study` over a three-site scenario (one clearly best
site, one mediocre, one poor) and prints the accuracy/speed frontier the
E10 metric records.

Usage::

    python examples/speed_accuracy.py [--n 192] [--trials 20]
"""

from __future__ import annotations

import argparse

from repro.analysis.tables import Table
from repro.api import Study, Sweep, grid, nests_spec, ref, run_study


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=192, help="colony size")
    parser.add_argument("--trials", type=int, default=20, help="runs per weight")
    parser.add_argument("--seed", type=int, default=11, help="base seed")
    parser.add_argument(
        "--weights",
        type=float,
        nargs="+",
        default=[0.0, 1.0, 2.0, 4.0],
        help="quality weights to sweep",
    )
    args = parser.parse_args()

    qualities = [0.9, 0.6, 0.3]  # site 1 is the right answer
    print(
        f"sites: {[f'n{i+1}: q={q}' for i, q in enumerate(qualities)]}; "
        f"colony n={args.n}\n"
    )

    # One declaration: the weight grid over a graded three-site world.  The
    # e10_outcomes metric (registered by the E10 experiment) records wins,
    # agreements and the agreed-round median per cell.
    import repro.experiments.e10_nonbinary  # noqa: F401  (registers the metric)

    study = Study(
        name="example-speed-accuracy",
        description="quality-weight frontier on a graded three-site world",
        sweep=Sweep(
            base={
                "algorithm": "quality_weighted",
                "n": args.n,
                "nests": nests_spec("graded", qualities=qualities),
                "seed": args.seed,
                "max_rounds": 30_000,
                "params": {"quality_weight": ref("weight")},
                "criterion": "unanimous",
            },
            axes=(grid("weight", args.weights),),
        ),
        trials=args.trials,
        metrics=("n_trials", "e10_outcomes"),
    )
    result = run_study(study).table

    table = Table(
        "Speed/accuracy frontier (quality-weighted Algorithm 3)",
        ["quality weight", "P(best site)", "P(agreed)", "median rounds"],
    )
    for row in result.rows():
        table.add_row(
            row["weight"],
            row["n_best_wins"] / max(row["n_agreed"], 1),
            row["n_agreed"] / row["n_trials"],
            row["median_rounds_agreed"],
        )
    print(table.render())
    print(
        "\nweight 0 ignores quality (any acceptable site wins, set by the "
        "initial search split); larger weights buy accuracy with rounds — "
        "the colony-level dial Pratt & Sumpter measured in real ants."
    )


if __name__ == "__main__":
    main()
