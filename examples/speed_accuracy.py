"""Speed vs accuracy: choosing the *best* home, not just a good one.

Real nest sites are not simply good or bad — they differ in darkness,
entrance width, cavity size.  Section 6 of the paper sketches how Algorithm
3 extends to real-valued qualities by weighting recruitment with quality;
Pratt & Sumpter (2006) showed real colonies tune exactly this trade-off:
recruit more carefully → better choices, slower moves.

This example sweeps the quality weight on a three-site scenario (one clearly
best site, one mediocre, one poor) and prints the accuracy/speed frontier.

Usage::

    python examples/speed_accuracy.py [--n 192] [--trials 20]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import NestConfig, Scenario, run_scenario
from repro.analysis.tables import Table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=192, help="colony size")
    parser.add_argument("--trials", type=int, default=20, help="runs per weight")
    parser.add_argument("--seed", type=int, default=11, help="base seed")
    parser.add_argument(
        "--weights",
        type=float,
        nargs="+",
        default=[0.0, 1.0, 2.0, 4.0],
        help="quality weights to sweep",
    )
    args = parser.parse_args()

    qualities = [0.9, 0.6, 0.3]  # site 1 is the right answer
    nests = NestConfig.graded(qualities)
    print(
        f"sites: {[f'n{i+1}: q={q}' for i, q in enumerate(qualities)]}; "
        f"colony n={args.n}\n"
    )

    table = Table(
        "Speed/accuracy frontier (quality-weighted Algorithm 3)",
        ["quality weight", "P(best site)", "P(agreed)", "median rounds"],
    )
    for weight in args.weights:
        best = 0
        agreed = 0
        rounds: list[int] = []
        for trial in range(args.trials):
            result = run_scenario(
                Scenario(
                    algorithm="quality_weighted",
                    n=args.n,
                    nests=nests,
                    seed=args.seed + 997 * trial,
                    max_rounds=30_000,
                    params={"quality_weight": weight},
                    criterion="unanimous",
                )
            )
            if result.converged:
                agreed += 1
                rounds.append(result.converged_round)
                best += int(result.chosen_nest == 1)
        table.add_row(
            weight,
            best / max(agreed, 1),
            agreed / args.trials,
            float(np.median(rounds)) if rounds else float("nan"),
        )
    print(table.render())
    print(
        "\nweight 0 ignores quality (any acceptable site wins, set by the "
        "initial search split); larger weights buy accuracy with rounds — "
        "the colony-level dial Pratt & Sumpter measured in real ants."
    )


if __name__ == "__main__":
    main()
