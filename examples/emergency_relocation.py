"""Emergency relocation: the scenario that motivates the paper.

A Temnothorax colony's rock-crevice nest has been destroyed.  Among the
candidate sites most are unsuitable (cracks, bright interiors, wide
entrances) and only a couple are good homes.  The colony must find the good
sites, reach consensus, and relocate everyone — fast, because the colony is
exposed.

This example races the paper's two algorithms on the same emergency:
Algorithm 2 ("Optimal": count-based competition, provably O(log n)) and
Algorithm 3 ("Simple": population-proportional recruitment, O(k log n)),
plus the biologically observed quorum strategy for reference.  It prints
per-strategy decision timelines and a small comparison table.

Usage::

    python examples/emergency_relocation.py [--n 256] [--k 12] [--good 2]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import NestConfig, Scenario, run_scenario
from repro.analysis.tables import Table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=256, help="colony size")
    parser.add_argument("--k", type=int, default=12, help="candidate sites")
    parser.add_argument("--good", type=int, default=2, help="number of good sites")
    parser.add_argument("--seed", type=int, default=2015, help="random seed")
    parser.add_argument("--trials", type=int, default=5, help="runs per strategy")
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    good_sites = set(
        int(i) for i in rng.choice(np.arange(1, args.k + 1), size=args.good, replace=False)
    )
    nests = NestConfig.binary(args.k, good_sites)
    print(
        f"EMERGENCY: home destroyed. {args.n} ants, {args.k} candidate sites, "
        f"only {sorted(good_sites)} habitable.\n"
    )

    # Each strategy is just a registry name; the registry supplies the right
    # default convergence criterion (all-final for Optimal, unanimity for
    # Quorum) and the agent engine runs them on identical workloads.
    strategies = [
        ("Optimal (Alg. 2)", "optimal", {}),
        ("Simple (Alg. 3)", "simple", {}),
        ("Quorum (Pratt)", "quorum", {"quorum_fraction": 0.35}),
    ]

    table = Table(
        "Relocation race (median over trials)",
        ["strategy", "median rounds", "success", "chosen sites"],
    )
    for name, algorithm, params in strategies:
        rounds: list[int] = []
        chosen: list[int] = []
        successes = 0
        for trial in range(args.trials):
            result = run_scenario(
                Scenario(
                    algorithm=algorithm,
                    n=args.n,
                    nests=nests,
                    seed=args.seed + 1000 * trial,
                    max_rounds=20_000,
                    params=params,
                ),
                backend="agent",
            )
            if result.converged:
                successes += 1
                rounds.append(result.converged_round)
                chosen.append(result.chosen_nest)
        median = float(np.median(rounds)) if rounds else float("nan")
        table.add_row(
            name,
            median,
            successes / args.trials,
            ",".join(str(c) for c in sorted(set(chosen))) or "-",
        )
        print(f"{name:18s} -> median {median:.0f} rounds, chose {sorted(set(chosen))}")

    print()
    print(table.render())
    print(
        "\nAll strategies relocate the colony to a habitable site; the paper's "
        "algorithms do it with provable round bounds, while the quorum "
        "strategy mirrors what real colonies are believed to do."
    )


if __name__ == "__main__":
    main()
