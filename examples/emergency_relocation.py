"""Emergency relocation: the scenario that motivates the paper.

A Temnothorax colony's rock-crevice nest has been destroyed.  Among the
candidate sites most are unsuitable (cracks, bright interiors, wide
entrances) and only a couple are good homes.  The colony must find the good
sites, reach consensus, and relocate everyone — fast, because the colony is
exposed.

This example races the paper's two algorithms on the same emergency:
Algorithm 2 ("Optimal": count-based competition, provably O(log n)) and
Algorithm 3 ("Simple": population-proportional recruitment, O(k log n)),
plus the biologically observed quorum strategy for reference — declared as
one three-case :class:`repro.api.Study` on the agent engine.

Usage::

    python examples/emergency_relocation.py [--n 256] [--k 12] [--good 2]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.tables import Table
from repro.api import Study, Sweep, cases, register_metric, run_study
from repro.model.nests import NestConfig


def _chosen_sites(reports, stats) -> str:
    sites = sorted({r.chosen_nest for r in reports if r.converged})
    return ",".join(str(site) for site in sites) or "-"


register_metric("example_chosen_sites", _chosen_sites)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=256, help="colony size")
    parser.add_argument("--k", type=int, default=12, help="candidate sites")
    parser.add_argument("--good", type=int, default=2, help="number of good sites")
    parser.add_argument("--seed", type=int, default=2015, help="random seed")
    parser.add_argument("--trials", type=int, default=5, help="runs per strategy")
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    good_sites = set(
        int(i) for i in rng.choice(np.arange(1, args.k + 1), size=args.good, replace=False)
    )
    nests = NestConfig.binary(args.k, good_sites)
    print(
        f"EMERGENCY: home destroyed. {args.n} ants, {args.k} candidate sites, "
        f"only {sorted(good_sites)} habitable.\n"
    )

    # Each strategy is one case of the study; the registry supplies the
    # right default convergence criterion (all-final for Optimal, unanimity
    # for Quorum) and the agent engine runs them on identical workloads.
    study = Study(
        name="example-emergency",
        description="Optimal vs Simple vs Quorum on one emergency relocation",
        sweep=Sweep(
            base={
                "n": args.n,
                "nests": {
                    "qualities": [float(q) for q in nests.qualities],
                    "good_threshold": float(nests.good_threshold),
                },
                "seed": args.seed,
                "max_rounds": 20_000,
            },
            axes=(
                cases(
                    {"strategy": "Optimal (Alg. 2)", "algorithm": "optimal"},
                    {"strategy": "Simple (Alg. 3)", "algorithm": "simple"},
                    {
                        "strategy": "Quorum (Pratt)",
                        "algorithm": "quorum",
                        "params": {"quorum_fraction": 0.35},
                    },
                ),
            ),
        ),
        trials=args.trials,
        backend="agent",
        metrics=(
            "median_rounds_converged",
            "success_rate_converged",
            "example_chosen_sites",
        ),
    )
    result = run_study(study).table

    table = Table(
        "Relocation race (median over trials)",
        ["strategy", "median rounds", "success", "chosen sites"],
    )
    for row in result.rows():
        table.add_row(
            row["strategy"],
            row["median_rounds_converged"],
            row["success_rate_converged"],
            row["example_chosen_sites"],
        )
        print(
            f"{row['strategy']:18s} -> median {row['median_rounds_converged']:.0f} "
            f"rounds, chose {row['example_chosen_sites']}"
        )

    print()
    print(table.render())
    print(
        "\nAll strategies relocate the colony to a habitable site; the paper's "
        "algorithms do it with provable round bounds, while the quorum "
        "strategy mirrors what real colonies are believed to do."
    )


if __name__ == "__main__":
    main()
