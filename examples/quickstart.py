"""Quickstart: one house-hunt, start to finish.

Runs the paper's Simple algorithm (Algorithm 3) on a colony of 128 ants
choosing among 4 candidate nests (two good, two bad), prints a round-by-
round population timeline, and reports the decision.

Usage::

    python examples/quickstart.py [--n 128] [--k 4] [--seed 7]
"""

from __future__ import annotations

import argparse

from repro import NestConfig, Scenario, run_scenario
from repro.analysis.viz import final_share_chart, population_chart


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=128, help="colony size")
    parser.add_argument("--k", type=int, default=4, help="candidate nests")
    parser.add_argument("--seed", type=int, default=7, help="random seed")
    args = parser.parse_args()

    # Odd nests are good, even nests are bad.
    good = {i for i in range(1, args.k + 1) if i % 2 == 1}
    nests = NestConfig.binary(args.k, good)
    print(f"colony: n={args.n} ants, k={args.k} nests, good nests: {sorted(good)}")

    scenario = Scenario(
        algorithm="simple",
        n=args.n,
        nests=nests,
        seed=args.seed,
        max_rounds=10_000,
        record_history=True,
    )
    # The reference (agent-based) engine, so the timeline below shows the
    # model's real round structure; backend="fast" runs the same scenario
    # orders of magnitude faster.
    result = run_scenario(scenario, backend="agent")

    print(f"\nround-by-round candidate-nest populations (c(i, r)):")
    header = "round | " + " ".join(f"n{i:<4d}" for i in range(1, args.k + 1))
    print(header)
    populations = result.population_history
    for row_index in range(populations.shape[0]):
        # Candidate nests are occupied on odd rounds (search/assessment).
        if row_index % 2 == 0:
            row = populations[row_index]
            cells = " ".join(f"{int(c):<5d}" for c in row[1:])
            print(f"{row_index + 1:5d} | {cells}")

    print()
    print("population sparklines (assessment rounds):")
    print(population_chart(populations))
    print()
    # Convergence lands on a recruitment round (everyone at the home nest),
    # so show the last assessment round's distribution instead.
    assessment_rows = populations[populations[:, 0] == 0]
    final_distribution = (
        assessment_rows[-1] if len(assessment_rows) else result.final_counts
    )
    print("distribution at the last assessment round:")
    print(final_share_chart(final_distribution))
    print()
    if result.converged:
        print(
            f"converged in {result.converged_round} rounds: all {args.n} ants "
            f"committed to nest {result.chosen_nest} "
            f"(quality {nests.quality(result.chosen_nest):.0f})"
        )
    else:
        print(f"did not converge within {result.rounds_executed} rounds")


if __name__ == "__main__":
    main()
