"""Mean-field vs reality: predicting the house-hunt from Lemma 5.3.

Lemma 5.3 gives the expected one-step change of a nest's population share
under Algorithm 3.  Iterating that expectation as a deterministic map (see
``repro.analysis.dynamics``) yields a parameter-free prediction of the
whole competition — which nest wins and roughly when — from nothing but
the initial search split.

This example runs a real colony, fits the one free constant ξ (the
effective recruitment efficiency) from the recorded history, replays the
mean-field map from the same initial condition, and prints both
trajectories side by side.

Usage::

    python examples/mean_field.py [--n 2048] [--k 5] [--seed 3]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.dynamics import dominance_steps, fit_xi, simple_mean_field
from repro.analysis.viz import sparkline
from repro.api import Scenario, run
from repro.model.nests import NestConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=2048, help="colony size")
    parser.add_argument("--k", type=int, default=5, help="candidate nests")
    parser.add_argument("--seed", type=int, default=3, help="random seed")
    args = parser.parse_args()

    nests = NestConfig.all_good(args.k)
    result = run(
        Scenario(
            algorithm="simple",
            n=args.n,
            nests=nests,
            seed=args.seed,
            max_rounds=50_000,
            record_history=True,
        ),
        backend="fast",
    )
    history = result.population_history
    assessments = history[::2].astype(float)
    shares = assessments[:, 1:] / args.n
    initial = shares[0]

    xi = fit_xi(history)
    steps = max(len(shares) - 1, 1)
    predicted = simple_mean_field(initial, steps=steps, xi=xi)

    print(
        f"colony: n={args.n}, k={args.k}; measured winner nest "
        f"{result.chosen_nest} in {result.converged_round} rounds; "
        f"fitted xi = {xi:.3f}\n"
    )
    print("nest   measured share trajectory          mean-field prediction")
    for nest in range(args.k):
        measured_line = sparkline(shares[:, nest], width=30)
        predicted_line = sparkline(predicted[:, nest], width=30)
        print(f"n{nest + 1:<4d} {measured_line}   {predicted_line}")

    mf_winner = int(np.argmax(initial)) + 1
    mf_rounds = 2 * dominance_steps(initial, xi=xi, threshold=0.95)
    agreement = "agrees" if mf_winner == result.chosen_nest else "DISAGREES"
    print(
        f"\nmean-field winner: nest {mf_winner} ({agreement} with the run); "
        f"predicted ~{mf_rounds} rounds to 95% dominance vs "
        f"{result.converged_round} measured."
    )
    print(
        "the stochastic colony can overturn small initial gaps (see E14's "
        "dominance curves); the mean-field map is exact only as n -> inf."
    )


if __name__ == "__main__":
    main()
