"""Scaling study: watch the paper's asymptotics appear in the data.

Runs both algorithms over a geometric range of colony sizes on the fast
engine, fits the growth models from :mod:`repro.analysis.scaling`, and
prints which model wins — a miniature of experiments E4/E7 (see
EXPERIMENTS.md for the full grids).

Usage::

    python examples/scaling_study.py [--k 4] [--trials 15]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.scaling import fit_models, linear_model, log_model, sqrt_model
from repro.analysis.tables import Table
from repro.api import Scenario, run_batch
from repro.model.nests import NestConfig


def median_rounds(algorithm: str, n: int, nests, trials: int, seed: int) -> float:
    scenario = Scenario(
        algorithm=algorithm, n=n, nests=nests, seed=seed, max_rounds=100_000
    )
    reports = run_batch(scenario.trials(trials), backend="fast")
    rounds = [r.converged_round for r in reports if r.converged]
    return float(np.median(rounds)) if rounds else float("nan")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--k", type=int, default=4, help="candidate nests")
    parser.add_argument("--trials", type=int, default=15, help="trials per size")
    parser.add_argument("--seed", type=int, default=5, help="base seed")
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=[128, 256, 512, 1024, 2048, 4096, 8192],
        help="colony sizes",
    )
    args = parser.parse_args()

    nests = NestConfig.all_good(args.k)
    table = Table(
        f"Convergence rounds vs n (k={args.k}, median of {args.trials} trials)",
        ["n", "Optimal (Alg. 2)", "Simple (Alg. 3)"],
    )
    optimal_medians: list[float] = []
    simple_medians: list[float] = []
    for n in args.sizes:
        opt = median_rounds("optimal", n, nests, args.trials, args.seed + 2 * n)
        sim = median_rounds("simple", n, nests, args.trials, args.seed + 2 * n + 1)
        optimal_medians.append(opt)
        simple_medians.append(sim)
        table.add_row(n, opt, sim)
    print(table.render())

    models = [log_model(), linear_model(), sqrt_model()]
    print("\ngrowth-model fits (best first, by AIC):")
    for name, series in [("Optimal", optimal_medians), ("Simple", simple_medians)]:
        fits = fit_models(models, args.sizes, series)
        print(f"  {name}:")
        for fit in fits:
            print(f"    {fit}")
    print(
        "\nthe paper predicts a + b*log(x) for both at fixed k "
        "(Theorems 4.3 and 5.11) — it should top both lists."
    )


if __name__ == "__main__":
    main()
