"""Scaling study: watch the paper's asymptotics appear in the data.

Declares one :class:`repro.api.Study` — an ``n`` grid crossed with both
algorithms on the fast engine — runs it through :func:`repro.api.run_study`
(set ``REPRO_CACHE_DIR`` to make re-runs incremental, ``REPRO_WORKERS`` to
parallelize), fits the growth models from :mod:`repro.analysis.scaling`,
and prints which model wins — a miniature of experiments E4/E7 (see
EXPERIMENTS.md for the full grids).

Usage::

    python examples/scaling_study.py [--k 4] [--trials 15]
"""

from __future__ import annotations

import argparse

from repro.analysis.scaling import fit_models, linear_model, log_model, sqrt_model
from repro.analysis.tables import Table
from repro.api import Study, Sweep, cases, expr, grid, nests_spec, run_study


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--k", type=int, default=4, help="candidate nests")
    parser.add_argument("--trials", type=int, default=15, help="trials per size")
    parser.add_argument("--seed", type=int, default=5, help="base seed")
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=[128, 256, 512, 1024, 2048, 4096, 8192],
        help="colony sizes",
    )
    args = parser.parse_args()

    # The whole sweep is one declaration: sizes x algorithms, each cell
    # keeping the historical seed layout (seed + 2n for Optimal, +2n+1 for
    # Simple).  run_study flattens it into run_batch and aggregates.
    study = Study(
        name="example-scaling",
        description="Optimal vs Simple convergence rounds across n",
        sweep=Sweep(
            base={
                "nests": nests_spec("all_good", k=args.k),
                "seed": expr(args.seed, n=2, seed_offset=1, cast="int"),
                "max_rounds": 100_000,
            },
            axes=(
                grid("n", args.sizes),
                cases(
                    {"algorithm": "optimal", "seed_offset": 0},
                    {"algorithm": "simple", "seed_offset": 1},
                ),
            ),
        ),
        trials=args.trials,
        backend="fast",
        metrics=("median_rounds_converged",),
    )
    result = run_study(study).table

    table = Table(
        f"Convergence rounds vs n (k={args.k}, median of {args.trials} trials)",
        ["n", "Optimal (Alg. 2)", "Simple (Alg. 3)"],
    )
    optimal_medians: list[float] = []
    simple_medians: list[float] = []
    for n in args.sizes:
        opt = result.value("median_rounds_converged", n=n, algorithm="optimal")
        sim = result.value("median_rounds_converged", n=n, algorithm="simple")
        optimal_medians.append(opt)
        simple_medians.append(sim)
        table.add_row(n, opt, sim)
    print(table.render())

    models = [log_model(), linear_model(), sqrt_model()]
    print("\ngrowth-model fits (best first, by AIC):")
    for name, series in [("Optimal", optimal_medians), ("Simple", simple_medians)]:
        fits = fit_models(models, args.sizes, series)
        print(f"  {name}:")
        for fit in fits:
            print(f"    {fit}")
    print(
        "\nthe paper predicts a + b*log(x) for both at fixed k "
        "(Theorems 4.3 and 5.11) — it should top both lists."
    )


if __name__ == "__main__":
    main()
