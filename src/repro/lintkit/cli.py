"""Command-line driver for reprolint.

Pure stdlib (``ast`` + ``json`` + ``argparse``) — no numpy, no repro
simulation imports — so CI can run the lint job on a bare python without
installing the scientific stack.  Do not import :mod:`.sanitize` here.

Exit codes: **0** clean, **1** findings reported, **2** usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.lintkit.catalog import RULES, explain_rule
from repro.lintkit.config import BASELINE_NAME, LintConfig, find_repo_root
from repro.lintkit.engine import lint_paths, write_baseline

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Determinism / kernel-discipline / registry-consistency lint "
            "for this repository (see docs/LINTING.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/)",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        help="print a rule's rationale with bad/good examples, then exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the one-line rule catalog, then exit",
    )
    parser.add_argument(
        "--select",
        default="D,K,R",
        help="comma-separated rule-id prefixes to enable (default: D,K,R)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root (default: auto-detected from cwd)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: <root>/{BASELINE_NAME} if present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the committed baseline (show accepted debt too)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--no-registry",
        action="store_true",
        help="skip the R-rule registry/golden/test cross-checks",
    )
    return parser


def _resolve_root(arg_root: Path | None) -> Path:
    if arg_root is not None:
        return arg_root.resolve()
    detected = find_repo_root(Path.cwd())
    return detected if detected is not None else Path.cwd()


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.id}  {rule.title}")
        return EXIT_CLEAN
    if args.explain:
        rule_id = args.explain.strip().upper()
        if rule_id not in RULES:
            print(
                f"reprolint: unknown rule {rule_id!r} "
                f"(known: {', '.join(RULES)})",
                file=sys.stderr,
            )
            return EXIT_USAGE
        print(explain_rule(rule_id))
        return EXIT_CLEAN

    root = _resolve_root(args.root)
    select = tuple(s.strip().upper() for s in args.select.split(",") if s.strip())
    if not select:
        print("reprolint: --select selected nothing", file=sys.stderr)
        return EXIT_USAGE

    config = LintConfig(
        root=root,
        select=select,
        baseline_path=args.baseline,
        registry_checks=not args.no_registry,
    )
    if args.no_baseline:
        config.baseline_path = None

    paths = [Path(p) for p in args.paths] or [root / "src"]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"reprolint: no such path: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return EXIT_USAGE

    if args.write_baseline:
        # Collect unfiltered findings, then accept them all.
        config.baseline_path = None
        findings = lint_paths(paths, config)
        target = args.baseline or root / BASELINE_NAME
        write_baseline(
            target,
            findings,
            note=(
                "Accepted pre-existing findings; regenerate with "
                "`python tools/reprolint.py --write-baseline`."
            ),
        )
        print(f"reprolint: wrote {len(findings)} entries to {target}")
        return EXIT_CLEAN

    findings = lint_paths(paths, config)
    for finding in findings:
        print(finding.render())
    if findings:
        rules = sorted({f.rule for f in findings})
        print(
            f"reprolint: {len(findings)} finding(s) "
            f"[{', '.join(rules)}] — `--explain RULE` for rationale",
            file=sys.stderr,
        )
        return EXIT_FINDINGS
    return EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
