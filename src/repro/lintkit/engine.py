"""The lint engine: findings, suppressions, the baseline, and the drivers.

A :class:`Finding` is one rule violation at one source location.  Its
identity for suppression purposes is the *fingerprint* — rule id, file
path, enclosing function, and the normalized source line — deliberately
excluding the line number, so baselines survive unrelated edits above a
finding.

Two silencing mechanisms, for two situations:

- **inline suppression** for violations that are *by design* and should
  be visible (and justified) at the offending line::

      flips = perturb.flip_rows()  # reprolint: disable=K201 -- why

  ``# reprolint: disable=RULE[,RULE...]`` on any line spanned by the
  violating statement silences exactly those rules there; a trailing
  ``-- justification`` is conventional and encouraged.  A file-scoped
  ``# reprolint: disable-file=RULE`` silences a rule for a whole module.

- **the committed baseline** (``.reprolint-baseline.json``) for
  pre-existing accepted debt that should not be scattered through the
  source as comments (e.g. the pre-arena v1 reference kernels).  New
  findings never enter the baseline silently: regenerating it is an
  explicit ``--write-baseline`` run that shows up in review.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lintkit.config import LintConfig

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Z0-9, ]+)")
_SUPPRESS_FILE_RE = re.compile(r"#\s*reprolint:\s*disable-file=([A-Z0-9, ]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: Enclosing function ("<module>" at top level) — part of the
    #: fingerprint so baselines survive line-number churn.
    func: str = "<module>"
    #: The stripped source line (informational + fingerprint input).
    text: str = ""
    #: Last line of the violating statement (for span suppressions).
    end_line: int = 0

    def fingerprint(self) -> str:
        payload = "|".join(
            (self.rule, self.path, self.func, " ".join(self.text.split()))
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class Suppressions:
    """Per-line and per-file ``# reprolint: disable=...`` directives."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)

    @classmethod
    def parse(cls, text: str) -> "Suppressions":
        parsed = cls()
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
                parsed.by_line.setdefault(lineno, set()).update(rules)
            match = _SUPPRESS_FILE_RE.search(line)
            if match:
                parsed.file_wide.update(
                    r.strip() for r in match.group(1).split(",") if r.strip()
                )
        return parsed

    def covers(self, finding: Finding) -> bool:
        if finding.rule in self.file_wide:
            return True
        last = max(finding.end_line, finding.line)
        return any(
            finding.rule in self.by_line.get(lineno, ())
            for lineno in range(finding.line, last + 1)
        )


def lint_text(
    text: str,
    path: str | Path,
    config: LintConfig | None = None,
    kernel: bool | None = None,
) -> list[Finding]:
    """All D/K findings in one module's source (suppressions applied).

    ``kernel`` overrides the path-glob decision of whether the
    kernel-scoped rules (D104, K-rules) apply — the linter's own fixture
    tests use it to exercise kernel rules on temp files.
    """
    config = config or LintConfig()
    rel = config.relpath(path)
    if kernel is None:
        kernel = config.is_kernel_file(path)
    try:
        tree = ast.parse(text, filename=rel)
    except SyntaxError as err:
        return [
            Finding(
                rule="E999",
                path=rel,
                line=err.lineno or 1,
                col=err.offset or 0,
                message=f"syntax error: {err.msg}",
            )
        ]
    # Imported lazily to keep the engine <-> rules dependency one-way.
    from repro.lintkit.rules_determinism import determinism_findings
    from repro.lintkit.rules_kernel import kernel_findings

    findings = list(
        determinism_findings(tree, rel, kernel_scope=kernel, source=text)
    )
    if kernel:
        findings.extend(kernel_findings(tree, rel, source=text))
    findings = [f for f in findings if config.rule_enabled(f.rule)]
    suppressions = Suppressions.parse(text)
    return [f for f in findings if not suppressions.covers(f)]


def iter_python_files(paths: Sequence[Path | str]) -> Iterable[Path]:
    """Every ``.py`` file under ``paths`` (files or directories)."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                if "__pycache__" not in child.parts:
                    yield child
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Sequence[Path | str], config: LintConfig | None = None
) -> list[Finding]:
    """Lint every python file under ``paths``; run R-checks when possible.

    The registry cross-checks run once per invocation, against
    ``config.root``, whenever that tree actually contains the registry
    metadata (so pointing the linter at a fixture directory skips them
    naturally).  The baseline, when configured, filters the result.
    """
    config = config or LintConfig()
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(
            lint_text(path.read_text(encoding="utf-8"), path, config)
        )
    if config.registry_checks and config.rule_enabled("R301"):
        from repro.lintkit.registry_checks import run_registry_checks

        findings.extend(run_registry_checks(config.root, config))
    if config.baseline_path is not None:
        baseline = load_baseline(config.baseline_path)
        findings = [f for f in findings if f.fingerprint() not in baseline]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


# -- baseline ----------------------------------------------------------------


def load_baseline(path: Path | str) -> set[str]:
    """The fingerprints accepted by a committed baseline file."""
    path = Path(path)
    if not path.is_file():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    return {entry["fingerprint"] for entry in data.get("entries", [])}


def write_baseline(
    path: Path | str, findings: Sequence[Finding], note: str = ""
) -> None:
    """Accept ``findings`` as the new baseline (sorted, human-reviewable)."""
    entries = [
        {
            "fingerprint": f.fingerprint(),
            "rule": f.rule,
            "path": f.path,
            "func": f.func,
            "text": f.text,
        }
        for f in sorted(
            findings, key=lambda f: (f.path, f.line, f.col, f.rule)
        )
    ]
    payload = {"version": 1, "note": note, "entries": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )
