"""R-rules: registry <-> schema <-> golden-digest <-> parity cross-checks.

Pure static analysis over repo metadata — no ``repro`` import, no numpy:

- ``src/repro/api/algorithms.py`` and ``src/repro/api/processes.py`` are
  parsed for ``registry.register("name", ...)`` calls: which engines each
  entry registers (``agent_builder`` / ``fast_kernel`` / ``batch_kernel``
  keywords) and which ``Scenario.params`` names it *declares* (the
  ``params=`` registration kwarg).
- The params each entry actually *accepts* are extracted from the same
  modules by following the entry's builder/kernel functions through
  module-local helpers and collecting ``_params(scenario, name=...)``
  keyword defaults, ``scenario.params.get("name", ...)`` reads, and the
  ``set(scenario.params) - {"name", ...}`` allow-set idiom.
- ``tests/helpers/golden.py`` yields the golden case table (case name ->
  algorithm) and ``tests/golden/digests.json`` the committed digests.
- The parity-bearing test modules (``test_*equivalence*``,
  ``test_*parity*``, ``test_*golden*``, ``test_fast_*``,
  ``test_*matcher*``, and the golden helper itself) are scanned for the
  registry names they exercise.

Checks: **R301** declared-vs-accepted params drift, **R302** batch
kernels without golden digests (and case/digest table mismatches),
**R303** fast kernels with no parity coverage, **R304** criterion names
that are not ``CRITERIA`` keys.  See :mod:`repro.lintkit.catalog` for
each rule's rationale.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.lintkit.config import LintConfig
from repro.lintkit.engine import Finding

ALGORITHMS_REL = "src/repro/api/algorithms.py"
PROCESSES_REL = "src/repro/api/processes.py"
REGISTRY_REL = "src/repro/api/registry.py"
GOLDEN_HELPER_REL = "tests/helpers/golden.py"
DIGESTS_REL = "tests/golden/digests.json"
TESTS_REL = "tests"

#: Test-module basenames that count as parity/equivalence coverage.
_PARITY_FILE_RE = re.compile(
    r"(equivalence|parity|golden|fast|matcher)", re.IGNORECASE
)


@dataclass
class RegistryEntry:
    """One statically-parsed ``registry.register(...)`` call."""

    name: str
    path: str
    line: int
    kwargs: dict[str, ast.expr] = field(default_factory=dict)
    declared_params: tuple[str, ...] | None = None

    @property
    def has_fast(self) -> bool:
        return "fast_kernel" in self.kwargs

    @property
    def has_batch(self) -> bool:
        return "batch_kernel" in self.kwargs


def _finding(
    rule: str, path: str, line: int, message: str, func: str = "<registry>"
) -> Finding:
    return Finding(
        rule=rule, path=path, line=line, col=0, message=message, func=func,
        text=message,
    )


# -- module parsing ----------------------------------------------------------


class _Module:
    """One parsed metadata module with its param-extraction machinery."""

    def __init__(self, path: Path, relpath: str) -> None:
        self.relpath = relpath
        self.tree = ast.parse(path.read_text(encoding="utf-8"), filename=relpath)
        self.functions: dict[str, ast.FunctionDef] = {}
        #: module-level alias -> names it depends on (``_simple_fast,
        #: _simple_batch = _kernel_pair(..., _simple_kwargs)``).
        self.aliases: dict[str, set[str]] = {}
        for node in self.tree.body:
            if isinstance(node, ast.FunctionDef):
                self.functions[node.name] = node
            elif isinstance(node, ast.Assign):
                deps = {
                    sub.id
                    for sub in ast.walk(node.value)
                    if isinstance(sub, ast.Name)
                }
                for target in node.targets:
                    names = (
                        [elt for elt in target.elts]
                        if isinstance(target, ast.Tuple)
                        else [target]
                    )
                    for name in names:
                        if isinstance(name, ast.Name):
                            self.aliases[name.id] = deps

    def entries(self) -> list[RegistryEntry]:
        """Every ``<obj>.register("name", ...)`` call in the module."""
        found: list[RegistryEntry] = []
        for node in ast.walk(self.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "register"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                continue
            entry = RegistryEntry(
                name=node.args[0].value,
                path=self.relpath,
                line=node.lineno,
            )
            for kw in node.keywords:
                if kw.arg is not None:
                    entry.kwargs[kw.arg] = kw.value
            declared = entry.kwargs.get("params")
            if declared is not None and isinstance(
                declared, (ast.Tuple, ast.List)
            ):
                entry.declared_params = tuple(
                    elt.value
                    for elt in declared.elts
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                )
            found.append(entry)
        return found

    # -- accepted-params extraction -----------------------------------------

    def _params_in_function(self, func: ast.FunctionDef) -> set[str]:
        params: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                # _params(scenario, name=default, ...)
                if isinstance(node.func, ast.Name) and node.func.id == "_params":
                    params.update(
                        kw.arg for kw in node.keywords if kw.arg is not None
                    )
                # scenario.params.get("name", ...)
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "get"
                    and isinstance(node.func.value, ast.Attribute)
                    and node.func.value.attr == "params"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                ):
                    params.add(node.args[0].value)
            # set(scenario.params) - {"name", ...}
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub):
                if isinstance(node.right, ast.Set):
                    params.update(
                        elt.value
                        for elt in node.right.elts
                        if isinstance(elt, ast.Constant)
                        and isinstance(elt.value, str)
                    )
        return params

    def _callees(self, func: ast.FunctionDef) -> set[str]:
        return {
            node.id
            for node in ast.walk(func)
            if isinstance(node, ast.Name)
            and (node.id in self.functions or node.id in self.aliases)
        }

    def accepted_params(self, roots: set[str]) -> set[str]:
        """Params accepted by the closure of ``roots`` over local helpers."""
        accepted: set[str] = set()
        seen: set[str] = set()
        stack = list(roots)
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            if name in self.aliases:
                stack.extend(self.aliases[name])
            func = self.functions.get(name)
            if func is None:
                continue
            accepted |= self._params_in_function(func)
            stack.extend(self._callees(func))
        return accepted

    def entry_roots(self, entry: RegistryEntry) -> set[str]:
        """The local function/alias names an entry's kwargs reference."""
        roots: set[str] = set()
        for key in ("agent_builder", "fast_kernel", "batch_kernel"):
            node = entry.kwargs.get(key)
            if isinstance(node, ast.Name):
                roots.add(node.id)
        return roots


# -- golden / criteria / parity parsing --------------------------------------


def _golden_case_algorithms(path: Path) -> dict[str, str] | None:
    """Golden case name -> registry algorithm, statically parsed.

    Reads the ``cases`` dict inside ``golden_cases()``: each value is a
    lambda whose ``_simple(...)`` call may carry ``algorithm="x"``
    (default ``"simple"`` — the helper's own default).
    """
    if not path.is_file():
        return None
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    for func in ast.walk(tree):
        if not (isinstance(func, ast.FunctionDef) and func.name == "golden_cases"):
            continue
        for node in ast.walk(func):
            if not (
                isinstance(node, (ast.Assign, ast.AnnAssign))
                and isinstance(node.value, ast.Dict)
            ):
                continue
            cases: dict[str, str] = {}
            for key, value in zip(node.value.keys, node.value.values):
                if not (
                    isinstance(key, ast.Constant) and isinstance(key.value, str)
                ):
                    continue
                algorithm = "simple"
                for sub in ast.walk(value):
                    if isinstance(sub, ast.keyword) and sub.arg == "algorithm":
                        if isinstance(sub.value, ast.Constant):
                            algorithm = sub.value.value
                cases[key.value] = algorithm
            if cases:
                return cases
    return None


def _criteria_keys(path: Path) -> set[str] | None:
    """The CRITERIA mapping's keys from ``api/registry.py``."""
    if not path.is_file():
        return None
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            names = {t.id for t in targets if isinstance(t, ast.Name)}
            value = node.value
            if "CRITERIA" in names and isinstance(value, ast.Dict):
                return {
                    key.value
                    for key in value.keys
                    if isinstance(key, ast.Constant) and isinstance(key.value, str)
                }
    return None


def _criterion_references(module: _Module) -> list[tuple[str, int]]:
    """Every string passed to criterion_feature()/criterion_factory()."""
    refs: list[tuple[str, int]] = []
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("criterion_feature", "criterion_factory")
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            refs.append((node.args[0].value, node.lineno))
    return refs


def _parity_strings(tests_dir: Path) -> set[str]:
    """String constants in the parity-bearing test modules."""
    strings: set[str] = set()
    if not tests_dir.is_dir():
        return strings
    for path in sorted(tests_dir.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        if not _PARITY_FILE_RE.search(path.stem):
            continue
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError:
            continue
        strings.update(
            node.value
            for node in ast.walk(tree)
            if isinstance(node, ast.Constant) and isinstance(node.value, str)
        )
    return strings


# -- the checker -------------------------------------------------------------


def run_registry_checks(
    root: Path | str, config: LintConfig | None = None
) -> list[Finding]:
    """All R-rule findings for the repo tree rooted at ``root``.

    Returns ``[]`` when the tree has no registry metadata at all (so the
    linter can be pointed at arbitrary fixture directories); individual
    missing metadata files on a tree that *does* have a registry are
    reported as findings, not skipped.
    """
    del config  # reserved for future per-rule options
    root = Path(root)
    algorithms_path = root / ALGORITHMS_REL
    if not algorithms_path.is_file():
        return []
    findings: list[Finding] = []
    modules = [_Module(algorithms_path, ALGORITHMS_REL)]
    processes_path = root / PROCESSES_REL
    if processes_path.is_file():
        modules.append(_Module(processes_path, PROCESSES_REL))

    entries: list[RegistryEntry] = []
    for module in modules:
        entries.extend(module.entries())

    # R301: declared params must match the statically-accepted params.
    for module in modules:
        for entry in module.entries():
            accepted = module.accepted_params(module.entry_roots(entry))
            declared = set(entry.declared_params or ())
            undeclared = accepted - declared
            phantom = declared - accepted
            if entry.declared_params is None and accepted:
                findings.append(
                    _finding(
                        "R301",
                        entry.path,
                        entry.line,
                        f"registry entry {entry.name!r} accepts params "
                        f"{sorted(accepted)} but declares none; add "
                        "params=(...) to the register() call",
                        func=entry.name,
                    )
                )
            elif undeclared or phantom:
                parts = []
                if undeclared:
                    parts.append(f"accepted but undeclared: {sorted(undeclared)}")
                if phantom:
                    parts.append(f"declared but never accepted: {sorted(phantom)}")
                findings.append(
                    _finding(
                        "R301",
                        entry.path,
                        entry.line,
                        f"registry entry {entry.name!r} params drift — "
                        + "; ".join(parts),
                        func=entry.name,
                    )
                )

    # R304: criterion names must exist in CRITERIA.
    criteria = _criteria_keys(root / REGISTRY_REL)
    if criteria is not None:
        for module in modules:
            for name, line in _criterion_references(module):
                if name not in criteria:
                    findings.append(
                        _finding(
                            "R304",
                            module.relpath,
                            line,
                            f"criterion {name!r} is not a CRITERIA key "
                            f"(known: {sorted(criteria)})",
                        )
                    )

    # R302: batch kernels <-> golden cases <-> committed digests.
    case_algorithms = _golden_case_algorithms(root / GOLDEN_HELPER_REL)
    digests_path = root / DIGESTS_REL
    digests: set[str] | None = None
    if digests_path.is_file():
        digests = set(json.loads(digests_path.read_text(encoding="utf-8")))
    if case_algorithms is None:
        findings.append(
            _finding(
                "R302",
                GOLDEN_HELPER_REL,
                1,
                "golden case table not found (expected a `cases` dict in "
                "golden_cases())",
            )
        )
    elif digests is None:
        findings.append(
            _finding("R302", DIGESTS_REL, 1, "committed digest file missing")
        )
    else:
        for case in sorted(set(case_algorithms) - digests):
            findings.append(
                _finding(
                    "R302",
                    DIGESTS_REL,
                    1,
                    f"golden case {case!r} has no committed digest "
                    "(regenerate tests/golden/digests.json)",
                    func=case,
                )
            )
        for case in sorted(digests - set(case_algorithms)):
            findings.append(
                _finding(
                    "R302",
                    GOLDEN_HELPER_REL,
                    1,
                    f"committed digest {case!r} has no golden case "
                    "(stale entry in tests/golden/digests.json)",
                    func=case,
                )
            )
        covered = set(case_algorithms.values())
        for entry in entries:
            if entry.has_batch and entry.name not in covered:
                findings.append(
                    _finding(
                        "R302",
                        entry.path,
                        entry.line,
                        f"batch kernel {entry.name!r} has no golden-digest "
                        "case; add one to tests/helpers/golden.py and "
                        "commit its digest",
                        func=entry.name,
                    )
                )

    # R303: every fast kernel must be named by a parity-bearing test.
    parity = _parity_strings(root / TESTS_REL)
    if parity:
        for entry in entries:
            if entry.has_fast and entry.name not in parity:
                findings.append(
                    _finding(
                        "R303",
                        entry.path,
                        entry.line,
                        f"fast kernel {entry.name!r} is not exercised by "
                        "any parity/equivalence/golden test module",
                        func=entry.name,
                    )
                )
    return findings
