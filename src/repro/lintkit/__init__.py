"""``repro.lintkit``: determinism- and kernel-discipline static analysis.

The PR 1-5 substrate rests on invariants nothing used to enforce
mechanically: bit-identical golden digests, worker-count-invariant
determinism (all randomness through per-trial
:class:`~repro.sim.rng.RandomSource` streams), and the PR-5
zero-allocation arena discipline inside the batch kernels.  A single
stray ``np.random.default_rng()`` or a fresh ``np.zeros`` inside a
per-round loop silently breaks them, and surfaces — if at all — as a
mysterious golden-digest mismatch.

This package is the mechanical enforcement, three rule families deep:

- **D-rules** (determinism): no ambient RNG/entropy/wall-clock sources,
  no seedless generators, no iteration over sets, no float ``==`` in
  kernel code — see :mod:`repro.lintkit.rules_determinism`.
- **K-rules** (kernel discipline): no allocating numpy constructors and
  no arena-plane rebinding inside the per-round loops of
  ``src/repro/fast/*.py`` — see :mod:`repro.lintkit.rules_kernel`.
- **R-rules** (registry/metadata cross-checks): declared registry params
  match the params the builders actually accept, every batch kernel has
  a committed golden digest, every fast kernel is pinned by a
  parity/equivalence test — see :mod:`repro.lintkit.registry_checks`.

The analyzer is pure-stdlib (``ast`` + ``json``): it can run in CI
before a single third-party dependency is installed.  Accepted findings
are silenced either inline (``# reprolint: disable=D101 -- why``) or via
the committed baseline file (``.reprolint-baseline.json``); see
``docs/LINTING.md`` for the workflow and ``tools/reprolint.py`` for the
CLI.  An optional *runtime* sanitizer (``REPRO_SANITIZE=1``) wraps the
batch-kernel entry points with NaN/overflow and arena-aliasing checks —
:mod:`repro.lintkit.sanitize`.
"""

from repro.lintkit.catalog import RULES, Rule, explain_rule
from repro.lintkit.config import LintConfig
from repro.lintkit.engine import (
    Finding,
    lint_paths,
    lint_text,
    load_baseline,
    write_baseline,
)
from repro.lintkit.registry_checks import run_registry_checks

__all__ = [
    "Finding",
    "LintConfig",
    "RULES",
    "Rule",
    "explain_rule",
    "lint_paths",
    "lint_text",
    "load_baseline",
    "run_registry_checks",
    "write_baseline",
]
