"""K-rules: the PR-5 zero-allocation arena discipline in kernel files.

The scope is the per-round ``while`` loops of the vectorized kernels in
``src/repro/fast/*.py`` — the loops that run thousands of iterations per
batch and whose steady state PR 5 made allocation-free:

- **K201** — an allocating numpy call (``zeros``/``empty``/``full``/
  ``arange``/``concatenate``/``stack``/... or the ``.copy()``/
  ``.astype()`` methods) lexically inside a round loop.  Temporaries
  belong in :func:`repro.fast.arena.Arena.buf` with ``out=`` writes.
- **K202** — a name bound to an arena plane (``x = arena.buf(...)``)
  rebound inside a round loop to anything other than a row-slice of a
  plane or the result of :func:`~repro.fast.arena.compact_rows`.
  Rebinding detaches the plane from its recycled storage (the next
  ``buf()`` call aliases stale state) and puts the allocation back on
  the hot path; planes mutate via masked in-place writes.

Both rules are lexical: calls inside nested function *definitions* (the
``finalize_rows``/``compress`` closures, defined once and invoked on
compaction events, not per round) are out of scope by construction.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lintkit.engine import Finding

#: numpy module-level constructors/copies that allocate a fresh array.
_ALLOC_FUNCS = {
    "zeros",
    "empty",
    "ones",
    "full",
    "zeros_like",
    "empty_like",
    "ones_like",
    "full_like",
    "arange",
    "linspace",
    "eye",
    "identity",
    "array",
    "copy",
    "concatenate",
    "stack",
    "vstack",
    "hstack",
    "dstack",
    "column_stack",
    "tile",
    "repeat",
    "fromiter",
    "meshgrid",
}

#: Allocating *methods* on any object (conservative: ``.copy()`` and
#: ``.astype()`` always materialize fresh storage in the kernels).
_ALLOC_METHODS = {"copy", "astype"}

#: Names whose module-level aliases denote numpy.
_NUMPY_ALIASES = {"np", "numpy"}

#: RHS call names through which plane rebinding is legitimate.
_REBIND_FUNCS = {"compact_rows"}


def _numpy_alloc_name(func: ast.AST) -> str | None:
    """``np.zeros``-style allocating attribute, or None."""
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in _NUMPY_ALIASES
        and func.attr in _ALLOC_FUNCS
    ):
        return func.attr
    return None


def _arena_plane_names(func: ast.FunctionDef) -> set[str]:
    """Names assigned from ``<arena>.buf(...)`` / ``<arena>.full(...)``."""
    planes: set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        # Unwrap conditional expressions: ``x = arena.buf(...) if c else None``.
        candidates = [value]
        if isinstance(value, ast.IfExp):
            candidates = [value.body, value.orelse]
        if not any(
            isinstance(cand, ast.Call)
            and isinstance(cand.func, ast.Attribute)
            and cand.func.attr in ("buf", "full")
            # np.full(...) is an allocation, not an arena plane: the
            # receiver must be an arena object, not the numpy module.
            and not (
                isinstance(cand.func.value, ast.Name)
                and cand.func.value.id in _NUMPY_ALIASES
            )
            for cand in candidates
        ):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                planes.add(target.id)
    return planes


def _allowed_rebind(value: ast.AST) -> bool:
    """RHS forms that keep a plane attached to recycled storage."""
    if isinstance(value, ast.Subscript):  # row slice: coins[:m]
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
        return name in _REBIND_FUNCS or name in ("buf", "full")
    return False


class _LoopScanner(ast.NodeVisitor):
    """Scans one round-loop body, skipping nested function definitions."""

    def __init__(self, outer: "_KernelVisitor") -> None:
        self.outer = outer

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # closures are defined once, not executed per round

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef

    def visit_Call(self, node: ast.Call) -> None:
        attr = _numpy_alloc_name(node.func)
        if attr is not None:
            self.outer.emit(
                node,
                "K201",
                f"np.{attr}(...) allocates inside a per-round loop; use an "
                "arena.buf(...) temporary with out= writes",
            )
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _ALLOC_METHODS
        ):
            self.outer.emit(
                node,
                "K201",
                f".{node.func.attr}(...) materializes a fresh array inside "
                "a per-round loop; reuse an arena buffer or hoist it",
            )
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        planes = self.outer.current_planes
        targets: list[tuple[ast.expr, ast.AST]] = []
        for target in node.targets:
            if isinstance(target, ast.Tuple) and isinstance(node.value, ast.Tuple):
                targets.extend(zip(target.elts, node.value.elts))
            else:
                targets.append((target, node.value))
        for target, value in targets:
            if (
                isinstance(target, ast.Name)
                and target.id in planes
                and not _allowed_rebind(value)
            ):
                self.outer.emit(
                    node,
                    "K202",
                    f"arena plane {target.id!r} rebound inside a per-round "
                    "loop; mutate it in place (np.copyto/out=/index "
                    "assignment) or rebind only via compact_rows/slicing",
                )
        self.generic_visit(node)


class _KernelVisitor(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: list[Finding] = []
        self._func_stack: list[str] = []
        self._plane_stack: list[set[str]] = []
        self._lines: list[str] = []

    @property
    def current_planes(self) -> set[str]:
        return self._plane_stack[-1] if self._plane_stack else set()

    def emit(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        text = self._lines[line - 1].strip() if line <= len(self._lines) else ""
        self.findings.append(
            Finding(
                rule=rule,
                path=self.path,
                line=line,
                col=getattr(node, "col_offset", 0),
                message=message,
                func=self._func_stack[-1] if self._func_stack else "<module>",
                text=text,
                end_line=getattr(node, "end_lineno", line) or line,
            )
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._func_stack.append(node.name)
        self._plane_stack.append(_arena_plane_names(node))
        self.generic_visit(node)
        self._plane_stack.pop()
        self._func_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_While(self, node: ast.While) -> None:
        scanner = _LoopScanner(self)
        for child in node.body:
            scanner.visit(child)
        # Nested while loops inside the body were already scanned by the
        # outer pass; don't double-report through generic_visit.


def kernel_findings(
    tree: ast.Module, path: str, source: str | None = None
) -> Iterator[Finding]:
    """All K-rule findings for one parsed kernel module."""
    visitor = _KernelVisitor(path)
    visitor._lines = source.splitlines() if source is not None else []
    visitor.visit(tree)
    return iter(visitor.findings)
