"""Opt-in runtime sanitizer for the batch kernels (``REPRO_SANITIZE=1``).

The static rules catch what the AST can see; this module catches what it
cannot — numerical state going bad *at run time*.  When the environment
variable ``REPRO_SANITIZE`` is truthy, :func:`sanitized` wraps a kernel
entry point so that every invocation:

- runs under ``np.errstate(invalid="raise", over="raise")``, turning
  silent NaN production and float overflow inside the round loop into
  immediate ``FloatingPointError``;
- checks the returned results for conservation violations — a
  :class:`~repro.fast.results.FastRunResult` must have finite,
  non-negative ``final_counts`` summing to exactly ``n`` (ants are
  neither created nor destroyed), and every committed history row must
  conserve population too; a ``SpreadResult`` history must stay within
  ``[0, n]`` and be non-decreasing (informedness is monotone);
- audits the shared arena for aliasing: two distinct buffer names whose
  backing storage overlaps means a ``buf()`` implementation bug
  (:func:`check_arena_aliasing`).

When ``REPRO_SANITIZE`` is unset (the default, and the benchmarked
configuration) the decorator returns the function unchanged — zero
overhead, no behavior change, bit-identical goldens.
"""

from __future__ import annotations

import functools
import os
from typing import Any, Callable, Iterable, TypeVar

import numpy as np

F = TypeVar("F", bound=Callable[..., Any])

_ENV_VAR = "REPRO_SANITIZE"
_FALSY = {"", "0", "false", "no", "off"}


class SanitizeError(AssertionError):
    """A kernel invariant violated at run time (only under REPRO_SANITIZE)."""


def sanitize_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` asks for runtime kernel checks.

    Read per call, not at import, so tests can toggle the environment.
    """
    return os.environ.get(_ENV_VAR, "").strip().lower() not in _FALSY


def _fail(kernel: str, message: str) -> None:
    raise SanitizeError(f"[{_ENV_VAR}] {kernel}: {message}")


def check_run_result(result: Any, n: int, kernel: str) -> None:
    """Population-conservation checks for one FastRunResult-like object."""
    counts = np.asarray(result.final_counts)
    if not np.all(np.isfinite(counts)):
        _fail(kernel, f"non-finite final_counts: {counts!r}")
    if np.any(counts < 0):
        _fail(kernel, f"negative final_counts: {counts!r}")
    total = int(counts.sum())
    if total != n:
        _fail(kernel, f"final_counts sum {total} != n {n} (ants not conserved)")
    history = getattr(result, "population_history", None)
    if history is not None and len(history):
        row_sums = np.asarray(history).sum(axis=1)
        if not np.all(row_sums == n):
            bad = int(np.argmax(row_sums != n))
            _fail(
                kernel,
                f"population_history row {bad} sums to "
                f"{int(row_sums[bad])} != n {n}",
            )


def check_spread_result(result: Any, n: int, kernel: str) -> None:
    """Monotone-informedness checks for one SpreadResult-like object."""
    history = getattr(result, "informed_history", None)
    if history is None or not len(history):
        return
    informed = np.asarray(history)
    if np.any(informed < 0) or np.any(informed > n):
        _fail(kernel, f"informed_history outside [0, {n}]: {informed!r}")
    if np.any(np.diff(informed) < 0):
        _fail(kernel, "informed_history decreased (information cannot be lost)")


def check_arena_aliasing(arena: Any, kernel: str = "<arena>") -> None:
    """Fail if two named arena buffers share backing storage."""
    try:
        arena.check_aliasing()
    except AssertionError as err:
        _fail(kernel, str(err))


def _check_results(results: Any, n: int, kernel: str) -> None:
    if not isinstance(results, Iterable):
        results = [results]
    for result in results:
        if hasattr(result, "final_counts"):
            check_run_result(result, n, kernel)
        elif hasattr(result, "informed_history"):
            check_spread_result(result, n, kernel)


def sanitized(kernel: F) -> F:
    """Wrap a batch-kernel entry point with the runtime checks.

    The wrapped kernel must take ``n`` as its first positional argument
    (all four batch kernels do).  With ``REPRO_SANITIZE`` unset the
    original function runs untouched.
    """

    @functools.wraps(kernel)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        if not sanitize_enabled():
            return kernel(*args, **kwargs)
        n = int(kwargs["n"] if "n" in kwargs else args[0])
        with np.errstate(invalid="raise", over="raise"):
            results = kernel(*args, **kwargs)
        _check_results(results, n, kernel.__name__)
        from repro.fast.arena import shared_arena

        check_arena_aliasing(shared_arena(), kernel.__name__)
        return results

    return wrapper  # type: ignore[return-value]
