"""D-rules: determinism discipline for everything under ``src/repro``.

- **D101** — ambient RNG / entropy / wall-clock call (``np.random.*``
  draw functions, stdlib ``random.*``, ``time.time``/``time_ns``,
  ``os.urandom``, ``uuid.uuid1/uuid4``, ``secrets.*``,
  ``datetime.now``/``utcnow``).
- **D102** — seedless generator construction (``default_rng()``,
  ``SeedSequence()``, ``RandomState()``, ``random.Random()`` with no
  argument or an explicit ``None``).
- **D103** — iteration over a set/frozenset (order varies with
  PYTHONHASHSEED across processes) without a ``sorted()`` wrapper.
- **D104** — ``==`` / ``!=`` against a float literal, kernel files only.

The analysis is import-aware but deliberately shallow: it resolves
dotted attribute chains (``np.random.default_rng``) through the module's
own imports and flags *calls*, never annotations — ``rng:
np.random.Generator`` is the repo's standard typing idiom and stays
silent.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lintkit.engine import Finding

#: numpy.random attributes that are *not* ambient draws (types, seeded
#: constructors, bit generators).  Everything else called as
#: ``np.random.<x>(...)`` is the legacy global-state API.
_NP_RANDOM_ALLOWED = {
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "default_rng",
    "RandomState",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}

#: numpy.random constructors that take their seed as the first argument —
#: calling them with no argument (or ``None``) is D102.
_SEEDED_CONSTRUCTORS = {"default_rng", "SeedSequence", "RandomState"}

#: ``time`` module attributes that read the wall clock.  (perf_counter,
#: monotonic and process_time are measurement clocks, fine for
#: profiling; they never feed simulation state.)
_TIME_BANNED = {"time", "time_ns"}

#: stdlib ``datetime``-class methods that read the wall clock.
_DATETIME_BANNED = {"now", "utcnow", "today"}


def _dotted(node: ast.AST) -> tuple[str, ...] | None:
    """``a.b.c`` as ``("a", "b", "c")``, or None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class _ImportTable:
    """Maps local names to the modules / module members they denote."""

    def __init__(self, tree: ast.Module) -> None:
        #: local name -> dotted module it refers to ("np" -> "numpy").
        self.modules: dict[str, str] = {}
        #: local name -> (module, member) for ``from m import x [as y]``.
        self.members: dict[str, tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.members[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )

    def resolve(self, chain: tuple[str, ...]) -> tuple[str, ...] | None:
        """A call chain with its head normalized to the real module path.

        ``("np", "random", "rand")`` -> ``("numpy", "random", "rand")``;
        ``("shuffle",)`` with ``from random import shuffle`` ->
        ``("random", "shuffle")``.
        """
        head, rest = chain[0], chain[1:]
        if head in self.members:
            module, member = self.members[head]
            return (*module.split("."), member, *rest)
        if head in self.modules:
            return (*self.modules[head].split("."), *rest)
        return None


def _is_seedless(call: ast.Call) -> bool:
    if call.keywords:
        # default_rng(seed=...) / SeedSequence(entropy=...); an explicit
        # None is still seedless, and **kwargs gets the benefit of doubt.
        for kw in call.keywords:
            if kw.arg is None or kw.arg in ("seed", "entropy"):
                return isinstance(kw.value, ast.Constant) and kw.value.value is None
        return not call.args
    if not call.args:
        return True
    first = call.args[0]
    return isinstance(first, ast.Constant) and first.value is None


def _classify_call(
    resolved: tuple[str, ...], call: ast.Call
) -> tuple[str, str] | None:
    """(rule, message) for a banned call, or None."""
    if resolved[:2] == ("numpy", "random") and len(resolved) == 3:
        attr = resolved[2]
        if attr in _SEEDED_CONSTRUCTORS:
            if _is_seedless(call):
                return (
                    "D102",
                    f"seedless np.random.{attr}() draws OS entropy; derive "
                    "the seed from a RandomSource stream",
                )
            return None
        if attr not in _NP_RANDOM_ALLOWED:
            return (
                "D101",
                f"np.random.{attr}() uses the global numpy RNG; draw from "
                "a per-trial RandomSource stream instead",
            )
        return None
    if resolved[0] == "random" and len(resolved) == 2:
        attr = resolved[1]
        if attr == "Random":
            if _is_seedless(call):
                return ("D102", "seedless random.Random() draws OS entropy")
            return None
        if attr[:1].isupper():  # SystemRandom and friends
            return ("D101", f"random.{attr}() is an ambient entropy source")
        return (
            "D101",
            f"stdlib random.{attr}() uses hidden global state; use a "
            "seeded numpy Generator from a RandomSource stream",
        )
    if resolved[0] == "time" and len(resolved) == 2 and resolved[1] in _TIME_BANNED:
        return (
            "D101",
            f"time.{resolved[1]}() reads the wall clock; results must not "
            "depend on when they run",
        )
    if resolved == ("os", "urandom"):
        return ("D101", "os.urandom() is an OS entropy source")
    if resolved[0] == "uuid" and resolved[-1] in ("uuid1", "uuid4"):
        return ("D101", f"uuid.{resolved[-1]}() is time/entropy-derived")
    if resolved[0] == "secrets":
        return ("D101", f"secrets.{resolved[-1]}() is an OS entropy source")
    if resolved[0] == "datetime" and resolved[-1] in _DATETIME_BANNED:
        return (
            "D101",
            f"datetime {resolved[-1]}() reads the wall clock; results "
            "must not depend on when they run",
        )
    return None


#: Wrappers that preserve (sorted) or launder (list, tuple, iter, ...)
#: the iteration order of their argument.
_ORDER_FIXING = {"sorted", "min", "max", "sum", "len", "any", "all", "frozenset", "set"}
_ORDER_PASSING = {"list", "tuple", "iter", "enumerate", "reversed"}


def _set_expr(node: ast.AST) -> ast.AST | None:
    """The set-typed expression iterated by ``node``, unwrapped, or None."""
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _ORDER_PASSING
        and node.args
    ):
        node = node.args[0]
    if isinstance(node, (ast.Set, ast.SetComp)):
        return node
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return node
    return None


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, path: str, imports: _ImportTable, kernel_scope: bool):
        self.path = path
        self.imports = imports
        self.kernel_scope = kernel_scope
        self.findings: list[Finding] = []
        self._func_stack: list[str] = []
        self._lines: list[str] = []

    def emit(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        text = self._lines[line - 1].strip() if line <= len(self._lines) else ""
        self.findings.append(
            Finding(
                rule=rule,
                path=self.path,
                line=line,
                col=getattr(node, "col_offset", 0),
                message=message,
                func=self._func_stack[-1] if self._func_stack else "<module>",
                text=text,
                end_line=getattr(node, "end_lineno", line) or line,
            )
        )

    # -- scope tracking ------------------------------------------------------

    def _visit_func(self, node) -> None:
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    # -- D101 / D102 ---------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        chain = _dotted(node.func)
        if chain is not None:
            resolved = self.imports.resolve(chain)
            if resolved is not None:
                hit = _classify_call(resolved, node)
                if hit is not None:
                    self.emit(node, *hit)
        self.generic_visit(node)

    # -- D103 ----------------------------------------------------------------

    def _check_iter(self, iter_node: ast.AST) -> None:
        offender = _set_expr(iter_node)
        if offender is not None:
            self.emit(
                iter_node,
                "D103",
                "iteration over a set is hash-order dependent (varies with "
                "PYTHONHASHSEED across worker processes); iterate "
                "sorted(...) instead",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for generator in node.generators:
            self._check_iter(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    # -- D104 (kernel scope only) -------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        if self.kernel_scope and any(
            isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
        ):
            operands = [node.left, *node.comparators]
            if any(
                isinstance(operand, ast.Constant)
                and isinstance(operand.value, float)
                for operand in operands
            ):
                self.emit(
                    node,
                    "D104",
                    "float == / != comparison in kernel code; values that "
                    "pass through arithmetic will miss exact equality and "
                    "change the draw schedule",
                )
        self.generic_visit(node)


def determinism_findings(
    tree: ast.Module, path: str, kernel_scope: bool, source: str | None = None
) -> Iterator[Finding]:
    """All D-rule findings for one parsed module."""
    visitor = _DeterminismVisitor(path, _ImportTable(tree), kernel_scope)
    visitor._lines = source.splitlines() if source is not None else []
    visitor.visit(tree)
    return iter(visitor.findings)
