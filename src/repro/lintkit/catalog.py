"""The rule catalog: every reprolint rule, its rationale, and examples.

This is the single source of truth behind ``reprolint --explain RULE``
and the rule table in ``docs/LINTING.md``.  Each rule documents *why* the
invariant matters for this repository specifically — the golden-digest
harness, the worker-count-invariance contract, or the PR-5 arena
discipline — not just what the pattern looks like.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Rule:
    """One lint rule: identifier, scope, and human-facing documentation."""

    id: str
    title: str
    #: Where the rule applies ("src/repro", "kernel files", "repo metadata").
    scope: str
    #: Why violating this breaks a repo invariant (the --explain payload).
    rationale: str
    #: A minimal violating snippet.
    bad: str
    #: The compliant rewrite.
    good: str


RULES: dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            id="D101",
            title="ambient RNG / entropy / wall-clock source",
            scope="src/repro",
            rationale=(
                "Every draw must come from a per-trial RandomSource stream "
                "(seeded by (seed, trial_index)) so that trial t produces "
                "identical bits alone, in any chunk, and under any worker "
                "count — the run_batch contract that the golden-digest "
                "suite pins.  Module-level np.random.* functions, the "
                "stdlib random module, time.time(), os.urandom(), uuid4() "
                "and secrets.* all read ambient process state: one call "
                "anywhere in a kernel's reach makes results depend on "
                "import order, scheduling, or the host, and the failure "
                "shows up only as an unexplainable digest mismatch."
            ),
            bad="idx = np.random.randint(0, n)",
            good="idx = int(source.colony.integers(0, n))",
        ),
        Rule(
            id="D102",
            title="seedless generator construction",
            scope="src/repro",
            rationale=(
                "np.random.default_rng() / SeedSequence() / RandomState() / "
                "random.Random() with no seed pull entropy from the OS, so "
                "two runs of the same Scenario diverge.  All generators in "
                "this repo descend from RandomSource's named child streams; "
                "constructing one from scratch also breaks the draw-order "
                "schedule even when a seed is later supplied elsewhere."
            ),
            bad="rng = np.random.default_rng()",
            good="rng = np.random.default_rng(seed_seq)  # derived seed",
        ),
        Rule(
            id="D103",
            title="iteration over a set",
            scope="src/repro",
            rationale=(
                "Set iteration order depends on insertion history and, for "
                "strings, on PYTHONHASHSEED — it varies *between "
                "processes*.  When the iterate feeds RNG draws, report "
                "ordering, or serialized output, two workers produce "
                "different bits for the same work, violating worker-count "
                "invariance and the canonical-JSON property the sweep "
                "cache's content addressing relies on.  Iterate sorted(s) "
                "(or keep a list/dict, whose order is insertion-defined)."
            ),
            bad="for name in {'b', 'a'}: emit(name)",
            good="for name in sorted({'b', 'a'}): emit(name)",
        ),
        Rule(
            id="D104",
            title="float equality comparison in kernel code",
            scope="kernel files (src/repro/fast/*.py)",
            rationale=(
                "== / != against a float literal in a hot kernel is almost "
                "always a latent bug: a value that arrives through any "
                "arithmetic (a probability product, a quality blend) will "
                "miss the exact comparison and silently change control "
                "flow, i.e. the draw schedule, i.e. the digests.  Exact "
                "sentinel checks on never-computed values are legitimate — "
                "suppress those inline with a justification."
            ),
            bad="if prob == 0.3: skip()",
            good="if prob <= 0.0: skip()  # or math.isclose / a sentinel",
        ),
        Rule(
            id="K201",
            title="allocating numpy call inside a per-round loop",
            scope="kernel files (src/repro/fast/*.py)",
            rationale=(
                "PR 5 moved every per-round temporary into the shared "
                "grow-only Arena precisely because np.zeros/np.empty/"
                "np.concatenate/.astype/.copy inside the round loop put "
                "the allocator (and memset) on the hot path thousands of "
                "times per batch — the allocation cliffs the arena "
                "removed.  New round-loop temporaries must come from "
                "arena.buf(...) and be written with out= ufunc forms.  "
                "Deliberate exceptions (history rows that must own their "
                "storage, variable-size sparse gathers) carry an inline "
                "suppression; the pre-arena v1 reference kernels are "
                "baselined wholesale."
            ),
            bad="while live.size:\n    scratch = np.zeros((m, n))",
            good="scratch = arena.buf('scratch', (m, n), np.float64)\n"
            "while live.size:\n    scratch[:m].fill(0)",
        ),
        Rule(
            id="K202",
            title="arena-plane name rebound inside a per-round loop",
            scope="kernel files (src/repro/fast/*.py)",
            rationale=(
                "A name bound to an arena plane (nest, count, active, ...) "
                "is a *view into recycled storage*.  Rebinding it to a "
                "fresh array inside the round loop (nest = np.where(...)) "
                "silently detaches the plane from the arena: the next "
                "arena.buf() call hands out the stale buffer, aliasing "
                "state across rounds or kernels, and the allocation is "
                "back on the hot path.  Mutate planes with masked in-place "
                "writes (np.copyto(..., where=), out= forms, flat index "
                "assignment); rebinding is only legal through "
                "compact_rows() or a row-slice of the same plane."
            ),
            bad="while live.size:\n    nest = np.where(moved, new, nest)",
            good="while live.size:\n    np.copyto(nest, new, where=moved)",
        ),
        Rule(
            id="R301",
            title="registry params drift from the accepted params",
            scope="repo metadata (api/algorithms.py, api/processes.py)",
            rationale=(
                "Every AlgorithmEntry declares its accepted Scenario.params "
                "names (the `params=` registration kwarg) so the CLI, docs "
                "and sweep validation can enumerate them without running a "
                "kernel.  The checker statically extracts the names each "
                "entry's builders/kernels actually validate (_params "
                "defaults, scenario.params.get keys, explicit allow-sets) "
                "and fails on drift in either direction: an undeclared "
                "accepted param is invisible schema, a declared-but-"
                "unaccepted one is a documented lie that run() would "
                "reject as a ConfigurationError."
            ),
            bad='REGISTRY.register("x", ..., params=())  # accepts "beta"',
            good='REGISTRY.register("x", ..., params=("beta",))',
        ),
        Rule(
            id="R302",
            title="batch kernel without a committed golden digest",
            scope="repo metadata (registry vs tests/golden/digests.json)",
            rationale=(
                "The golden-digest suite is the safety net that makes "
                "aggressive kernel rewrites safe: every batch kernel must "
                "have at least one fixed-seed case whose SHA-256 digest is "
                "committed in tests/golden/digests.json, and the case "
                "table and the digest file must cover each other exactly.  "
                "A batch kernel with no digest can drift bit-by-bit with "
                "no test ever noticing."
            ),
            bad='registry.register("new_algo", batch_kernel=kb)  # no case',
            good='golden_cases()["new_algo_clean"] -> Scenario(algorithm='
            '"new_algo") + regenerated digest entry',
        ),
        Rule(
            id="R303",
            title="fast kernel not covered by a parity/equivalence test",
            scope="repo metadata (registry vs the test tree)",
            rationale=(
                "A fast kernel is a *re-implementation* of an agent-engine "
                "law; its only correctness anchor is a parity, equivalence "
                "or golden test that names it.  The checker scans the "
                "parity-bearing test modules (test_*equivalence*, "
                "test_*parity*, test_*golden*, test_fast_*, test_*matcher* "
                "and the golden helpers) for each fast-kernel entry's "
                "registry name and fails on gaps — an uncovered kernel is "
                "an unverified rewrite waiting to diverge."
            ),
            bad='registry.register("new_algo", fast_kernel=kf)  # untested',
            good="tests/test_new_algo_parity.py exercising "
            'Scenario(algorithm="new_algo") on both backends',
        ),
        Rule(
            id="R304",
            title="unknown criterion name in registry metadata",
            scope="repo metadata (api/algorithms.py vs api/registry.py)",
            rationale=(
                "criterion_feature()/criterion_factory() arguments must "
                "name keys of the CRITERIA mapping in api/registry.py; a "
                "typo registers a feature tag no scenario can ever "
                "request (or a factory lookup that raises at run time).  "
                "The checker compares the string arguments against the "
                "statically-parsed CRITERIA keys."
            ),
            bad='criterion_feature("good_helathy")',
            good='criterion_feature("good_healthy")',
        ),
    )
}


def explain_rule(rule_id: str) -> str:
    """The ``--explain`` payload for one rule (raises KeyError on a miss)."""
    rule = RULES[rule_id]
    return (
        f"{rule.id}: {rule.title}\n"
        f"scope: {rule.scope}\n\n"
        f"{rule.rationale}\n\n"
        f"bad:\n{_indent(rule.bad)}\n"
        f"good:\n{_indent(rule.good)}\n"
    )


def _indent(text: str) -> str:
    return "\n".join("    " + line for line in text.splitlines())
