"""Lint configuration: scopes, rule selection, and the baseline location.

The defaults encode *this repository's* layout — the kernel-discipline
rules bite only inside ``src/repro/fast/*.py``, the baseline lives at the
repo root — but every knob is overridable so the linter's own tests can
point it at fixture trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

#: The committed baseline's file name (repo-root relative).
BASELINE_NAME = ".reprolint-baseline.json"

#: Markers that identify the repository root when walking upward.
_ROOT_MARKERS = ("setup.py", "pyproject.toml", ".git")


def find_repo_root(start: Path) -> Path | None:
    """The nearest ancestor of ``start`` that looks like a repo root."""
    node = start.resolve()
    if node.is_file():
        node = node.parent
    for candidate in (node, *node.parents):
        if any((candidate / marker).exists() for marker in _ROOT_MARKERS):
            return candidate
    return None


@dataclass
class LintConfig:
    """Everything the engine needs besides the source text itself."""

    #: Repo root used to relativize paths and locate metadata/baseline.
    root: Path = field(default_factory=Path.cwd)
    #: Relative-path globs where the K-rules and D104 apply.
    kernel_globs: tuple[str, ...] = ("src/repro/fast/*.py",)
    #: Enabled rule-id prefixes; ("D", "K", "R") means everything.
    select: tuple[str, ...] = ("D", "K", "R")
    #: Baseline file path; ``None`` disables baseline filtering.
    baseline_path: Path | None = None
    #: Whether to run the R-rule registry cross-checks (auto-skipped when
    #: the tree under ``root`` has no ``src/repro/api/algorithms.py``).
    registry_checks: bool = True

    def __post_init__(self) -> None:
        self.root = Path(self.root).resolve()
        if self.baseline_path is None:
            default = self.root / BASELINE_NAME
            if default.is_file():
                self.baseline_path = default

    def relpath(self, path: Path | str) -> str:
        """``path`` relative to the root (posix), or absolute if outside."""
        resolved = Path(path).resolve()
        try:
            return resolved.relative_to(self.root).as_posix()
        except ValueError:
            return resolved.as_posix()

    def is_kernel_file(self, path: Path | str) -> bool:
        """Whether the K-rules / D104 scope covers this file."""
        rel = self.relpath(path)
        return any(fnmatch(rel, pattern) for pattern in self.kernel_globs)

    def rule_enabled(self, rule_id: str) -> bool:
        return any(rule_id.startswith(prefix) for prefix in self.select)
