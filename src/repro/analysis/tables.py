"""Plain-text result tables for the benchmark harness.

The environment is terminal-only (no plotting stack), so every experiment
renders its result as an aligned ASCII table — the same rows EXPERIMENTS.md
records.  :class:`Table` handles alignment, numeric formatting, optional
markdown output, and a title/notes block.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError


def _format_cell(value) -> str:
    """Render one value: floats get 4 significant digits, rest ``str``."""
    if isinstance(value, (bool, np.bool_)):
        return "yes" if value else "no"
    if isinstance(value, np.integer):
        value = int(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.4g}"
    return str(value)


class Table:
    """An aligned text table with a title and footnotes."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        if not columns:
            raise ConfigurationError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self._rows: list[list[str]] = []
        self._notes: list[str] = []

    def add_row(self, *values) -> None:
        """Append one row; must match the column count."""
        if len(values) != len(self.columns):
            raise ConfigurationError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self._rows.append([_format_cell(value) for value in values])

    def add_rows(self, rows: Iterable[Sequence]) -> None:
        """Append many rows."""
        for row in rows:
            self.add_row(*row)

    def add_note(self, note: str) -> None:
        """Append a footnote line rendered under the table."""
        self._notes.append(note)

    @property
    def n_rows(self) -> int:
        """Number of data rows."""
        return len(self._rows)

    def _widths(self) -> list[int]:
        widths = [len(header) for header in self.columns]
        for row in self._rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        return widths

    def render(self) -> str:
        """The full ASCII rendering (title, rule, header, rows, notes)."""
        widths = self._widths()
        header = " | ".join(
            name.ljust(width) for name, width in zip(self.columns, widths)
        )
        rule = "-+-".join("-" * width for width in widths)
        lines = [self.title, "=" * max(len(self.title), len(header)), header, rule]
        for row in self._rows:
            lines.append(
                " | ".join(cell.rjust(width) for cell, width in zip(row, widths))
            )
        for note in self._notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavored markdown rendering (for EXPERIMENTS.md)."""
        header = "| " + " | ".join(self.columns) + " |"
        rule = "|" + "|".join(" --- " for _ in self.columns) + "|"
        lines = [f"**{self.title}**", "", header, rule]
        for row in self._rows:
            lines.append("| " + " | ".join(row) + " |")
        if self._notes:
            lines.append("")
            lines.extend(f"- {note}" for note in self._notes)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
