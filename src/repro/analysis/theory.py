"""The paper's theoretical constants and bounds, as executable functions.

Every experiment table prints its measured quantity next to the value the
paper's theory asserts; this module is the single source of those numbers,
with the defining lemma/theorem cited at each definition.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

#: Lemma 2.1: an active recruiter succeeds with probability at least 1/16
#: whenever the home nest holds at least two ants.
LEMMA_2_1_SUCCESS_LOWER_BOUND: float = 1.0 / 16.0

#: Lemma 3.1: an ignorant ant stays ignorant through one round with
#: probability at least 1/4 (the per-round survival rate of ignorance).
LEMMA_3_1_IGNORANCE_LOWER_BOUND: float = 1.0 / 4.0

#: Lemma 4.2: a competing nest's population decreases over one competition
#: block with probability at least 1/66.
LEMMA_4_2_DROPOUT_LOWER_BOUND: float = 1.0 / 66.0

#: Section 5's constant d (the analysis requires d >= 64); nests below a
#: 1/(dk) population share are "small" and die out (Lemmas 5.8/5.9).
SECTION_5_D: int = 64


def lower_bound_rounds(n: int, c: float = 1.0) -> float:
    """Theorem 3.2's round threshold ``(log₄ n)/2 − log₄(12c)``.

    With probability ≥ 1 − 1/n^c, at least ``6c√n`` ants are still ignorant
    after this many rounds, so any algorithm needs more rounds than this.
    """
    if n < 2:
        raise ConfigurationError("n must be >= 2")
    if c <= 0:
        raise ConfigurationError("c must be positive")
    return float(np.log(n) / (2 * np.log(4)) - np.log(12 * c) / np.log(4))


def remaining_ignorant_bound(n: int, c: float = 1.0) -> float:
    """Theorem 3.2: ≥ ``6c√n`` ants remain ignorant at the threshold round."""
    if n < 2:
        raise ConfigurationError("n must be >= 2")
    return float(6.0 * c * np.sqrt(n))


def optimal_k_bound(n: int, c: float = 1.0) -> float:
    """Theorem 4.3's requirement ``k ≤ n / (12(c+1) log n)``."""
    if n < 2:
        raise ConfigurationError("n must be >= 2")
    return float(n / (12.0 * (c + 1.0) * np.log(n)))


def simple_k_bound(n: int, c: float = 1.0, d: int = SECTION_5_D) -> float:
    """Section 5's requirement ``k ≤ √n / (8d²(c+6) log n)``.

    The paper calls this assumption conservative ("we are also hopeful that
    it could be removed"); our experiments indeed converge well beyond it.
    """
    if n < 2:
        raise ConfigurationError("n must be >= 2")
    if d < 64:
        raise ConfigurationError("Section 5 requires d >= 64")
    return float(np.sqrt(n) / (8.0 * d * d * (c + 6.0) * np.log(n)))


def lemma_5_4_initial_gap(n: int) -> float:
    """Lemma 5.4: ``E[ε(i,j,1)] ≥ 1/(3(n−1))`` after the search round."""
    if n < 2:
        raise ConfigurationError("n must be >= 2")
    return float(1.0 / (3.0 * (n - 1)))


def small_nest_threshold(n: int, k: int, d: int = SECTION_5_D) -> float:
    """Lemmas 5.8/5.9's smallness threshold ``n/(dk)`` in ants."""
    if n < 1 or k < 1:
        raise ConfigurationError("n and k must be >= 1")
    return float(n / (d * k))


def simple_dropout_horizon(n: int, k: int, c: float = 1.0) -> float:
    """Lemma 5.9's emptying horizon ``64(c+4)·k·log n`` in rounds."""
    if n < 2 or k < 1:
        raise ConfigurationError("need n >= 2 and k >= 1")
    return float(64.0 * (c + 4.0) * k * np.log(n))


def theorem_4_3_block_decay() -> float:
    """Theorem 4.3: expected surviving-nest decay factor 65/66 per block."""
    return 65.0 / 66.0
