"""Mean-field dynamics of Algorithm 3 — Lemma 5.3 made executable.

Lemma 5.3 shows the expected population proportion of nest ``i`` evolves as

    E[p(i, r+2)] = p(i, r) · (1 + ξ₁·p(i, r) − ξ₂)

where ξ₁/ξ₂ fold in the recruitment process's collision losses.  In the
mean-field (infinite-colony) limit the colony-wide bookkeeping forces the
proportions to stay on the simplex, giving the deterministic map

    p_i ← p_i + ξ·(p_i² − p_i·Σ²),     Σ² = Σ_j p_j²

(a nest gains in proportion to its squared share and loses by being poached
at rate proportional to the total recruitment pressure Σ²; ξ is the
effective per-round recruitment efficiency, absorbing Lemma 2.1's success
probability).  The map conserves Σp = 1 exactly, amplifies any gap
(Lemma 5.7's (1 + Ω(1/k)) per-step growth appears as its linearization),
and drives every trajectory with a unique maximal nest to a single winner —
the deterministic skeleton of Theorem 5.11.

This module provides the map (:func:`simple_mean_field`), an estimator of
ξ from recorded simulation histories (:func:`fit_xi`), and the time-to-
dominance predictor used to sanity-check measured convergence rounds.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError


def mean_field_step(proportions: np.ndarray, xi: float) -> np.ndarray:
    """One recruit+assess cycle of the mean-field map."""
    sigma2 = float(np.sum(proportions**2))
    updated = proportions + xi * (proportions**2 - proportions * sigma2)
    # The analytic map conserves mass and positivity for xi <= 1; clip and
    # renormalize anyway to keep long trajectories numerically on-simplex.
    updated = np.clip(updated, 0.0, None)
    total = updated.sum()
    if total == 0:
        raise ConfigurationError("mean-field state collapsed to zero mass")
    return updated / total


def simple_mean_field(
    initial_proportions,
    steps: int,
    xi: float = 0.8,
) -> np.ndarray:
    """Iterate the Lemma 5.3 mean-field map.

    Parameters
    ----------
    initial_proportions:
        Nest shares after the search round, length ``k``; normalized if
        needed.
    steps:
        Number of recruit+assess cycles (two model rounds each).
    xi:
        Effective recruitment efficiency per cycle, in ``(0, 1]``.

    Returns
    -------
    Trajectory of shape ``(steps + 1, k)`` (row 0 = initial shares).
    """
    shares = np.asarray(initial_proportions, dtype=float)
    if shares.ndim != 1 or len(shares) < 1:
        raise ConfigurationError("need a 1-D vector of nest shares")
    if np.any(shares < 0) or shares.sum() == 0:
        raise ConfigurationError("shares must be non-negative, not all zero")
    if not 0.0 < xi <= 1.0:
        raise ConfigurationError("xi must be in (0, 1]")
    if steps < 0:
        raise ConfigurationError("steps must be >= 0")
    shares = shares / shares.sum()
    trajectory = np.empty((steps + 1, len(shares)))
    trajectory[0] = shares
    for step in range(1, steps + 1):
        shares = mean_field_step(shares, xi)
        trajectory[step] = shares
    return trajectory


def predicted_winner(initial_proportions) -> int:
    """Mean-field winner: the (1-based) nest with the largest initial share.

    The deterministic map strictly amplifies the leader's advantage, so the
    initially largest nest always wins in the mean-field limit — the
    stochastic colony deviates only through sampling noise (compare E14's
    dominance curves).
    """
    shares = np.asarray(initial_proportions, dtype=float)
    return int(np.argmax(shares)) + 1


def dominance_steps(
    initial_proportions, xi: float = 0.8, threshold: float = 0.99,
    max_steps: int = 100_000,
) -> int:
    """Cycles until the leading nest holds ``threshold`` of the colony."""
    if not 0.0 < threshold < 1.0:
        raise ConfigurationError("threshold must be in (0, 1)")
    shares = np.asarray(initial_proportions, dtype=float)
    shares = shares / shares.sum()
    for step in range(max_steps):
        if shares.max() >= threshold:
            return step
        shares = mean_field_step(shares, xi)
    raise ConfigurationError(
        f"no dominance within {max_steps} steps (degenerate tie?)"
    )


def fit_xi(population_history: np.ndarray) -> float:
    """Estimate the effective ξ from a recorded Algorithm 3 history.

    ``population_history`` is the fast engine's per-round count matrix
    (``record_history=True``).  Candidate-nest shares are read off the
    assessment rows (odd rounds); each consecutive pair contributes the
    regression sample ``Δp_i ≈ ξ·(p_i² − p_i·Σ²)``, and ξ is the
    least-squares slope through the origin.
    """
    if population_history is None or len(population_history) < 3:
        raise ConfigurationError("need a history with at least two assessments")
    assessments = population_history[::2].astype(float)
    totals = assessments.sum(axis=1, keepdims=True)
    shares = assessments[:, 1:] / np.maximum(totals, 1.0)
    features: list[float] = []
    responses: list[float] = []
    for row in range(len(shares) - 1):
        current, nxt = shares[row], shares[row + 1]
        sigma2 = float(np.sum(current**2))
        predictor = current**2 - current * sigma2
        mask = current > 0
        features.extend(predictor[mask])
        responses.extend((nxt - current)[mask])
    feature_array = np.asarray(features)
    response_array = np.asarray(responses)
    denominator = float(np.dot(feature_array, feature_array))
    if denominator == 0.0:
        raise ConfigurationError("history has no competitive dynamics to fit")
    return float(np.dot(feature_array, response_array) / denominator)
