"""The experiment registry: one entry per reproduced claim.

The paper is pure theory, so its "tables and figures" are its quantitative
lemmas and theorems; DESIGN.md §4 assigns each an experiment id.  This
module is the machine-readable version of that index — tests verify every
registered experiment has its bench file, and the bench harness uses the
specs for titles and theory references.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentSpec:
    """One reproduced claim and where its artifacts live."""

    experiment_id: str
    claim: str
    measures: str
    bench_file: str
    theory_reference: str


EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in [
        ExperimentSpec(
            "E1",
            "Theorem 3.2: any algorithm needs Ω(log n) rounds",
            "rounds for best-case information spread to reach all n ants vs n",
            "bench_lower_bound.py",
            "lower_bound_rounds",
        ),
        ExperimentSpec(
            "E2",
            "Lemma 2.1: a recruiter succeeds with probability ≥ 1/16",
            "empirical recruiter success probability over home-nest mixes",
            "bench_recruitment.py",
            "LEMMA_2_1_SUCCESS_LOWER_BOUND",
        ),
        ExperimentSpec(
            "E3a",
            "Lemma 4.1: competing-nest population change is symmetric",
            "P[Y<0] vs P[Y>0] per competition block",
            "bench_optimal_dropout.py",
            "—",
        ),
        ExperimentSpec(
            "E3b",
            "Lemma 4.2: a competing nest drops out w.p. ≥ 1/66 per block",
            "per-block drop-out frequency of competing nests",
            "bench_optimal_dropout.py",
            "LEMMA_4_2_DROPOUT_LOWER_BOUND",
        ),
        ExperimentSpec(
            "E4",
            "Theorem 4.3: Algorithm 2 solves HouseHunting in O(log n)",
            "convergence rounds vs n (k fixed) and vs k (n fixed); model fits",
            "bench_optimal_scaling.py",
            "optimal_k_bound",
        ),
        ExperimentSpec(
            "E4b",
            "DESIGN.md §3.2: strict vs clarified case-3 count update",
            "rounds and success for both OptimalAnt modes",
            "bench_optimal_scaling.py",
            "—",
        ),
        ExperimentSpec(
            "E5",
            "Lemma 5.4: E[ε(i,j,1)] ≥ 1/(3(n−1)) after the search round",
            "mean relative population gap of nest pairs after round 1",
            "bench_simple_gap.py",
            "lemma_5_4_initial_gap",
        ),
        ExperimentSpec(
            "E6",
            "Lemmas 5.8/5.9: nests below n/(dk) stay small and empty out",
            "survival and emptying times of small nests under Algorithm 3",
            "bench_simple_dropout.py",
            "small_nest_threshold",
        ),
        ExperimentSpec(
            "E7",
            "Theorem 5.11: Algorithm 3 solves HouseHunting in O(k log n)",
            "convergence rounds vs n (k fixed) and vs k (n fixed); model fits",
            "bench_simple_scaling.py",
            "simple_k_bound",
        ),
        ExperimentSpec(
            "E8",
            "Implicit: Optimal beats Simple; positive feedback is essential",
            "head-to-head rounds/success: Optimal, Simple, quorum, uniform",
            "bench_comparison.py",
            "—",
        ),
        ExperimentSpec(
            "E9",
            "Section 6: round-indexed rate boost approaches O(polylog n)",
            "adaptive vs plain Simple rounds across k",
            "bench_extensions.py",
            "—",
        ),
        ExperimentSpec(
            "E10",
            "Section 6: quality-weighted recruitment picks the best nest",
            "P(best nest wins) and rounds vs quality gap",
            "bench_extensions.py",
            "—",
        ),
        ExperimentSpec(
            "E11",
            "Section 6: Algorithm 3 tolerates unbiased count noise",
            "rounds/success vs noise level (Gaussian and encounter-rate)",
            "bench_extensions.py",
            "—",
        ),
        ExperimentSpec(
            "E12",
            "Section 6: Algorithm 3 tolerates crash and Byzantine faults",
            "rounds/success vs fault fraction",
            "bench_extensions.py",
            "—",
        ),
        ExperimentSpec(
            "E13",
            "Section 6: Algorithm 3 tolerates partial asynchrony",
            "rounds/success vs per-round delay probability",
            "bench_extensions.py",
            "—",
        ),
        ExperimentSpec(
            "E14",
            "Section 5 intro: Algorithm 3 behaves like a Pólya urn",
            "dominance probability vs initial share: colony vs urn",
            "bench_polya.py",
            "—",
        ),
    ]
}


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up one experiment spec by id (raises ``KeyError`` if absent)."""
    return EXPERIMENTS[experiment_id]


def all_bench_files() -> set[str]:
    """The set of bench files the registry references."""
    return {spec.bench_file for spec in EXPERIMENTS.values()}
