"""Statistical helpers for Monte-Carlo experiment aggregation.

The reproduction replaces the paper's proofs with estimation, so every
reported number needs an uncertainty: success probabilities get Wilson
score intervals (well-behaved near 0 and 1, where our high-probability
claims live), and convergence-round summaries get bootstrap intervals
(round distributions are skewed, so normal approximations mislead).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    p90: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.2f}±{self.std:.2f} "
            f"median={self.median:.1f} p90={self.p90:.1f} "
            f"range=[{self.minimum:.0f}, {self.maximum:.0f}]"
        )


def summarize(values) -> Summary:
    """Summary statistics of a non-empty sample."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ConfigurationError("cannot summarize an empty sample")
    return Summary(
        n=int(array.size),
        mean=float(array.mean()),
        std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
        minimum=float(array.min()),
        median=float(np.median(array)),
        p90=float(np.percentile(array, 90)),
        maximum=float(array.max()),
    )


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because experiment success
    rates sit near 1 (and failure rates near 0), where Wald intervals
    collapse or escape [0, 1].
    """
    if trials <= 0:
        raise ConfigurationError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ConfigurationError("successes must be in 0..trials")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    z = float(scipy_stats.norm.ppf(0.5 + confidence / 2.0))
    p_hat = successes / trials
    denominator = 1.0 + z**2 / trials
    center = (p_hat + z**2 / (2 * trials)) / denominator
    margin = (
        z
        * np.sqrt(p_hat * (1 - p_hat) / trials + z**2 / (4 * trials**2))
        / denominator
    )
    low = float(max(0.0, center - margin))
    high = float(min(1.0, center + margin))
    # At the degenerate endpoints the Wilson bound is exactly 0/1; keep it
    # exact rather than letting float cancellation leak 0.999... out.
    if successes == trials:
        high = 1.0
    if successes == 0:
        low = 0.0
    return low, high


def bootstrap_mean_interval(
    values,
    confidence: float = 0.95,
    n_resamples: int = 2_000,
    seed: int = 0,
    statistic=np.mean,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for any statistic."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ConfigurationError("cannot bootstrap an empty sample")
    if array.size == 1:
        return float(array[0]), float(array[0])
    rng = np.random.default_rng(seed)
    resampled = np.empty(n_resamples)
    for i in range(n_resamples):
        resampled[i] = statistic(rng.choice(array, size=array.size, replace=True))
    lo = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(resampled, lo)),
        float(np.quantile(resampled, 1.0 - lo)),
    )


def empirical_probability(event_count: int, trials: int) -> float:
    """Plain ratio with a zero-trials guard."""
    if trials <= 0:
        raise ConfigurationError("trials must be positive")
    return event_count / trials


def geometric_mean(values) -> float:
    """Geometric mean of positive values (used for speedup ratios)."""
    array = np.asarray(values, dtype=float)
    if array.size == 0 or np.any(array <= 0):
        raise ConfigurationError("geometric mean needs positive values")
    return float(np.exp(np.mean(np.log(array))))
