"""Analysis toolkit: statistics, scaling-law fits, theory constants, tables.

Everything the benchmark harness needs to turn raw trial outcomes into the
paper-style comparisons recorded in EXPERIMENTS.md.
"""

from repro.analysis.dynamics import (
    dominance_steps,
    fit_xi,
    predicted_winner,
    simple_mean_field,
)
from repro.analysis.experiments import EXPERIMENTS, ExperimentSpec, get_experiment
from repro.analysis.scaling import ModelFit, fit_models, klogn_model, linear_model, log_model
from repro.analysis.stats import (
    bootstrap_mean_interval,
    summarize,
    wilson_interval,
)
from repro.analysis.tables import Table
from repro.analysis.viz import final_share_chart, population_chart, share_bar, sparkline
from repro.analysis.theory import (
    LEMMA_2_1_SUCCESS_LOWER_BOUND,
    LEMMA_4_2_DROPOUT_LOWER_BOUND,
    lemma_5_4_initial_gap,
    lower_bound_rounds,
    optimal_k_bound,
    simple_k_bound,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentSpec",
    "LEMMA_2_1_SUCCESS_LOWER_BOUND",
    "LEMMA_4_2_DROPOUT_LOWER_BOUND",
    "ModelFit",
    "Table",
    "bootstrap_mean_interval",
    "dominance_steps",
    "final_share_chart",
    "fit_models",
    "fit_xi",
    "get_experiment",
    "klogn_model",
    "lemma_5_4_initial_gap",
    "linear_model",
    "log_model",
    "lower_bound_rounds",
    "optimal_k_bound",
    "population_chart",
    "predicted_winner",
    "share_bar",
    "simple_k_bound",
    "simple_mean_field",
    "sparkline",
    "summarize",
    "wilson_interval",
]
