"""Terminal visualization: sparklines and population charts.

The execution environment is terminal-only (no plotting stack), so the
examples and experiment notes render time series as unicode sparklines and
horizontal bar charts.  Pure functions over numpy arrays; no terminal
control codes, so output is safe to pipe into files and docs.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values, width: int | None = None) -> str:
    """Render a numeric series as a unicode sparkline.

    ``width`` (optional) downsamples the series to at most that many
    characters by block-averaging; a constant series renders at the lowest
    level.
    """
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ConfigurationError("sparkline needs a non-empty 1-D series")
    if width is not None:
        if width < 1:
            raise ConfigurationError("width must be >= 1")
        if array.size > width:
            # Block-average into `width` buckets.
            edges = np.linspace(0, array.size, width + 1).astype(int)
            array = np.array(
                [array[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a]
            )
    low, high = float(array.min()), float(array.max())
    if high == low:
        return _SPARK_LEVELS[0] * array.size
    scaled = (array - low) / (high - low)
    indices = np.minimum(
        (scaled * len(_SPARK_LEVELS)).astype(int), len(_SPARK_LEVELS) - 1
    )
    return "".join(_SPARK_LEVELS[i] for i in indices)


def share_bar(fraction: float, width: int = 30) -> str:
    """A single horizontal bar for a fraction in [0, 1]."""
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError("fraction must be in [0, 1]")
    if width < 1:
        raise ConfigurationError("width must be >= 1")
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def population_chart(
    history: np.ndarray,
    assessment_rows_only: bool = True,
    width: int = 48,
    row_slice: slice | None = None,
) -> str:
    """Per-nest sparkline chart of a recorded population history.

    ``history`` is a ``(rounds, k+1)`` count matrix (column 0 = home).
    With ``assessment_rows_only`` (default) only rows where ants stand at
    candidate nests are drawn — for Algorithm 3 these are the odd rounds —
    which avoids the sawtooth caused by recruitment rounds emptying every
    nest.  ``row_slice`` overrides the row selection entirely (e.g.
    ``slice(2, None, 4)`` picks Algorithm 2's B2 cohort-measurement rows).
    """
    if history is None or history.ndim != 2 or history.shape[1] < 2:
        raise ConfigurationError("need a (rounds, k+1) population history")
    if row_slice is not None:
        rows = history[row_slice]
        if len(rows) == 0:
            raise ConfigurationError("row_slice selects no rows")
    else:
        rows = history[::2] if assessment_rows_only else history
    n = int(history[0].sum())
    lines = []
    for nest in range(1, history.shape[1]):
        series = rows[:, nest]
        peak = int(series.max())
        lines.append(
            f"n{nest:<3d} {sparkline(series, width=width)}  peak={peak:>5d}"
            f" ({peak / max(n, 1):.0%})"
        )
    return "\n".join(lines)


def final_share_chart(counts: np.ndarray, width: int = 30) -> str:
    """Bar chart of final per-nest populations (column 0 = home)."""
    counts = np.asarray(counts)
    if counts.ndim != 1 or len(counts) < 2:
        raise ConfigurationError("need a (k+1,) count vector")
    total = max(int(counts.sum()), 1)
    lines = [f"home {share_bar(counts[0] / total, width)} {int(counts[0])}"]
    for nest in range(1, len(counts)):
        lines.append(
            f"n{nest:<3d} {share_bar(counts[nest] / total, width)} {int(counts[nest])}"
        )
    return "\n".join(lines)
