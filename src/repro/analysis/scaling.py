"""Scaling-law fitting: which growth model explains the measurements?

The paper's claims are asymptotic — Algorithm 2 in Θ(log n), Algorithm 3 in
Θ(k log n), the lower bound Ω(log n).  The reproduction tests those shapes
by fitting small families of two-parameter models to measured convergence
rounds and comparing fit quality:

- ``log_model``      : y = a + b·ln(x)
- ``linear_model``   : y = a + b·x
- ``sqrt_model``     : y = a + b·√x
- ``klogn_model``    : y = a + b·(k·ln n)   (for two-variable sweeps)

Each fit reports least-squares coefficients, R², and AIC; the experiment
passes when the paper's model wins (or statistically ties) the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError

#: Maps raw predictor values to the model's single regressor.
FeatureMap = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class ScalingModel:
    """A named two-parameter model ``y = a + b·f(x)``."""

    name: str
    feature: FeatureMap


def log_model() -> ScalingModel:
    """``y = a + b·ln x``."""
    return ScalingModel("a + b*log(x)", lambda x: np.log(x))


def linear_model() -> ScalingModel:
    """``y = a + b·x``."""
    return ScalingModel("a + b*x", lambda x: x.astype(float))


def sqrt_model() -> ScalingModel:
    """``y = a + b·sqrt(x)``."""
    return ScalingModel("a + b*sqrt(x)", lambda x: np.sqrt(x))


def klogn_model(n_values: Sequence[float]) -> ScalingModel:
    """``y = a + b·(k·ln n)`` over paired ``(k, n)`` observations.

    The model is applied to ``x = k`` with the matching ``n`` supplied
    here, enabling joint sweeps.
    """
    n_array = np.asarray(n_values, dtype=float)
    return ScalingModel(
        "a + b*k*log(n)", lambda k: k.astype(float) * np.log(n_array)
    )


@dataclass(frozen=True)
class ModelFit:
    """Least-squares outcome of one model on one data set."""

    name: str
    intercept: float
    slope: float
    r_squared: float
    aic: float
    residuals: np.ndarray

    def predict(self, feature_values: np.ndarray) -> np.ndarray:
        """Predicted response for already-mapped feature values."""
        return self.intercept + self.slope * feature_values

    def __str__(self) -> str:
        return (
            f"{self.name}: intercept={self.intercept:.2f} slope={self.slope:.3f} "
            f"R^2={self.r_squared:.4f} AIC={self.aic:.1f}"
        )


def fit_model(model: ScalingModel, x, y) -> ModelFit:
    """Ordinary least squares of ``y`` on ``[1, f(x)]``."""
    x_array = np.asarray(x, dtype=float)
    y_array = np.asarray(y, dtype=float)
    if x_array.shape != y_array.shape or x_array.ndim != 1:
        raise ConfigurationError("x and y must be 1-D arrays of equal length")
    if x_array.size < 3:
        raise ConfigurationError("need at least 3 points to fit a 2-parameter model")
    features = model.feature(x_array)
    design = np.column_stack([np.ones_like(features), features])
    coefficients, *_ = np.linalg.lstsq(design, y_array, rcond=None)
    predictions = design @ coefficients
    residuals = y_array - predictions
    rss = float(np.sum(residuals**2))
    tss = float(np.sum((y_array - y_array.mean()) ** 2))
    r_squared = 1.0 - rss / tss if tss > 0 else 1.0
    n_points = x_array.size
    # AIC for Gaussian residuals with 2 coefficients + variance.
    rss_floor = max(rss, 1e-12)
    aic = n_points * np.log(rss_floor / n_points) + 2 * 3
    return ModelFit(
        name=model.name,
        intercept=float(coefficients[0]),
        slope=float(coefficients[1]),
        r_squared=r_squared,
        aic=float(aic),
        residuals=residuals,
    )


def fit_models(models: Sequence[ScalingModel], x, y) -> list[ModelFit]:
    """Fit several models to the same data, best AIC first."""
    fits = [fit_model(model, x, y) for model in models]
    return sorted(fits, key=lambda fit: fit.aic)


def best_model(models: Sequence[ScalingModel], x, y) -> ModelFit:
    """The AIC-best of the candidate models."""
    return fit_models(models, x, y)[0]
