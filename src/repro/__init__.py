"""repro — a reproduction of *Distributed House-Hunting in Ant Colonies*
(Ghaffari, Musco, Radeva, Lynch; PODC 2015, arXiv:1505.03799).

The package implements the paper's synchronous ant-colony model, its two
house-hunting algorithms (the optimal O(log n) Algorithm 2 and the natural
O(k log n) Algorithm 3), the information-spreading process behind its
Ω(log n) lower bound, baselines (rumor spreading, quorum sensing, Pólya
urn), every Section 6 extension (adaptive rates, non-binary qualities,
noise, faults, asynchrony, low-level estimation subroutines), a vectorized
fast engine for large sweeps, and an analysis toolkit that regenerates the
per-theorem experiment tables recorded in EXPERIMENTS.md.

Quickstart::

    from repro import NestConfig, run_trial, simple_factory

    nests = NestConfig.binary(k=4, good={1, 3})
    result = run_trial(simple_factory(), n=128, nests=nests, seed=7)
    print(result.converged_round, result.chosen_nest)
"""

from repro.api import (
    REGISTRY,
    STUDIES,
    AlgorithmRegistry,
    ResultTable,
    RunReport,
    Scenario,
    Study,
    Sweep,
    aggregate,
    resolve_backend,
    run_batch,
    run_scenario,
    run_stats,
    run_study,
)
from repro.core import (
    IgnorantPolicy,
    InformedSpreadAnt,
    OptimalAnt,
    SimpleAnt,
    informed_spread_factory,
    optimal_factory,
    simple_factory,
)
from repro.exceptions import (
    ConfigurationError,
    NotConvergedError,
    ProtocolError,
    ReproError,
    SimulationError,
)
from repro.model import (
    Ant,
    Environment,
    HouseHuntingProblem,
    NestConfig,
    SolutionStatus,
)
from repro.sim import (
    CountNoise,
    DelayModel,
    EventTrace,
    FaultPlan,
    MetricsRecorder,
    RandomSource,
    Simulation,
    SimulationResult,
    TrialStats,
    run_trial,
    run_trials,
)
from repro.types import BAD_QUALITY, GOOD_QUALITY, HOME_NEST

__version__ = "1.0.0"

__all__ = [
    "AlgorithmRegistry",
    "Ant",
    "BAD_QUALITY",
    "ConfigurationError",
    "CountNoise",
    "DelayModel",
    "Environment",
    "EventTrace",
    "FaultPlan",
    "GOOD_QUALITY",
    "HOME_NEST",
    "HouseHuntingProblem",
    "IgnorantPolicy",
    "InformedSpreadAnt",
    "MetricsRecorder",
    "NestConfig",
    "NotConvergedError",
    "OptimalAnt",
    "ProtocolError",
    "REGISTRY",
    "ResultTable",
    "RandomSource",
    "ReproError",
    "RunReport",
    "STUDIES",
    "Scenario",
    "SimpleAnt",
    "Simulation",
    "SimulationError",
    "SimulationResult",
    "SolutionStatus",
    "Study",
    "Sweep",
    "TrialStats",
    "__version__",
    "aggregate",
    "informed_spread_factory",
    "optimal_factory",
    "resolve_backend",
    "run_batch",
    "run_scenario",
    "run_stats",
    "run_study",
    "run_trial",
    "run_trials",
    "simple_factory",
]
