"""Deterministic chaos injection for the execution stack.

The supervised runner's whole promise — a killed worker, a hung chunk, a
poisoned kernel all recover bit-identically — is only testable if faults
can be injected *deterministically*: this worker, this chunk, this
attempt, every run.  This module is that trigger.  A chaos **plan** is a
list of entries, each matching a point in a chunk's execution and naming
an action; the plan travels through the ``$REPRO_CHAOS`` environment
variable (inline JSON or ``@/path/to/plan.json``) so it crosses the
``fork`` boundary into workers without any API surface.

An entry is a JSON object::

    {"scope": "cell0",     # run_batch call, "*" matches any
     "task": 1,            # chunk index within the call, or "*" / [0, 2]
     "attempt": 0,         # retry attempt number, or "*" / [0, 1]
     "kind": "batch",      # task kind ("batch"/"single"), or "*"
     "phase": "start",     # "start" (before simulating) or "result"
                           # (after the shm segment exists, before return)
     "action": "kill",     # kill | stall | raise | flake
     "seconds": 30}        # stall duration (stall only)

Actions: ``kill`` SIGKILLs the worker (pool sees ``BrokenProcessPool``),
``stall`` sleeps past the chunk deadline (pool sees ``ChunkTimeout``),
``raise`` raises :class:`ChaosError` — a stand-in for a deterministic
kernel crash, *not* retryable at the chunk level — and ``flake`` raises a
retryable :class:`~repro.exceptions.WorkerCrash`, modeling a transient
infrastructure error.

The hook (:func:`maybe_inject`) only runs inside ``_run_task_packed`` —
the worker-side entrypoint — never on the serial in-process path, so a
``kill`` can never take down the parent.  ``$REPRO_CHAOS`` values of
``"1"``/``"on"``/``"true"`` enable the machinery with an empty plan (the
CI chaos-smoke switch), and malformed values parse as an empty plan: bad
chaos config must degrade to "no chaos", never break a real run.
"""

from __future__ import annotations

import json
import os
import signal
import time
from pathlib import Path
from typing import Any

from repro.exceptions import ReproError, WorkerCrash

CHAOS_ENV = "REPRO_CHAOS"

#: ``$REPRO_CHAOS`` values that enable chaos with an empty plan.
_SWITCH_VALUES = {"1", "on", "true", "yes"}

_ACTIONS = {"kill", "stall", "raise", "flake"}


class ChaosError(ReproError):
    """Raised by a ``raise`` chaos entry: a simulated deterministic crash."""


def parse_plan(value: str | None) -> list[dict[str, Any]]:
    """Parse a ``$REPRO_CHAOS`` value into a list of plan entries.

    Accepts inline JSON (a list, or an object with an ``entries`` key),
    an ``@/path`` or bare-path reference to a JSON file, or a bare
    on-switch value.  Anything unparseable is an empty plan.
    """
    if not value:
        return []
    text = value.strip()
    if not text:
        return []
    if text.lower() in _SWITCH_VALUES:
        return []
    if text.startswith("@"):
        text = text[1:]
    if not text.startswith(("[", "{")):
        try:
            text = Path(text).read_text(encoding="utf-8")
        except OSError:
            return []
    try:
        data = json.loads(text)
    except ValueError:
        return []
    if isinstance(data, dict):
        data = data.get("entries", [])
    if not isinstance(data, list):
        return []
    entries = []
    for entry in data:
        if isinstance(entry, dict) and entry.get("action") in _ACTIONS:
            entries.append(entry)
    return entries


def active_plan() -> list[dict[str, Any]]:
    """The current process's chaos plan (re-read per call: env may change)."""
    return parse_plan(os.environ.get(CHAOS_ENV))


def _matches(selector: Any, value: Any, default: Any = "*") -> bool:
    if selector is None:
        selector = default
    if selector == "*":
        return True
    if isinstance(selector, list):
        return value in selector
    return selector == value


def maybe_inject(
    scope: str | None,
    task: int,
    attempt: int,
    kind: str,
    phase: str,
) -> None:
    """Fire the first plan entry matching this execution point, if any.

    Called from the worker entrypoint with the chunk's coordinates; a
    matching ``kill`` never returns.  With no plan this is one env read
    and a parse of at most a few bytes — negligible on the clean path.
    """
    plan = active_plan()
    if not plan:
        return
    for entry in plan:
        if not _matches(entry.get("scope"), scope or "*"):
            continue
        if not _matches(entry.get("task"), task):
            continue
        if not _matches(entry.get("attempt"), attempt, default=0):
            continue
        if not _matches(entry.get("kind"), kind):
            continue
        if entry.get("phase", "start") != phase:
            continue
        _fire(entry)
        return


def _fire(entry: dict[str, Any]) -> None:
    action = entry["action"]
    if action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif action == "stall":
        time.sleep(float(entry.get("seconds", 60.0)))
    elif action == "raise":
        raise ChaosError(entry.get("message", "chaos: injected failure"))
    elif action == "flake":
        raise WorkerCrash(entry.get("message", "chaos: injected flake"))
