"""Scenario API command line: run any registered algorithm on any backend.

Usage::

    python -m repro.api --list
    python -m repro.api --algorithm simple --n 256 --k 4 --good 1,3
    python -m repro.api --algorithm optimal --backend agent --trials 5
    python -m repro.api --algorithm simple --trials 40 --workers 4 --json
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys

from repro.api import REGISTRY, Scenario, aggregate, resolve_backend, run_batch
from repro.exceptions import ReproError
from repro.model.nests import NestConfig


def _parse_good(spec: str, k: int) -> set[int]:
    if spec == "all":
        return set(range(1, k + 1))
    return {int(part) for part in spec.split(",") if part.strip()}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.api",
        description="Run a registered house-hunting algorithm via the Scenario API.",
    )
    parser.add_argument("--list", action="store_true", help="list registered algorithms")
    parser.add_argument("--algorithm", help="registry name (see --list)")
    parser.add_argument(
        "--backend",
        choices=("auto", "agent", "fast"),
        default="auto",
        help="engine selection (default: auto)",
    )
    parser.add_argument("--n", type=int, default=256, help="colony size")
    parser.add_argument("--k", type=int, default=4, help="candidate nests")
    parser.add_argument(
        "--good",
        default="all",
        help="comma-separated good nest ids, or 'all' (default)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument("--max-rounds", type=int, default=100_000, help="round cap")
    parser.add_argument(
        "--trials", type=int, default=1, help="independent trials (default 1)"
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="worker processes for --trials > 1"
    )
    parser.add_argument(
        "--matcher",
        choices=("v1", "v2"),
        help="Algorithm 1 draw schedule for the fast engine: 'v2' (default) "
        "is the batched data-independent schedule, 'v1' the sequential-scan "
        "reference (shorthand for --param matcher=...)",
    )
    parser.add_argument(
        "--batch-chunk",
        type=int,
        default=None,
        metavar="B",
        help="trials per batch-kernel invocation for homogeneous sweeps "
        "(default: runner's DEFAULT_BATCH_CHUNK; results never depend on it)",
    )
    parser.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="algorithm parameter (repeatable); VALUE is parsed as JSON "
        "when possible, else kept as a string",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    return parser


def _parse_params(pairs: list[str]) -> dict:
    params = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep:
            raise ValueError(f"--param needs KEY=VALUE, got {pair!r}")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for name, backends, summary in REGISTRY.describe():
            print(f"{name:18s} [{backends:10s}] {summary}")
        return 0

    if not args.algorithm:
        parser.print_usage(sys.stderr)
        print("error: --algorithm is required (or use --list)", file=sys.stderr)
        return 2

    try:
        params = _parse_params(args.param)
        if args.matcher is not None:
            params["matcher"] = args.matcher
        scenario = Scenario(
            algorithm=args.algorithm,
            n=args.n,
            nests=NestConfig.binary(args.k, _parse_good(args.good, args.k)),
            seed=args.seed,
            max_rounds=args.max_rounds,
            params=params,
        )
        backend = resolve_backend(scenario, args.backend)
        scenarios = (
            scenario.trials(args.trials) if args.trials > 1 else [scenario]
        )
        reports = run_batch(
            scenarios,
            workers=args.workers,
            backend=args.backend,
            batch_chunk=args.batch_chunk,
        )
    except (ReproError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.json:
        payload = {
            "scenario": scenario.to_dict(),
            "backend": backend,
            "reports": [report.to_dict() for report in reports],
        }
        if len(reports) > 1:
            stats = aggregate(reports)
            payload["stats"] = {
                "n_trials": stats.n_trials,
                "n_completed": sum(1 for r in reports if r.converged),
                "n_converged": stats.n_converged,
                "success_rate": stats.success_rate,
                "median_rounds": stats.median_rounds,
            }
        print(json.dumps(payload, indent=2))
        return 0

    print(
        f"{args.algorithm} on backend={backend}: n={args.n}, k={args.k}, "
        f"seed={args.seed}, trials={args.trials}"
    )
    if len(reports) == 1:
        report = reports[0]
        if report.converged:
            print(
                f"converged in {report.converged_round} rounds"
                + (
                    f" on nest {report.chosen_nest}"
                    f" ({'good' if report.chose_good_nest else 'bad'})"
                    if report.chosen_nest is not None
                    else ""
                )
            )
        else:
            print(f"did not converge within {report.rounds_executed} rounds")
    elif all(report.chosen_nest is None for report in reports):
        # Reference processes (rumor, spread censored, ...) complete without
        # choosing a nest; "success on a good nest" would read as failure.
        completed = [r.converged_round for r in reports if r.converged]
        median = statistics.median(completed) if completed else float("nan")
        print(
            f"completed {len(completed)}/{len(reports)} trials, "
            f"median {median:.1f} rounds"
        )
    else:
        stats = aggregate(reports)
        print(
            f"success {stats.success_rate:.3f} "
            f"({stats.n_converged}/{stats.n_trials} trials), "
            f"median {stats.median_rounds:.1f} rounds, "
            f"p95 {stats.percentile(95):.1f}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
