"""Scenario API command line: run algorithms, studies, and sweeps.

Usage::

    python -m repro.api --list
    python -m repro.api --list-studies
    python -m repro.api --algorithm simple --n 256 --k 4 --good 1,3
    python -m repro.api --algorithm optimal --backend agent --trials 5
    python -m repro.api --algorithm simple --trials 40 --workers 4 --json
    python -m repro.api sweep my_study.json --workers 4
    python -m repro.api sweep E7 --quick --no-cache --csv
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

from repro.api import (
    REGISTRY,
    STUDIES,
    ExecutionPolicy,
    Scenario,
    Study,
    aggregate,
    default_workers,
    resolve_backend,
    run_batch,
    run_study,
)
from repro.exceptions import ReproError
from repro.model.nests import NestConfig


def _parse_good(spec: str, k: int) -> set[int]:
    if spec == "all":
        return set(range(1, k + 1))
    return {int(part) for part in spec.split(",") if part.strip()}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.api",
        description="Run a registered house-hunting algorithm via the Scenario API.",
    )
    parser.add_argument("--list", action="store_true", help="list registered algorithms")
    parser.add_argument(
        "--list-studies",
        action="store_true",
        help="list the registered experiment studies (run with `sweep NAME`)",
    )
    parser.add_argument("--algorithm", help="registry name (see --list)")
    parser.add_argument(
        "--backend",
        choices=("auto", "agent", "fast"),
        default="auto",
        help="engine selection (default: auto)",
    )
    parser.add_argument("--n", type=int, default=256, help="colony size")
    parser.add_argument("--k", type=int, default=4, help="candidate nests")
    parser.add_argument(
        "--good",
        default="all",
        help="comma-separated good nest ids, or 'all' (default)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument("--max-rounds", type=int, default=100_000, help="round cap")
    parser.add_argument(
        "--trials", type=int, default=1, help="independent trials (default 1)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --trials > 1 (default: $REPRO_WORKERS or 1)",
    )
    parser.add_argument(
        "--matcher",
        choices=("v1", "v2"),
        help="Algorithm 1 draw schedule for the fast engine: 'v2' (default) "
        "is the batched data-independent schedule, 'v1' the sequential-scan "
        "reference (shorthand for --param matcher=...)",
    )
    parser.add_argument(
        "--batch-chunk",
        type=int,
        default=None,
        metavar="B",
        help="trials per batch-kernel invocation for homogeneous sweeps "
        "(default: runner's DEFAULT_BATCH_CHUNK; results never depend on it)",
    )
    parser.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="algorithm parameter (repeatable); VALUE is parsed as JSON "
        "when possible, else kept as a string",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    return parser


def _parse_params(pairs: list[str]) -> dict:
    params = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep:
            raise ValueError(f"--param needs KEY=VALUE, got {pair!r}")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.api sweep",
        description="Run a declarative study: a registered name or a JSON file.",
    )
    parser.add_argument(
        "study",
        help="registered study name (see --list-studies) or path to a "
        "Study JSON file",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced grids for registered studies"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base seed for registered studies"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: $REPRO_WORKERS or 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache for this run",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR, else no cache)",
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "agent", "fast"),
        default=None,
        help="force one engine for every cell (default: per-cell)",
    )
    parser.add_argument(
        "--chunk-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-chunk deadline for supervised dispatch (default: none)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="chunk-level retries after a worker death or blown deadline "
        "(default: 2)",
    )
    parser.add_argument(
        "--fail-fast",
        action="store_true",
        help="abort on the first exhausted cell instead of quarantining "
        "it as a failure row",
    )
    parser.add_argument(
        "--no-supervise",
        action="store_true",
        help="disable worker supervision (pre-resilience dispatch)",
    )
    parser.add_argument(
        "--csv", action="store_true", help="emit the result table as CSV"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    return parser


def _build_policy(args: argparse.Namespace) -> ExecutionPolicy | None:
    """An ExecutionPolicy from the CLI flags (None: scheduler default)."""
    overrides = {}
    if args.chunk_timeout is not None:
        overrides["chunk_timeout"] = args.chunk_timeout
    if args.max_retries is not None:
        overrides["max_retries"] = args.max_retries
    if args.fail_fast:
        overrides["quarantine"] = False
    if args.no_supervise:
        overrides["supervise"] = False
    return ExecutionPolicy(**overrides) if overrides else None


def _load_study(spec: str, quick: bool, seed: int) -> Study:
    # Registered studies and their metric functions live in the experiment
    # modules; import lazily (only for `sweep`) so plain scenario runs
    # never pay for them.  Study files may reference those metrics too.
    import repro.experiments  # noqa: F401

    # A registered name wins over a same-named stray file in the cwd; an
    # explicit .json suffix (or any path separator) always means a file.
    path = Path(spec)
    looks_like_path = path.suffix == ".json" or len(path.parts) > 1
    if looks_like_path or (spec not in STUDIES and path.is_file()):
        return Study.from_json(path.read_text(encoding="utf-8"))
    return STUDIES.build(spec, quick=quick, base_seed=seed)


def sweep_main(argv: list[str]) -> int:
    args = build_sweep_parser().parse_args(argv)
    try:
        study = _load_study(args.study, args.quick, args.seed)
        cache = "auto"
        if args.no_cache:
            cache = None
        elif args.cache_dir is not None:
            cache = args.cache_dir
        if args.json:
            return _sweep_json_stream(args, study, cache)
        result = run_study(
            study,
            backend=args.backend,
            workers=args.workers,
            cache=cache,
            policy=_build_policy(args),
        )
    except (ReproError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    quarantined = result.quarantined
    degraded = result.degraded
    if args.csv:
        sys.stdout.write(result.table.to_csv())
        return 0
    print(f"study {study.name}: {len(result.cells)} cells, ", end="")
    if result.cache_hits or result.cache_misses:
        print(
            f"{result.cache_hits} cached / {result.cache_misses} computed "
            f"({result.simulated_trials} trials simulated)"
        )
    else:
        print(f"{result.simulated_trials} trials simulated (cache disabled)")
    for cell_result in degraded:
        print(
            f"  degraded cell {cell_result.cell.index}: served by the "
            f"agent engine after {', '.join(cell_result.degraded)}"
        )
    for cell_result in quarantined:
        failure = cell_result.failure
        print(
            f"  quarantined cell {cell_result.cell.index}: {failure.kind}: "
            f"{failure.message} (after {failure.attempts} attempt(s))"
        )
    sys.stdout.write(result.table.to_csv())
    return 0


def _sweep_json_stream(args: argparse.Namespace, study, cache) -> int:
    """``sweep --json``: NDJSON — one line per completed cell, then a summary.

    Cells stream the moment they finish (a supervisor tailing the run sees
    progress instead of one buffered blob), each line the shared
    :func:`~repro.api.scheduler.cell_event` record.  The final line keeps
    the historical summary object (``study`` / ``table`` / counters)
    byte-compatible in *keys* with the old single-object output.
    """
    from repro.api.scheduler import CellScheduler, cell_event, fold_study_result

    with CellScheduler(
        study,
        backend=args.backend,
        workers=args.workers,
        cache=cache,
        policy=_build_policy(args),
    ) as scheduler:
        results = []
        for cell_result in scheduler.outcomes():
            results.append(cell_result)
            print(json.dumps(cell_event(cell_result)), flush=True)
        result = fold_study_result(
            study, results, cached=scheduler.cache is not None
        )
    print(
        json.dumps(
            {
                "study": study.to_dict(),
                "table": result.table.to_dict(),
                "cells": len(result.cells),
                "cache_hits": result.cache_hits,
                "cache_misses": result.cache_misses,
                "simulated_trials": result.simulated_trials,
                "quarantined": [
                    {
                        "cell": c.cell.index,
                        "kind": c.failure.kind,
                        "message": c.failure.message,
                        "attempts": c.failure.attempts,
                    }
                    for c in result.quarantined
                ],
                "degraded": [c.cell.index for c in result.degraded],
            }
        )
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "sweep":
        return sweep_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for name, backends, summary in REGISTRY.describe():
            print(f"{name:18s} [{backends:10s}] {summary}")
        return 0

    if args.list_studies:
        import repro.experiments  # noqa: F401  (registers the studies)

        for name, description in STUDIES.describe():
            print(f"{name:6s} {description}")
        return 0

    if not args.algorithm:
        parser.print_usage(sys.stderr)
        print("error: --algorithm is required (or use --list)", file=sys.stderr)
        return 2

    try:
        params = _parse_params(args.param)
        if args.matcher is not None:
            params["matcher"] = args.matcher
        scenario = Scenario(
            algorithm=args.algorithm,
            n=args.n,
            nests=NestConfig.binary(args.k, _parse_good(args.good, args.k)),
            seed=args.seed,
            max_rounds=args.max_rounds,
            params=params,
        )
        backend = resolve_backend(scenario, args.backend)
        scenarios = (
            scenario.trials(args.trials) if args.trials > 1 else [scenario]
        )
        reports = run_batch(
            scenarios,
            workers=args.workers if args.workers is not None else default_workers(),
            backend=args.backend,
            batch_chunk=args.batch_chunk,
        )
    except (ReproError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.json:
        payload = {
            "scenario": scenario.to_dict(),
            "backend": backend,
            "reports": [report.to_dict() for report in reports],
        }
        if len(reports) > 1:
            stats = aggregate(reports)
            payload["stats"] = {
                "n_trials": stats.n_trials,
                "n_completed": sum(1 for r in reports if r.converged),
                "n_converged": stats.n_converged,
                "success_rate": stats.success_rate,
                "median_rounds": stats.median_rounds,
            }
        print(json.dumps(payload, indent=2))
        return 0

    print(
        f"{args.algorithm} on backend={backend}: n={args.n}, k={args.k}, "
        f"seed={args.seed}, trials={args.trials}"
    )
    if len(reports) == 1:
        report = reports[0]
        if report.converged:
            print(
                f"converged in {report.converged_round} rounds"
                + (
                    f" on nest {report.chosen_nest}"
                    f" ({'good' if report.chose_good_nest else 'bad'})"
                    if report.chosen_nest is not None
                    else ""
                )
            )
        else:
            print(f"did not converge within {report.rounds_executed} rounds")
    elif all(report.chosen_nest is None for report in reports):
        # Reference processes (rumor, spread censored, ...) complete without
        # choosing a nest; "success on a good nest" would read as failure.
        completed = [r.converged_round for r in reports if r.converged]
        median = statistics.median(completed) if completed else float("nan")
        print(
            f"completed {len(completed)}/{len(reports)} trials, "
            f"median {median:.1f} rounds"
        )
    else:
        stats = aggregate(reports)
        print(
            f"success {stats.success_rate:.3f} "
            f"({stats.n_converged}/{stats.n_trials} trials), "
            f"median {stats.median_rounds:.1f} rounds, "
            f"p95 {stats.percentile(95):.1f}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
