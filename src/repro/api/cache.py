"""Content-addressed cache for sweep cells, over a pluggable entry store.

Every sweep cell — one scenario family, ``trials`` seeded trials, a metric
set, a resolved backend — is a pure function of its declaration, so its
aggregate result can be cached by content address: the SHA-256 of the
cell's canonical JSON payload (which leans on :meth:`Scenario.to_dict`
being canonical — sorted params, normalized scalars).  A re-run of a study
then only simulates the cells it has never seen, and an interrupted sweep
resumes from the cells that already finished.

Entries store the cell's :class:`~repro.sim.run.TrialStats` plus the
evaluated metric columns (never the raw reports — histories would dwarf
the results).  The payload is stored alongside and verified on load, so a
truncated or corrupted entry is treated as a miss and recomputed, never
trusted.  ``CACHE_FORMAT_VERSION`` is part of every key: changing the
entry schema invalidates old entries instead of misreading them.

Persistence is delegated to a :class:`~repro.api.store.CellStore`
(``store=``): :class:`~repro.api.store.DirectoryStore` — one JSON file
per entry, the classic layout and the default — or
:class:`~repro.api.store.SQLiteStore` — sharded SQLite databases with
WAL, an LRU clock, and byte-budget eviction, built for the long-running
study service.  The cache semantics (verification, accounting) are
identical over either.

The default location is ``$REPRO_CACHE_DIR`` when set; otherwise caching
is off unless a cache (or path) is passed explicitly — test suites and
one-off scripts shouldn't silently grow a cache directory.
``$REPRO_CACHE_STORE=sqlite`` switches the environment default to the
sharded SQLite store.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.api.store import (
    CellStore,
    DirectoryStore,
    StoreDefect,
    make_store,
)
from repro.sim.run import TrialStats

#: Bump when the entry schema or key payload layout changes; old entries
#: become unreachable (different key) rather than misread.
CACHE_FORMAT_VERSION = 1

#: Environment variable naming the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable selecting the default store kind (see
#: :data:`repro.api.store.STORE_KINDS`).
CACHE_STORE_ENV = "REPRO_CACHE_STORE"

#: Most defect records retained by :attr:`ResultCache.defects` — a
#: long-lived daemon must observe corruption without the log becoming an
#: unbounded memory leak.  Older records drop off; the total count
#: survives in :meth:`ResultCache.stats`.
DEFECT_LOG_LIMIT = 256


class DefectLog(list):
    """A list with a retention cap: append drops the oldest beyond it.

    Still a real ``list`` (equality against plain lists, slicing, the
    whole surface) so existing callers and tests are untouched; only the
    growth is bounded.  ``dropped`` counts the records aged out.
    """

    def __init__(self, maxlen: int = DEFECT_LOG_LIMIT) -> None:
        super().__init__()
        self.maxlen = maxlen
        self.dropped = 0

    def append(self, item: Any) -> None:
        super().append(item)
        excess = len(self) - self.maxlen
        if excess > 0:
            del self[:excess]
            self.dropped += excess

    @property
    def total(self) -> int:
        """Defects ever recorded, including aged-out ones."""
        return len(self) + self.dropped


def stats_to_dict(stats: TrialStats) -> dict[str, Any]:
    """JSON-safe form of a :class:`TrialStats`; inverse of :func:`stats_from_dict`."""
    return {
        "n_trials": int(stats.n_trials),
        "n_converged": int(stats.n_converged),
        "rounds": [int(r) for r in stats.rounds],
        "censored_at": int(stats.censored_at),
        "chosen_nests": {
            str(nest): int(count) for nest, count in sorted(stats.chosen_nests.items())
        },
    }


def stats_from_dict(data: Mapping[str, Any]) -> TrialStats:
    """Rebuild a :class:`TrialStats` from :func:`stats_to_dict` output."""
    return TrialStats(
        n_trials=int(data["n_trials"]),
        n_converged=int(data["n_converged"]),
        rounds=np.asarray(data["rounds"], dtype=np.int64),
        censored_at=int(data["censored_at"]),
        chosen_nests={int(nest): int(count) for nest, count in data["chosen_nests"].items()},
    )


def content_key(payload: Mapping[str, Any]) -> str:
    """The content address of a cell payload: SHA-256 of canonical JSON."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ResultCache:
    """Per-cell entries addressed by payload hash, over a pluggable store."""

    def __init__(
        self,
        root: "str | Path | None" = None,
        *,
        store: CellStore | None = None,
    ) -> None:
        if store is None:
            if root is None:
                raise ValueError("ResultCache needs a root path or a store")
            store = DirectoryStore(root)
        self.store_backend = store
        #: The on-disk location when the store has one (directory layouts
        #: keep the historical ``cache.root`` attribute working).
        self.root = Path(root) if root is not None else getattr(store, "root", None)
        self.hits = 0
        self.misses = 0
        #: (key, reason) records for entries that *existed* but were
        #: unreadable — corruption observability (a plain missing file is
        #: a cold miss, not a defect).  Every defect is also a miss.
        #: Bounded (:data:`DEFECT_LOG_LIMIT`): long-lived daemons keep the
        #: most recent records, :meth:`stats` keeps the total count.
        self.defects: DefectLog = DefectLog()

    def _path(self, key: str) -> Path:
        """Entry path for directory-backed caches (back-compat surface)."""
        if isinstance(self.store_backend, DirectoryStore):
            return self.store_backend.path(key)
        raise TypeError(
            f"{type(self.store_backend).__name__} does not store one file "
            "per entry"
        )

    def load(
        self, payload: Mapping[str, Any]
    ) -> tuple[TrialStats, dict[str, Any]] | None:
        """The cached (stats, metrics) for a payload, or ``None`` on a miss.

        Any defect — missing entry, truncated/unparseable JSON, garbage
        bytes, schema mismatch, or a payload that doesn't round-trip to
        the same content (hash collision paranoia) — counts as a miss;
        the caller recomputes and overwrites.  Defects in entries that
        *existed* are additionally recorded in :attr:`defects` so
        corruption is observable, not silently healed.
        """
        key = content_key(payload)
        try:
            text = self.store_backend.get(key)
        except StoreDefect as error:
            self.misses += 1
            self.defects.append((key, str(error)))
            return None
        if text is None:
            self.misses += 1
            return None
        try:
            entry = json.loads(text)
            if entry["version"] != CACHE_FORMAT_VERSION:
                raise ValueError("cache format version mismatch")
            # Normalize through JSON so tuples/lists compare equal; dict
            # equality is order-insensitive, so sort_keys storage is fine.
            if entry["payload"] != json.loads(json.dumps(payload)):
                raise ValueError("payload mismatch")
            stats = stats_from_dict(entry["stats"])
            metrics = dict(entry["metrics"])
        except (ValueError, KeyError, TypeError) as error:
            self.misses += 1
            self.defects.append((key, str(error) or type(error).__name__))
            return None
        self.hits += 1
        return stats, metrics

    def store(
        self,
        payload: Mapping[str, Any],
        stats: TrialStats,
        metrics: Mapping[str, Any],
    ) -> str:
        """Persist one cell result atomically; returns its content key."""
        key = content_key(payload)
        entry = {
            "version": CACHE_FORMAT_VERSION,
            "payload": payload,
            "stats": stats_to_dict(stats),
            "metrics": dict(metrics),
        }
        # No sort_keys here: the *metrics* dict's insertion order is the
        # result-table column order, and must survive a warm read.
        self.store_backend.put(key, json.dumps(entry))
        return key

    def stats(self) -> dict[str, Any]:
        """Accounting counters plus the store's own (the ``/stats`` payload).

        ``hits``/``misses``/``defects`` are per-cache-instance; the store
        keys (``entries``/``bytes``/``evictions``/...) describe the shared
        on-disk state.
        """
        data: dict[str, Any] = {
            "hits": self.hits,
            "misses": self.misses,
            "defects": self.defects.total,
            "defects_logged": len(self.defects),
        }
        data.update(self.store_backend.stats())
        return data

    def __len__(self) -> int:
        return len(self.store_backend)


def default_cache() -> ResultCache | None:
    """The cache named by ``$REPRO_CACHE_DIR``, or ``None`` (caching off).

    ``$REPRO_CACHE_STORE`` picks the store layout (``directory`` default,
    ``sqlite`` for the sharded daemon store).
    """
    root = os.environ.get(CACHE_DIR_ENV)
    if not root:
        return None
    kind = os.environ.get(CACHE_STORE_ENV, "directory")
    return ResultCache(root, store=make_store(kind, root))


def resolve_cache(cache: "ResultCache | str | Path | None") -> ResultCache | None:
    """Normalize a ``cache=`` argument: 'auto' -> env default, path -> cache.

    Any object with ``load``/``store`` passes through untouched, so cache
    *wrappers* (the service's in-flight deduplicating cache) ride the same
    parameter.
    """
    if cache is None or cache is False:
        return None
    if cache == "auto":
        return default_cache()
    if hasattr(cache, "load") and hasattr(cache, "store"):
        return cache
    return ResultCache(cache)
