"""Content-addressed on-disk cache for sweep cells.

Every sweep cell — one scenario family, ``trials`` seeded trials, a metric
set, a resolved backend — is a pure function of its declaration, so its
aggregate result can be cached by content address: the SHA-256 of the
cell's canonical JSON payload (which leans on :meth:`Scenario.to_dict`
being canonical — sorted params, normalized scalars).  A re-run of a study
then only simulates the cells it has never seen, and an interrupted sweep
resumes from the cells that already finished.

Entries store the cell's :class:`~repro.sim.run.TrialStats` plus the
evaluated metric columns (never the raw reports — histories would dwarf
the results).  The payload is stored alongside and verified on load, so a
truncated or corrupted file is treated as a miss and recomputed, never
trusted.  ``CACHE_FORMAT_VERSION`` is part of every key: changing the
entry schema invalidates old entries instead of misreading them.

The default location is ``$REPRO_CACHE_DIR`` when set; otherwise caching
is off unless a cache (or path) is passed explicitly — test suites and
one-off scripts shouldn't silently grow a cache directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.sim.run import TrialStats

#: Bump when the entry schema or key payload layout changes; old entries
#: become unreachable (different key) rather than misread.
CACHE_FORMAT_VERSION = 1

#: Environment variable naming the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def stats_to_dict(stats: TrialStats) -> dict[str, Any]:
    """JSON-safe form of a :class:`TrialStats`; inverse of :func:`stats_from_dict`."""
    return {
        "n_trials": int(stats.n_trials),
        "n_converged": int(stats.n_converged),
        "rounds": [int(r) for r in stats.rounds],
        "censored_at": int(stats.censored_at),
        "chosen_nests": {
            str(nest): int(count) for nest, count in sorted(stats.chosen_nests.items())
        },
    }


def stats_from_dict(data: Mapping[str, Any]) -> TrialStats:
    """Rebuild a :class:`TrialStats` from :func:`stats_to_dict` output."""
    return TrialStats(
        n_trials=int(data["n_trials"]),
        n_converged=int(data["n_converged"]),
        rounds=np.asarray(data["rounds"], dtype=np.int64),
        censored_at=int(data["censored_at"]),
        chosen_nests={int(nest): int(count) for nest, count in data["chosen_nests"].items()},
    )


def content_key(payload: Mapping[str, Any]) -> str:
    """The content address of a cell payload: SHA-256 of canonical JSON."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of per-cell JSON entries addressed by payload hash."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        #: (key, reason) pairs for entries that *existed* but were
        #: unreadable — corruption observability (a plain missing file is
        #: a cold miss, not a defect).  Every defect is also a miss.
        self.defects: list[tuple[str, str]] = []

    def _path(self, key: str) -> Path:
        # Two-level fan-out keeps directories small on big studies.
        return self.root / key[:2] / f"{key}.json"

    def load(
        self, payload: Mapping[str, Any]
    ) -> tuple[TrialStats, dict[str, Any]] | None:
        """The cached (stats, metrics) for a payload, or ``None`` on a miss.

        Any defect — missing file, truncated/unparseable JSON, garbage
        bytes, schema mismatch, or a payload that doesn't round-trip to
        the same content (hash collision paranoia) — counts as a miss;
        the caller recomputes and overwrites.  Defects in entries that
        *existed* are additionally recorded in :attr:`defects` so
        corruption is observable, not silently healed.
        """
        key = content_key(payload)
        path = self._path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, UnicodeDecodeError) as error:
            self.misses += 1
            self.defects.append((key, f"unreadable: {error}"))
            return None
        try:
            entry = json.loads(text)
            if entry["version"] != CACHE_FORMAT_VERSION:
                raise ValueError("cache format version mismatch")
            # Normalize through JSON so tuples/lists compare equal; dict
            # equality is order-insensitive, so sort_keys storage is fine.
            if entry["payload"] != json.loads(json.dumps(payload)):
                raise ValueError("payload mismatch")
            stats = stats_from_dict(entry["stats"])
            metrics = dict(entry["metrics"])
        except (ValueError, KeyError, TypeError) as error:
            self.misses += 1
            self.defects.append((key, str(error) or type(error).__name__))
            return None
        self.hits += 1
        return stats, metrics

    def store(
        self,
        payload: Mapping[str, Any],
        stats: TrialStats,
        metrics: Mapping[str, Any],
    ) -> Path:
        """Persist one cell result atomically (write temp file, rename)."""
        key = content_key(payload)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "version": CACHE_FORMAT_VERSION,
            "payload": payload,
            "stats": stats_to_dict(stats),
            "metrics": dict(metrics),
        }
        # No sort_keys here: the *metrics* dict's insertion order is the
        # result-table column order, and must survive a warm read.
        text = json.dumps(entry)
        fd, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))


def default_cache() -> ResultCache | None:
    """The cache named by ``$REPRO_CACHE_DIR``, or ``None`` (caching off)."""
    root = os.environ.get(CACHE_DIR_ENV)
    return ResultCache(root) if root else None


def resolve_cache(cache: "ResultCache | str | Path | None") -> ResultCache | None:
    """Normalize a ``cache=`` argument: 'auto' -> env default, path -> cache."""
    if cache is None or cache is False:
        return None
    if cache == "auto":
        return default_cache()
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)
