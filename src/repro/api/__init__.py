"""The unified Scenario API: one declarative entrypoint over both engines.

The package grew two front doors — the readable agent-based engine
(:mod:`repro.sim`) and the vectorized fast engine (:mod:`repro.fast`) —
each with its own call conventions and result types.  This subsystem puts
one declarative surface over both:

- :class:`Scenario` — a frozen, JSON-serializable description of a run
  (algorithm name, workload, seed, perturbations, stopping rule);
- :data:`REGISTRY` — the :class:`AlgorithmRegistry` where every algorithm,
  baseline and extension registers its agent factory and (when available)
  vectorized kernel;
- :func:`run` — execute one scenario on ``backend="auto" | "agent" |
  "fast"`` and get a backend-neutral :class:`RunReport`;
- :func:`run_batch` / :func:`run_stats` / :func:`aggregate` — deterministic
  multi-process sweeps folding into :class:`~repro.sim.run.TrialStats`.

Quickstart::

    from repro.api import Scenario, run
    from repro.model.nests import NestConfig

    scenario = Scenario(
        algorithm="simple", n=128, nests=NestConfig.binary(4, {1, 3}), seed=7
    )
    report = run(scenario)            # picks the fast kernel automatically
    print(report.converged_round, report.chosen_nest)

``python -m repro.api --list`` shows every registered algorithm.
"""

from repro.api.algorithms import register_builtin_algorithms
from repro.api.cache import CACHE_FORMAT_VERSION, ResultCache, default_cache
from repro.api.store import (
    STORE_KINDS,
    DirectoryStore,
    SQLiteStore,
    StoreDefect,
    make_store,
)
from repro.api.registry import (
    CRITERIA,
    FEATURE_TAGS,
    REGISTRY,
    AlgorithmEntry,
    AlgorithmRegistry,
    criterion_factory,
    criterion_feature,
    scenario_features,
)
from repro.api.report import RunReport
from repro.api.results import ResultTable
from repro.api.runner import (
    BACKENDS,
    TRANSPORTS,
    WorkerPool,
    aggregate,
    default_batch_chunk,
    default_workers,
    resolve_backend,
    run,
    run_batch,
    run_stats,
)
from repro.api.scenario import CRITERION_NAMES, Scenario
from repro.api.scheduler import CellScheduler, ExecutionPolicy
from repro.api.sweep import (
    METRICS,
    STUDIES,
    CellFailure,
    CellResult,
    Study,
    StudyResult,
    Sweep,
    cases,
    expr,
    grid,
    nests_spec,
    ref,
    register_metric,
    run_study,
    zipped,
)

register_builtin_algorithms()

#: Unambiguous alias for re-export from the top-level :mod:`repro` package,
#: where a bare ``run`` would read poorly next to ``run_trial``/``run_trials``.
run_scenario = run

__all__ = [
    "AlgorithmEntry",
    "AlgorithmRegistry",
    "BACKENDS",
    "CACHE_FORMAT_VERSION",
    "CRITERIA",
    "CRITERION_NAMES",
    "CellFailure",
    "CellResult",
    "CellScheduler",
    "DirectoryStore",
    "ExecutionPolicy",
    "FEATURE_TAGS",
    "METRICS",
    "REGISTRY",
    "ResultCache",
    "ResultTable",
    "RunReport",
    "SQLiteStore",
    "STORE_KINDS",
    "STUDIES",
    "StoreDefect",
    "Scenario",
    "Study",
    "StudyResult",
    "Sweep",
    "TRANSPORTS",
    "WorkerPool",
    "aggregate",
    "cases",
    "default_batch_chunk",
    "criterion_factory",
    "criterion_feature",
    "default_cache",
    "default_workers",
    "expr",
    "grid",
    "make_store",
    "nests_spec",
    "ref",
    "register_builtin_algorithms",
    "register_metric",
    "resolve_backend",
    "run",
    "run_batch",
    "run_scenario",
    "run_stats",
    "run_study",
    "scenario_features",
    "zipped",
]
