"""Built-in population of the default :data:`~repro.api.registry.REGISTRY`.

Registers the paper's algorithms (Algorithm 2 "optimal", Algorithm 3
"simple"), the lower-bound information-spreading process, all four
baselines (quorum sensing, the uniform-rate ablation, rumor spreading, the
Pólya urn) and the Section 6 extension variants.  Each entry supplies an
agent-engine builder and/or a vectorized kernel and declares, feature tag
by feature tag (``fast_features``), which scenario dimensions that kernel
honors — the simple family covers the full perturbation surface (fault
plans, every noise kind, delay models), while structural limits beyond
tags (the spread process's hard-coded good nest, v1-matcher-only
restrictions) live in small ``fast_supports`` predicates.  That is exactly
the information ``backend="auto"`` dispatch and its recorded fallback
reasons need.

Fast kernels accept a ``matcher`` param ("v2" default, "v1" for the
sequential-scan reference schedule — see docs/PERFORMANCE.md); under v2
the single-trial kernel is literally a batch of one, so
:func:`repro.api.run_batch`'s trial-parallel dispatch (the ``batch_kernel``
entries here) is bit-identical to running each trial alone.  ``quorum``
and ``uniform`` gained fast kernels with the batch engine, so the E8
comparison sweep no longer falls back to the agent engine.

Adding a protocol variant is one ``REGISTRY.register(...)`` call.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.api.processes import register_measurement_processes
from repro.api.registry import (
    FEATURE_DELAY,
    FEATURE_FAULT_BYZANTINE,
    FEATURE_FAULT_CRASH,
    FEATURE_NOISE_COUNT,
    FEATURE_NOISE_ENCOUNTER,
    FEATURE_NOISE_QUALITY_FLIP,
    FEATURE_RECORD_HISTORY,
    REGISTRY,
    criterion_factory,
    criterion_feature,
    scenario_features,
    scenario_kernel_backend,
    scenario_matcher,
)
from repro.api.report import RunReport
from repro.api.scenario import Scenario
from repro.baselines.polya import PolyaUrn
from repro.baselines.quorum import quorum_factory
from repro.baselines.rumor import RumorMode, rumor_rounds
from repro.baselines.uniform import uniform_factory
from repro.core.colony import (
    informed_spread_factory,
    optimal_factory,
    simple_factory,
)
from repro.core.lower_bound import IgnorantPolicy
from repro.exceptions import ConfigurationError
from repro.extensions.adaptive import (
    adaptive_factory,
    ktilde_schedule,
    power_feedback_factory,
)
from repro.extensions.nonbinary import quality_weighted_factory
from repro.extensions.robust import approximate_n_factory
from repro.fast.batch import (
    simulate_optimal_batch,
    simulate_quorum_batch,
    simulate_simple_batch,
    simulate_spread_batch,
)
from repro.fast.optimal_fast import simulate_optimal
from repro.fast.simple_fast import simulate_simple
from repro.fast.spread_fast import SpreadResult, simulate_spread
from repro.sim.rng import RandomSource


def _params(scenario: Scenario, **defaults):
    """Validated algorithm params: unknown keys are configuration errors."""
    unknown = set(scenario.params) - set(defaults)
    if unknown:
        raise ConfigurationError(
            f"algorithm {scenario.algorithm!r} does not accept params "
            f"{sorted(unknown)}; known: {sorted(defaults)}"
        )
    merged = dict(defaults)
    merged.update(scenario.params)
    return merged


def _sources(scenarios: Sequence[Scenario]) -> list[RandomSource]:
    """Per-trial stream bundles for one homogeneous batch chunk."""
    return [scenario.source() for scenario in scenarios]


def _fast_extras(matcher: str, kernel_backend: str | None = None) -> dict:
    """Engine detail recorded on every fast-path report.

    Both the single-trial path and the batch path attach exactly this, so
    their reports compare equal field-for-field.  Only an *explicit*
    ``kernel_backend`` pin appears (it is scenario identity); an
    environment-selected backend is digest-transparent and unrecorded.
    """
    extras = {"matcher": matcher}
    if kernel_backend is not None:
        extras["kernel_backend"] = kernel_backend
    return extras


#: Feature tags the simple-family kernels (simple/adaptive/uniform) honor
#: under the v2 schedule — the full perturbation surface.
SIMPLE_FAST_FEATURES = frozenset(
    {
        FEATURE_NOISE_COUNT,
        FEATURE_NOISE_QUALITY_FLIP,
        FEATURE_NOISE_ENCOUNTER,
        FEATURE_FAULT_CRASH,
        FEATURE_FAULT_BYZANTINE,
        FEATURE_DELAY,
        FEATURE_RECORD_HISTORY,
        criterion_feature("good"),
        criterion_feature("good_healthy"),
    }
)

#: The subset the sequential v1 reference kernel still covers.
_SIMPLE_V1_FEATURES = frozenset(
    {FEATURE_NOISE_COUNT, FEATURE_RECORD_HISTORY, criterion_feature("good")}
)


def _simple_structure(scenario: Scenario) -> bool:
    """v1-matcher requests drop back to the pre-perturbation feature set."""
    # Validate the backend pin as eagerly as the matcher param: a bad pin
    # (unknown name, or pin+v1) must raise even when the run would fall
    # back to the agent engine, where the pin would otherwise be silently
    # ignored — a pinned scenario that never touches the batch kernels is
    # a configuration error, not a no-op.
    scenario_kernel_backend(scenario)
    if scenario_matcher(scenario) == "v1":
        return scenario_features(scenario) <= _SIMPLE_V1_FEATURES
    return True


def _kernel_pair(single_kernel, batch_kernel, kernel_kwargs):
    """Build the (fast_kernel, batch_kernel) adapter pair for one algorithm.

    Both adapters share one contract: ``kernel_kwargs(scenario)`` validates
    the params and returns the kernel keyword arguments; the single-trial
    v2 path is literally a batch of one, so the two adapters cannot drift
    apart; ``matcher="v1"`` routes to the sequential single-trial kernel
    (which rejects the batch-only perturbation layers).
    """

    def fast(scenario: Scenario, source: RandomSource) -> RunReport:
        kwargs = kernel_kwargs(scenario)
        matcher = scenario_matcher(scenario)
        pin = kwargs.get("kernel_backend")
        if matcher == "v1":
            kwargs = dict(kwargs)
            # Always None here: scenario_kernel_backend rejects pin+v1.
            kwargs.pop("kernel_backend", None)
            if kwargs.pop("criterion", None) not in (None, "good"):
                raise ConfigurationError(
                    f"the sequential v1 kernel for {scenario.algorithm!r} "
                    "only evaluates the default 'good' criterion; use the "
                    "v2 matcher schedule or backend='agent'"
                )
            for key in ("fault_plan", "delay_model"):
                if kwargs.pop(key, None) is not None:
                    raise ConfigurationError(
                        f"the sequential v1 kernel for {scenario.algorithm!r} "
                        f"does not support {key}; use the v2 matcher schedule "
                        "or backend='agent'"
                    )
            result = single_kernel(
                scenario.n,
                scenario.nests,
                seed=source,
                max_rounds=scenario.max_rounds,
                record_history=scenario.record_history,
                **kwargs,
            )
        else:
            result = batch_kernel(
                scenario.n,
                scenario.nests,
                [source],
                max_rounds=scenario.max_rounds,
                record_history=scenario.record_history,
                **kwargs,
            )[0]
        return RunReport.from_fast(
            scenario, result, extras=_fast_extras(matcher, pin)
        )

    def batch(scenarios: Sequence[Scenario]) -> list[RunReport]:
        base = scenarios[0]
        kwargs = kernel_kwargs(base)
        results = batch_kernel(
            base.n,
            base.nests,
            _sources(scenarios),
            max_rounds=base.max_rounds,
            record_history=base.record_history,
            **kwargs,
        )
        extras = _fast_extras("v2", kwargs.get("kernel_backend"))
        return [
            RunReport.from_fast(scenario, result, extras=extras)
            for scenario, result in zip(scenarios, results)
        ]

    return fast, batch


# -- Algorithm 3 ("simple") and its rate-schedule variant --------------------


def _simple_agent(scenario: Scenario):
    params = _params(scenario, matcher=None, kernel_backend=None)
    del params
    return simple_factory(good_threshold=scenario.nests.good_threshold), None


def _perturbation_kwargs(scenario: Scenario) -> dict:
    """The perturbation-layer kwargs every simple-family kernel accepts."""
    return {
        "noise": scenario.noise,
        "fault_plan": scenario.fault_plan,
        "delay_model": scenario.delay_model,
        "criterion": scenario.criterion,
        "kernel_backend": scenario_kernel_backend(scenario),
    }


def _simple_kwargs(scenario: Scenario) -> dict:
    _params(scenario, matcher=None, kernel_backend=None)
    return _perturbation_kwargs(scenario)


_simple_fast, _simple_batch = _kernel_pair(
    simulate_simple, simulate_simple_batch, _simple_kwargs
)


def _adaptive_schedule(scenario: Scenario):
    params = _params(
        scenario, k_initial=None, half_life=None, matcher=None, kernel_backend=None
    )
    k_initial = float(
        params["k_initial"] if params["k_initial"] is not None else scenario.nests.k
    )
    half_life = (
        float(params["half_life"])
        if params["half_life"] is not None
        else max(1.0, k_initial / 4.0)
    )
    return k_initial, half_life


def _adaptive_agent(scenario: Scenario):
    k_initial, half_life = _adaptive_schedule(scenario)
    return (
        adaptive_factory(
            k_initial, half_life, good_threshold=scenario.nests.good_threshold
        ),
        None,
    )


def _adaptive_kwargs(scenario: Scenario) -> dict:
    k_initial, half_life = _adaptive_schedule(scenario)
    return {
        "rate_multiplier": ktilde_schedule(k_initial, half_life),
        **_perturbation_kwargs(scenario),
    }


_adaptive_fast, _adaptive_batch = _kernel_pair(
    simulate_simple, simulate_simple_batch, _adaptive_kwargs
)


# -- Algorithm 2 ("optimal") -------------------------------------------------


def _optimal_agent(scenario: Scenario):
    params = _params(scenario, strict_pseudocode=False, matcher=None)
    factory = optimal_factory(
        good_threshold=scenario.nests.good_threshold,
        strict_pseudocode=bool(params["strict_pseudocode"]),
    )
    # The fast kernel's convergence notion is "every ant final"; the agent
    # default must match for cross-backend parity.
    return factory, criterion_factory("good_settled")


def _optimal_kwargs(scenario: Scenario) -> dict:
    params = _params(scenario, strict_pseudocode=False, matcher=None)
    return {"strict_pseudocode": bool(params["strict_pseudocode"])}


_optimal_fast, _optimal_batch = _kernel_pair(
    simulate_optimal, simulate_optimal_batch, _optimal_kwargs
)


#: Algorithm 2's kernel predates the perturbation layers: histories and its
#: settled-state criterion only.
OPTIMAL_FAST_FEATURES = frozenset(
    {FEATURE_RECORD_HISTORY, criterion_feature("good_settled")}
)


# -- the lower-bound spread process ------------------------------------------


def _spread_policy(scenario: Scenario) -> IgnorantPolicy:
    params = _params(scenario, policy=IgnorantPolicy.WAIT.value, matcher=None)
    return IgnorantPolicy(params["policy"])


def _spread_agent(scenario: Scenario):
    return informed_spread_factory(_spread_policy(scenario)), None


def _spread_report(
    scenario: Scenario, result: SpreadResult, matcher: str
) -> RunReport:
    good_nest = scenario.nests.good_nests[0]
    extras = _fast_extras(matcher)
    extras["informed_history"] = result.informed_history.tolist()
    return RunReport(
        algorithm=scenario.algorithm,
        backend="fast",
        n=scenario.n,
        k=scenario.nests.k,
        seed=scenario.seed,
        trial_index=scenario.trial_index,
        max_rounds=scenario.max_rounds,
        converged=result.all_informed,
        converged_round=result.rounds_to_all_informed,
        rounds_executed=result.rounds_executed,
        chosen_nest=good_nest if result.all_informed else None,
        chose_good_nest=result.all_informed,
        final_counts=None,
        population_history=None,
        extras=extras,
    )


def _spread_fast(scenario: Scenario, source: RandomSource) -> RunReport:
    matcher = scenario_matcher(scenario)
    if matcher == "v1":
        result = simulate_spread(
            scenario.n,
            scenario.nests.k,
            policy=_spread_policy(scenario),
            seed=source,
            max_rounds=scenario.max_rounds,
        )
    else:
        result = simulate_spread_batch(
            scenario.n,
            scenario.nests.k,
            [source],
            policy=_spread_policy(scenario),
            max_rounds=scenario.max_rounds,
        )[0]
    return _spread_report(scenario, result, matcher)


def _spread_batch(scenarios: Sequence[Scenario]) -> list[RunReport]:
    base = scenarios[0]
    results = simulate_spread_batch(
        base.n,
        base.nests.k,
        _sources(scenarios),
        policy=_spread_policy(base),
        max_rounds=base.max_rounds,
    )
    return [
        _spread_report(scenario, result, "v2")
        for scenario, result in zip(scenarios, results)
    ]


def _spread_structure(scenario: Scenario) -> bool:
    # The vectorized process hard-codes the good nest as nest 1; everything
    # else (no perturbations, no criteria, no histories) is feature-gated.
    return scenario.nests.good_nests == (1,)


# -- the quorum and uniform baselines (agent + fast since the batch engine) --


def _quorum_params(scenario: Scenario) -> tuple[float, float]:
    params = _params(
        scenario, quorum_fraction=0.35, tandem_probability=0.25, matcher=None
    )
    return float(params["quorum_fraction"]), float(params["tandem_probability"])


def _quorum_agent(scenario: Scenario):
    quorum_fraction, tandem_probability = _quorum_params(scenario)
    factory = quorum_factory(
        quorum_fraction=quorum_fraction,
        tandem_probability=tandem_probability,
        good_threshold=scenario.nests.good_threshold,
    )
    # Quorum colonies commit via their own threshold rule; runs are judged
    # on unanimity (the nest may be good or bad), as in experiment E8.
    return factory, criterion_factory("unanimous")


def _quorum_fast(scenario: Scenario, source: RandomSource) -> RunReport:
    quorum_fraction, tandem_probability = _quorum_params(scenario)
    if scenario_matcher(scenario) == "v1":
        raise ConfigurationError(
            "the quorum fast kernel exists only under the v2 matcher "
            "schedule; use backend='agent' for the sequential reference"
        )
    result = simulate_quorum_batch(
        scenario.n,
        scenario.nests,
        [source],
        max_rounds=scenario.max_rounds,
        quorum_fraction=quorum_fraction,
        tandem_probability=tandem_probability,
        record_history=scenario.record_history,
    )[0]
    return RunReport.from_fast(scenario, result, extras=_fast_extras("v2"))


def _quorum_batch(scenarios: Sequence[Scenario]) -> list[RunReport]:
    base = scenarios[0]
    quorum_fraction, tandem_probability = _quorum_params(base)
    results = simulate_quorum_batch(
        base.n,
        base.nests,
        _sources(scenarios),
        max_rounds=base.max_rounds,
        quorum_fraction=quorum_fraction,
        tandem_probability=tandem_probability,
        record_history=base.record_history,
    )
    extras = _fast_extras("v2")
    return [
        RunReport.from_fast(scenario, result, extras=extras)
        for scenario, result in zip(scenarios, results)
    ]


#: Quorum's kernel: histories and its unanimity criterion, v2 only.
QUORUM_FAST_FEATURES = frozenset(
    {FEATURE_RECORD_HISTORY, criterion_feature("unanimous")}
)


def _quorum_structure(scenario: Scenario) -> bool:
    return scenario_matcher(scenario) == "v2"


def _uniform_agent(scenario: Scenario):
    params = _params(
        scenario, recruit_probability=0.5, matcher=None, kernel_backend=None
    )
    factory = uniform_factory(
        recruit_probability=float(params["recruit_probability"]),
        good_threshold=scenario.nests.good_threshold,
    )
    return factory, None


def _uniform_kwargs(scenario: Scenario) -> dict:
    params = _params(
        scenario, recruit_probability=0.5, matcher=None, kernel_backend=None
    )
    return {
        "recruit_probability": float(params["recruit_probability"]),
        **_perturbation_kwargs(scenario),
    }


_uniform_fast, _uniform_batch = _kernel_pair(
    simulate_simple, simulate_simple_batch, _uniform_kwargs
)


# -- agent-only extensions ----------------------------------------------------


def _power_feedback_agent(scenario: Scenario):
    params = _params(scenario, beta=0.5)
    factory = power_feedback_factory(
        beta=float(params["beta"]), good_threshold=scenario.nests.good_threshold
    )
    return factory, None


def _approximate_n_agent(scenario: Scenario):
    params = _params(scenario, max_factor=2.0)
    factory = approximate_n_factory(
        max_factor=float(params["max_factor"]),
        good_threshold=scenario.nests.good_threshold,
    )
    return factory, None


def _quality_weighted_agent(scenario: Scenario):
    params = _params(scenario, quality_weight=1.0, acceptance_sharpness=1.0)
    factory = quality_weighted_factory(
        quality_weight=float(params["quality_weight"]),
        acceptance_sharpness=float(params["acceptance_sharpness"]),
    )
    return factory, None


# -- standalone reference processes (fast-only) ------------------------------


def _rumor_fast(scenario: Scenario, source: RandomSource) -> RunReport:
    params = _params(scenario, mode=RumorMode.PUSH.value, initial_informed=1)
    # rumor_rounds returns max_rounds both for completion exactly at the cap
    # and for censoring; allowing one extra round disambiguates (a return
    # value <= max_rounds can only mean genuine completion).
    rounds = rumor_rounds(
        scenario.n,
        source.colony,
        mode=RumorMode(params["mode"]),
        initial_informed=int(params["initial_informed"]),
        max_rounds=scenario.max_rounds + 1,
    )
    converged = rounds <= scenario.max_rounds
    rounds = min(rounds, scenario.max_rounds)
    return RunReport(
        algorithm=scenario.algorithm,
        backend="fast",
        n=scenario.n,
        k=scenario.nests.k,
        seed=scenario.seed,
        trial_index=scenario.trial_index,
        max_rounds=scenario.max_rounds,
        converged=converged,
        converged_round=rounds if converged else None,
        rounds_executed=rounds,
        chosen_nest=None,
        chose_good_nest=False,
        final_counts=None,
        population_history=None,
        extras={"process": "rumor", "mode": params["mode"]},
    )


def _polya_fast(scenario: Scenario, source: RandomSource) -> RunReport:
    params = _params(scenario, initial=None, gamma=2.0, steps=None)
    initial = params["initial"]
    if initial is None:
        # Default two-urn race over the scenario's nests: the n "balls" are
        # split as evenly as the k urns allow.
        k = scenario.nests.k
        base, extra = divmod(scenario.n, k)
        initial = [base + (1 if urn < extra else 0) for urn in range(k)]
    # One reinforcement = one round, so the round cap bounds the steps.
    steps = int(params["steps"]) if params["steps"] is not None else 4 * scenario.n
    steps = min(steps, scenario.max_rounds)
    urn = PolyaUrn(initial, gamma=float(params["gamma"]))
    trajectory = urn.run(steps, source.colony)
    winner = int(np.argmax(urn.counts)) + 1
    final_counts = np.concatenate([[0], urn.counts]).astype(np.int64)
    extras: dict = {"process": "polya", "gamma": float(params["gamma"])}
    history = None
    if scenario.record_history:
        history = np.rint(
            trajectory * (np.arange(steps + 1) + sum(initial))[:, None]
        ).astype(np.int64)
        history = np.concatenate(
            [np.zeros((steps + 1, 1), dtype=np.int64), history], axis=1
        )
    return RunReport(
        algorithm=scenario.algorithm,
        backend="fast",
        n=scenario.n,
        k=scenario.nests.k,
        seed=scenario.seed,
        trial_index=scenario.trial_index,
        max_rounds=scenario.max_rounds,
        converged=True,
        converged_round=steps,
        rounds_executed=steps,
        chosen_nest=winner,
        chose_good_nest=scenario.nests.is_good(winner),
        final_counts=final_counts,
        population_history=history,
        extras=extras,
    )


#: The standalone reference processes ignore colony perturbations entirely;
#: they only know how to keep (or skip) their own trajectory histories.
STANDALONE_FAST_FEATURES = frozenset({FEATURE_RECORD_HISTORY})


def register_builtin_algorithms(registry=REGISTRY) -> None:
    """Populate ``registry`` with every built-in algorithm (idempotent)."""
    if "simple" in registry:
        return
    registry.register(
        "simple",
        "Algorithm 3: population-proportional recruitment, O(k log n)",
        agent_builder=_simple_agent,
        fast_kernel=_simple_fast,
        fast_supports=_simple_structure,
        fast_features=SIMPLE_FAST_FEATURES,
        batch_kernel=_simple_batch,
        params=("kernel_backend", "matcher"),
    )
    registry.register(
        "optimal",
        "Algorithm 2: count-based competition, O(log n)",
        agent_builder=_optimal_agent,
        fast_kernel=_optimal_fast,
        fast_features=OPTIMAL_FAST_FEATURES,
        batch_kernel=_optimal_batch,
        params=("matcher", "strict_pseudocode"),
    )
    registry.register(
        "spread",
        "Theorem 3.2 lower-bound process: best-case information spreading",
        agent_builder=_spread_agent,
        fast_kernel=_spread_fast,
        fast_supports=_spread_structure,
        batch_kernel=_spread_batch,
        params=("matcher", "policy"),
    )
    registry.register(
        "quorum",
        "Pratt-style quorum sensing (the biological baseline)",
        agent_builder=_quorum_agent,
        fast_kernel=_quorum_fast,
        fast_supports=_quorum_structure,
        fast_features=QUORUM_FAST_FEATURES,
        batch_kernel=_quorum_batch,
        params=("matcher", "quorum_fraction", "tandem_probability"),
    )
    registry.register(
        "uniform",
        "Algorithm 3 ablation: constant recruit probability (no feedback)",
        agent_builder=_uniform_agent,
        fast_kernel=_uniform_fast,
        fast_supports=_simple_structure,
        fast_features=SIMPLE_FAST_FEATURES,
        batch_kernel=_uniform_batch,
        params=("kernel_backend", "matcher", "recruit_probability"),
    )
    registry.register(
        "rumor",
        "push/pull rumor spreading on the complete graph (reference)",
        fast_kernel=_rumor_fast,
        fast_features=STANDALONE_FAST_FEATURES,
        params=("initial_informed", "mode"),
    )
    registry.register(
        "polya",
        "generalized Pólya urn, the Section 5 reinforcement reference",
        fast_kernel=_polya_fast,
        fast_features=STANDALONE_FAST_FEATURES,
        params=("gamma", "initial", "steps"),
    )
    registry.register(
        "adaptive",
        "Algorithm 3 with the round-indexed k-tilde rate schedule (E9)",
        agent_builder=_adaptive_agent,
        fast_kernel=_adaptive_fast,
        fast_supports=_simple_structure,
        fast_features=SIMPLE_FAST_FEATURES,
        batch_kernel=_adaptive_batch,
        params=("half_life", "k_initial", "kernel_backend", "matcher"),
    )
    registry.register(
        "power_feedback",
        "Algorithm 3 with (count/n)^beta knowledge-free feedback (E9)",
        agent_builder=_power_feedback_agent,
        params=("beta",),
    )
    registry.register(
        "approximate_n",
        "Algorithm 3 under per-ant misestimates of n (robustness)",
        agent_builder=_approximate_n_agent,
        params=("max_factor",),
    )
    registry.register(
        "quality_weighted",
        "non-binary qualities: quality-weighted recruitment (E10)",
        agent_builder=_quality_weighted_agent,
        params=("acceptance_sharpness", "quality_weight"),
    )
    register_measurement_processes(registry)
