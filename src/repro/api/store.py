"""Cell-entry stores: the persistence seam under :class:`ResultCache`.

The cache's *semantics* — content addressing, payload verification,
hit/miss/defect accounting — live in :mod:`repro.api.cache`; this module
owns only the byte storage behind it, as a small seam so a long-running
service can swap the on-disk layout without touching cache logic:

- :class:`DirectoryStore` — the classic layout: one JSON file per entry
  under a two-level fan-out directory, atomic rename writes.  Zero setup,
  trivially inspectable, no eviction.
- :class:`SQLiteStore` — a *sharded* SQLite layout for long-lived daemons:
  entries hash-partitioned across ``shards`` database files (WAL mode, so
  concurrent readers never block the single writer per shard), an LRU
  clock per entry, and optional least-recently-used eviction against a
  byte budget.  Corrupted shard files are quarantined (renamed aside) and
  rebuilt rather than poisoning every later request.

Both stores speak the same three-method protocol (:meth:`get` /
:meth:`put` / :meth:`stats`) over ``(key, text)`` pairs, where ``key`` is
the cache's hex content address and ``text`` the serialized entry.  A
missing key returns ``None`` (a cold miss); an entry that *exists but
cannot be read* raises :class:`StoreDefect` so the cache can record the
corruption instead of silently healing it.
"""

from __future__ import annotations

import os
import sqlite3
import tempfile
import zlib
from pathlib import Path
from typing import Any, Iterator, Protocol


class StoreDefect(Exception):
    """An entry existed but could not be read (corruption, I/O failure)."""


class CellStore(Protocol):  # pragma: no cover - typing surface
    """The storage protocol behind :class:`~repro.api.cache.ResultCache`."""

    def get(self, key: str) -> str | None:
        """The stored text for ``key``, ``None`` if absent; :class:`StoreDefect`
        if the entry exists but is unreadable."""

    def put(self, key: str, text: str) -> None:
        """Persist ``text`` under ``key`` atomically (last writer wins)."""

    def stats(self) -> dict[str, Any]:
        """Counters describing the store (entries, bytes, evictions, ...)."""

    def __len__(self) -> int: ...


class DirectoryStore:
    """One JSON file per entry under a two-level fan-out directory.

    This is the original :class:`~repro.api.cache.ResultCache` layout,
    extracted verbatim: ``<root>/<key[:2]>/<key>.json``, written via
    temp-file + :func:`os.replace` so concurrent writers race atomically
    and readers never observe a torn entry.
    """

    kind = "directory"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path(self, key: str) -> Path:
        # Two-level fan-out keeps directories small on big studies.
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> str | None:
        try:
            return self.path(key).read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except (OSError, UnicodeDecodeError) as error:
            raise StoreDefect(f"unreadable: {error}") from error

    def put(self, key: str, text: str) -> None:
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def _files(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return iter(())
        return self.root.glob("*/*.json")

    def __len__(self) -> int:
        return sum(1 for _ in self._files())

    def stats(self) -> dict[str, Any]:
        entries = 0
        nbytes = 0
        for path in self._files():
            entries += 1
            try:
                nbytes += path.stat().st_size
            except OSError:  # pragma: no cover - raced deletion
                pass
        return {
            "kind": self.kind,
            "entries": entries,
            "bytes": nbytes,
            "evictions": 0,
        }


#: Default shard count for :class:`SQLiteStore` — enough that concurrent
#: writers (one SQLite writer per shard file) rarely collide at service
#: load, few enough that a stat walk stays cheap.
DEFAULT_SHARDS = 4

_SCHEMA = """
CREATE TABLE IF NOT EXISTS cells (
    key    TEXT PRIMARY KEY,
    value  TEXT NOT NULL,
    nbytes INTEGER NOT NULL,
    seq    INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS cells_seq ON cells (seq);
"""


class SQLiteStore:
    """Sharded SQLite entry storage with LRU eviction by byte budget.

    Entries are partitioned by content-address prefix across ``shards``
    database files (``cells-00.sqlite`` ...), each in WAL mode so readers
    proceed while a writer commits, and cross-process access serializes on
    SQLite's own file locks (``busy_timeout`` bounds the wait).  Every
    read and write stamps the entry with a per-shard monotone ``seq`` —
    the LRU clock.  When ``max_bytes`` is set, each shard evicts its
    least-recently-used entries whenever its share (``max_bytes /
    shards``) overflows, so one hot shard cannot starve the others.

    A shard whose file turns out not to be a database (torn copy, bit
    rot) is *quarantined*: renamed to ``<shard>.corrupt-<n>`` and rebuilt
    empty, the failed read surfacing as a :class:`StoreDefect` (one
    recompute) instead of an error on every later request.  Lock
    contention is **not** corruption: ``sqlite3.OperationalError``
    ("database is locked" after the busy timeout) is retried and never
    quarantines a healthy shard — the retry counts show up in
    :meth:`stats`.

    Connections are opened per call: cheap at cell granularity, and the
    store object stays safely shareable across threads and forked
    workers (an open ``sqlite3`` connection is neither).
    """

    kind = "sqlite"

    def __init__(
        self,
        root: str | Path,
        *,
        shards: int = DEFAULT_SHARDS,
        max_bytes: int | None = None,
        busy_timeout: float = 10.0,
        retries: int = 3,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if busy_timeout < 0:
            raise ValueError(f"busy_timeout must be >= 0, got {busy_timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.root = Path(root)
        self.shards = shards
        self.max_bytes = max_bytes
        #: Seconds SQLite's busy handler waits for a lock before an
        #: attempt fails (both the ``connect`` timeout and the
        #: ``busy_timeout`` PRAGMA on every connection).
        self.busy_timeout = busy_timeout
        #: Extra attempts after a busy failure before giving up.  Each
        #: attempt already waits out ``busy_timeout``, so retries are
        #: time-spaced without an explicit sleep.
        self.retries = retries
        self.evictions = 0
        self.quarantined_shards = 0
        #: Operations re-attempted after a lock-contention failure.
        self.busy_retries = 0
        #: Operations that stayed locked through every retry.
        self.busy_failures = 0
        #: Best-effort LRU touches skipped because the shard was busy.
        self.touch_skips = 0

    # -- shard plumbing ------------------------------------------------------

    def shard_path(self, key: str) -> Path:
        return self.root / f"cells-{self._shard_index(key):02d}.sqlite"

    def _shard_index(self, key: str) -> int:
        try:
            return int(key[:8], 16) % self.shards
        except ValueError:
            # Non-hex keys (unit tests, future key schemes) still shard —
            # through a *stable* digest, never the builtin ``hash``: that
            # one is salted per process (PYTHONHASHSEED), so the same key
            # would land in different shards in different processes and
            # silently break shared-store mode.
            return zlib.crc32(key.encode("utf-8")) % self.shards

    def _shard_paths(self) -> list[Path]:
        return [
            self.root / f"cells-{index:02d}.sqlite"
            for index in range(self.shards)
        ]

    def _connect(self, path: Path) -> sqlite3.Connection:
        self.root.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(path, timeout=self.busy_timeout)
        try:
            # The explicit PRAGMA covers statements issued after connect
            # (the driver timeout only arms the initial busy handler).
            conn.execute(
                f"PRAGMA busy_timeout={int(self.busy_timeout * 1000)}"
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(_SCHEMA)
        except BaseException:
            _close_quietly(conn)
            raise
        return conn

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt shard file aside so the next write rebuilds it."""
        self.quarantined_shards += 1
        for suffix in ("-wal", "-shm"):
            try:
                os.unlink(f"{path}{suffix}")
            except OSError:
                pass
        target = path.with_name(f"{path.name}.corrupt-{self.quarantined_shards}")
        try:
            os.replace(path, target)
        except OSError:  # pragma: no cover - raced quarantine
            pass

    # -- the protocol --------------------------------------------------------

    def get(self, key: str) -> str | None:
        path = self.shard_path(key)
        if not path.exists():
            return None
        busy: sqlite3.OperationalError | None = None
        for attempt in range(self.retries + 1):
            conn = None
            try:
                conn = self._connect(path)
                row = conn.execute(
                    "SELECT value FROM cells WHERE key = ?", (key,)
                ).fetchone()
                if row is None:
                    return None
                self._touch(conn, key)
                return row[0]
            except sqlite3.OperationalError as error:
                # Lock contention ("database is locked" after the busy
                # timeout), not corruption: the shard is healthy, retry.
                busy = error
                if attempt < self.retries:
                    self.busy_retries += 1
            except sqlite3.DatabaseError as error:
                self._quarantine(path)
                raise StoreDefect(
                    f"corrupt shard {path.name}: {error}"
                ) from error
            finally:
                _close_quietly(conn)
        self.busy_failures += 1
        raise StoreDefect(
            f"shard {path.name} locked through {self.retries + 1} attempts"
            f" of {self.busy_timeout}s each: {busy}"
        ) from busy

    def _touch(self, conn: sqlite3.Connection, key: str) -> None:
        """Stamp the LRU clock so hot entries outlive eviction.

        Best-effort, in its own short write transaction: a contended
        touch must never fail (or serialize) the read it rides on, so a
        busy shard just skips the stamp.
        """
        try:
            with conn:
                conn.execute(
                    "UPDATE cells SET seq ="
                    " (SELECT COALESCE(MAX(seq), 0) + 1 FROM cells)"
                    " WHERE key = ?",
                    (key,),
                )
        except sqlite3.OperationalError:
            self.touch_skips += 1

    def put(self, key: str, text: str) -> None:
        path = self.shard_path(key)
        busy: sqlite3.OperationalError | None = None
        for attempt in range(self.retries + 1):
            try:
                self._put_once(path, key, text)
                return
            except sqlite3.OperationalError as error:
                # Busy shard: healthy data, never quarantine — retry.
                busy = error
                if attempt < self.retries:
                    self.busy_retries += 1
            except sqlite3.DatabaseError:
                # A corrupt shard must not make results unstorable:
                # quarantine it and write into a fresh one.
                self._quarantine(path)
                self._put_once(path, key, text)
                return
        self.busy_failures += 1
        assert busy is not None
        raise busy

    def _put_once(self, path: Path, key: str, text: str) -> None:
        conn = self._connect(path)
        try:
            with conn:
                conn.execute(
                    "INSERT OR REPLACE INTO cells (key, value, nbytes, seq)"
                    " VALUES (?, ?, ?,"
                    " (SELECT COALESCE(MAX(seq), 0) + 1 FROM cells))",
                    (key, text, len(text.encode("utf-8"))),
                )
                if self.max_bytes is not None:
                    self._evict(conn, key)
        finally:
            conn.close()

    def _evict(self, conn: sqlite3.Connection, keep_key: str) -> None:
        """Drop LRU entries until this shard fits its byte share."""
        budget = max(1, self.max_bytes // self.shards)
        while True:
            (total,) = conn.execute(
                "SELECT COALESCE(SUM(nbytes), 0) FROM cells"
            ).fetchone()
            if total <= budget:
                return
            victim = conn.execute(
                "SELECT key FROM cells WHERE key != ? ORDER BY seq LIMIT 1",
                (keep_key,),
            ).fetchone()
            if victim is None:
                # Only the just-written entry remains; an over-budget
                # single entry still has to live somewhere.
                return
            conn.execute("DELETE FROM cells WHERE key = ?", (victim[0],))
            self.evictions += 1

    def __len__(self) -> int:
        return self.stats()["entries"]

    def stats(self) -> dict[str, Any]:
        entries = 0
        nbytes = 0
        for path in self._shard_paths():
            if not path.exists():
                continue
            conn = None
            try:
                conn = self._connect(path)
                count, total = conn.execute(
                    "SELECT COUNT(*), COALESCE(SUM(nbytes), 0) FROM cells"
                ).fetchone()
                entries += count
                nbytes += total
            except sqlite3.DatabaseError:
                continue  # counted as zero until quarantined by a get/put
            finally:
                _close_quietly(conn)
        return {
            "kind": self.kind,
            "shards": self.shards,
            "entries": entries,
            "bytes": nbytes,
            "max_bytes": self.max_bytes,
            "evictions": self.evictions,
            "quarantined_shards": self.quarantined_shards,
            "busy_retries": self.busy_retries,
            "busy_failures": self.busy_failures,
            "touch_skips": self.touch_skips,
        }


def _close_quietly(conn: sqlite3.Connection | None) -> None:
    if conn is not None:
        try:
            conn.close()
        except sqlite3.Error:  # pragma: no cover - close of a dead handle
            pass


#: Store kinds selectable by name (CLI ``--store``, service config).
STORE_KINDS = ("directory", "sqlite")


def make_store(
    kind: str,
    root: str | Path,
    *,
    shards: int = DEFAULT_SHARDS,
    max_bytes: int | None = None,
    busy_timeout: float = 10.0,
    retries: int = 3,
) -> "DirectoryStore | SQLiteStore":
    """Build a store by kind name (the CLI/service configuration path)."""
    if kind == "directory":
        return DirectoryStore(root)
    if kind == "sqlite":
        return SQLiteStore(
            root,
            shards=shards,
            max_bytes=max_bytes,
            busy_timeout=busy_timeout,
            retries=retries,
        )
    raise ValueError(
        f"unknown store kind {kind!r}; known: {', '.join(STORE_KINDS)}"
    )
