"""The engine-neutral result schema.

Both engines answer the same questions — did the colony converge, when,
where, and what did the populations look like — but historically with two
containers (:class:`~repro.sim.engine.SimulationResult` and
:class:`~repro.fast.results.FastRunResult`).  :class:`RunReport` is the
normalization: one frozen record with an identical field set regardless of
backend, so experiment code can sweep engines without branching and batch
results can be serialized uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.scenario import Scenario
    from repro.fast.results import FastRunResult
    from repro.sim.engine import SimulationResult


@dataclass(frozen=True)
class RunReport:
    """Outcome of one scenario run, identical in shape across backends.

    ``extras`` holds engine-specific detail (the agent engine's solution
    status, the spread process's informed-ant curve, ...) without breaking
    the common schema — its *key set* may differ between backends, the
    top-level fields never do.
    """

    algorithm: str
    backend: str  # "agent" | "fast"
    n: int
    k: int
    seed: int
    trial_index: int | None
    max_rounds: int
    converged: bool
    converged_round: int | None
    rounds_executed: int
    chosen_nest: int | None
    chose_good_nest: bool
    final_counts: np.ndarray | None = field(repr=False, default=None)
    population_history: np.ndarray | None = field(repr=False, default=None)
    extras: dict[str, Any] = field(repr=False, default_factory=dict)

    @property
    def solved(self) -> bool:
        """The paper's success notion: converged *and* on a good nest."""
        return self.converged and self.chose_good_nest

    @property
    def rounds_to_convergence(self) -> int:
        """Convergence round, or ``rounds_executed`` when censored."""
        return (
            self.converged_round
            if self.converged_round is not None
            else self.rounds_executed
        )

    def to_dict(self, include_history: bool = False) -> dict[str, Any]:
        """A JSON-safe plain-dict form (arrays become lists)."""
        data = {
            "algorithm": self.algorithm,
            "backend": self.backend,
            "n": self.n,
            "k": self.k,
            "seed": self.seed,
            "trial_index": self.trial_index,
            "max_rounds": self.max_rounds,
            "converged": self.converged,
            "converged_round": self.converged_round,
            "rounds_executed": self.rounds_executed,
            "chosen_nest": self.chosen_nest,
            "chose_good_nest": self.chose_good_nest,
            "solved": self.solved,
            "final_counts": (
                None if self.final_counts is None else self.final_counts.tolist()
            ),
            "extras": dict(self.extras),
        }
        if include_history:
            data["population_history"] = (
                None
                if self.population_history is None
                else self.population_history.tolist()
            )
        return data

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_simulation(
        cls,
        scenario: "Scenario",
        result: "SimulationResult",
        extras: dict[str, Any] | None = None,
    ) -> "RunReport":
        """Normalize an agent-engine :class:`SimulationResult`.

        ``extras`` merges runner-level detail (e.g. the ``agent_fallback``
        feature list recorded under ``backend="auto"``) into the standard
        agent extras.
        """
        history = None
        if result.history:
            history = np.vstack([record.snapshot.counts for record in result.history])
        merged = {"status": result.status.value}
        if extras:
            merged.update(extras)
        return cls(
            algorithm=scenario.algorithm,
            backend="agent",
            n=scenario.n,
            k=scenario.nests.k,
            seed=scenario.seed,
            trial_index=scenario.trial_index,
            max_rounds=scenario.max_rounds,
            converged=result.converged,
            converged_round=result.converged_round,
            rounds_executed=result.rounds_executed,
            chosen_nest=result.chosen_nest,
            chose_good_nest=_is_good(scenario, result.chosen_nest),
            final_counts=result.final_counts,
            population_history=history,
            extras=merged,
        )

    @classmethod
    def from_fast(
        cls,
        scenario: "Scenario",
        result: "FastRunResult",
        extras: dict[str, Any] | None = None,
    ) -> "RunReport":
        """Normalize a fast-engine :class:`FastRunResult`.

        ``extras`` lets the registry adapters record engine detail (e.g.
        which matcher schedule ran) without widening the schema.  The batch
        and single-trial fast paths pass identical extras, keeping their
        reports bit-identical.
        """
        return cls(
            algorithm=scenario.algorithm,
            backend="fast",
            n=scenario.n,
            k=scenario.nests.k,
            seed=scenario.seed,
            trial_index=scenario.trial_index,
            max_rounds=scenario.max_rounds,
            converged=result.converged,
            converged_round=result.converged_round,
            rounds_executed=result.rounds_executed,
            chosen_nest=result.chosen_nest,
            chose_good_nest=_is_good(scenario, result.chosen_nest),
            final_counts=result.final_counts,
            population_history=result.population_history,
            extras=dict(extras) if extras else {},
        )


def _is_good(scenario: "Scenario", chosen_nest: int | None) -> bool:
    return chosen_nest is not None and scenario.nests.is_good(chosen_nest)
