"""Declarative parameter sweeps: the Sweep/Study layer over ``run_batch``.

PR 1 made single runs data (:class:`~repro.api.scenario.Scenario`); this
module makes whole *sweeps* data.  A :class:`Sweep` describes a family of
scenarios as a base template plus axes (``grid`` / ``zip`` / explicit
``cases``) over any scenario field — including nested ``params`` keys,
perturbation-layer fields, and :class:`~repro.model.nests.NestConfig`
factories — and a :class:`Study` names a sweep, fixes the trials-per-cell
and selects result metrics.  Both are frozen and JSON-round-trippable, so
an experiment is a file you can ship, diff, and re-run.

:func:`run_study` executes a study by flattening every cell into
:func:`repro.api.run_batch` (reusing the trial-parallel batch kernels and
multiprocessing untouched), folds each cell into
:class:`~repro.sim.run.TrialStats` plus the study's metric columns, and
streams rows into a columnar :class:`~repro.api.results.ResultTable`.
Each finished cell is written to a content-addressed
:class:`~repro.api.cache.ResultCache`, so re-running a study is
incremental and an interrupted sweep resumes from the completed cells.

Axis bindings that aren't scenario fields are *sweep variables*: they
appear as result columns and can be referenced from the base template via
value specs:

- ``{"$ref": "k"}`` — substitute the cell's ``k`` binding;
- ``{"$expr": {"const": 7, "terms": {"n": 1}, "cast": "int"}}`` — an
  affine combination of bindings (how per-cell seeds are derived);
- ``{"$nests": {"factory": "all_good", "k": {"$ref": "k"}}}`` — build a
  nest configuration from a registered factory.

Reserved bindings ``trials``, ``backend`` and ``trial_start`` override the
study defaults per cell (heterogeneous studies: agent-engine rows with
fewer trials next to fast-engine rows, historical trial-index layouts).

Quickstart::

    from repro.api import Study, Sweep, grid, nests_spec, ref, run_study

    study = Study(
        name="simple-scaling",
        sweep=Sweep(
            base={"algorithm": "simple", "nests": nests_spec("all_good", k=4),
                  "seed": 7, "max_rounds": 100_000},
            axes=(grid("n", (128, 256, 512, 1024)),),
        ),
        trials=20,
    )
    print(run_study(study).table.to_csv())
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

import numpy as np

from repro.api.cache import (
    CACHE_FORMAT_VERSION,
    ResultCache,
    resolve_cache,
)
from repro.api.report import RunReport
from repro.api.results import ResultTable
from repro.api.runner import WorkerPool
from repro.api.scenario import Scenario
from repro.exceptions import ConfigurationError
from repro.model.nests import NestConfig
from repro.sim.run import TrialStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.scheduler import ExecutionPolicy

#: Scenario fields a sweep axis or base template may bind (dotted paths —
#: ``params.beta``, ``noise.relative_sigma`` — address nested keys).
SCENARIO_FIELDS = (
    "algorithm",
    "n",
    "nests",
    "seed",
    "max_rounds",
    "params",
    "noise",
    "fault_plan",
    "delay_model",
    "criterion",
    "record_history",
)

#: Per-cell execution overrides (not scenario fields, not sweep variables).
RESERVED_FIELDS = ("trials", "backend", "trial_start")

#: NestConfig factory name -> builder, the ``$nests`` spec vocabulary.
NEST_FACTORIES: dict[str, Callable[..., NestConfig]] = {
    "all_good": lambda k: NestConfig.all_good(int(k)),
    "single_good": lambda k, good_nest=1: NestConfig.single_good(
        int(k), good_nest=int(good_nest)
    ),
    "binary": lambda k, good: NestConfig.binary(int(k), {int(i) for i in good}),
    "graded": lambda qualities, good_threshold=None: (
        NestConfig.graded(list(qualities))
        if good_threshold is None
        else NestConfig.graded(list(qualities), good_threshold=float(good_threshold))
    ),
}


# -- value specs -------------------------------------------------------------


def ref(name: str) -> dict[str, Any]:
    """A value spec substituting the cell binding ``name``."""
    return {"$ref": name}


def expr(const: float = 0, cast: str | None = None, **terms: float) -> dict[str, Any]:
    """An affine value spec: ``const + sum(coeff * binding)`` per cell.

    ``cast="int"`` truncates the total — the idiom for deriving per-cell
    seeds from swept values (``expr(base_seed, n=1)`` = ``base_seed + n``).
    """
    return {"$expr": {"const": const, "terms": dict(terms), "cast": cast}}


def nests_spec(factory: str, **kwargs: Any) -> dict[str, Any]:
    """A nest-configuration spec built by a registered factory per cell."""
    if factory not in NEST_FACTORIES:
        raise ConfigurationError(
            f"unknown nest factory {factory!r}; known: {', '.join(NEST_FACTORIES)}"
        )
    return {"$nests": {"factory": factory, **kwargs}}


def _is_spec(value: Any) -> bool:
    return isinstance(value, Mapping) and any(
        key in value for key in ("$ref", "$expr", "$nests")
    )


def _resolve(value: Any, bindings: Mapping[str, Any]) -> Any:
    """Recursively resolve ``$ref`` / ``$expr`` / ``$nests`` specs."""
    if isinstance(value, Mapping):
        if "$ref" in value:
            name = value["$ref"]
            if name not in bindings:
                raise ConfigurationError(
                    f"$ref to unknown sweep variable {name!r}; "
                    f"bound: {', '.join(sorted(map(str, bindings)))}"
                )
            return bindings[name]
        if "$expr" in value:
            spec = value["$expr"]
            total = spec.get("const", 0)
            for name, coeff in spec.get("terms", {}).items():
                if name not in bindings:
                    raise ConfigurationError(
                        f"$expr term references unknown sweep variable {name!r}"
                    )
                total = total + coeff * bindings[name]
            if spec.get("cast") == "int":
                total = int(total)
            return total
        if "$nests" in value:
            spec = {
                key: _resolve(item, bindings)
                for key, item in value["$nests"].items()
            }
            factory = spec.pop("factory", None)
            if factory not in NEST_FACTORIES:
                raise ConfigurationError(
                    f"unknown nest factory {factory!r}; "
                    f"known: {', '.join(NEST_FACTORIES)}"
                )
            nests = NEST_FACTORIES[factory](**spec)
            return {
                "qualities": [float(q) for q in nests.qualities],
                "good_threshold": float(nests.good_threshold),
            }
        return {key: _resolve(item, bindings) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_resolve(item, bindings) for item in value]
    return value


# -- axes --------------------------------------------------------------------


def grid(field_name: str, values: Sequence[Any]) -> dict[str, Any]:
    """A grid axis: one binding per value (cartesian with the other axes)."""
    return {"kind": "grid", "field": field_name, "values": list(values)}


def zipped(fields: Sequence[str], rows: Sequence[Sequence[Any]]) -> dict[str, Any]:
    """A zip axis: each row binds all ``fields`` simultaneously."""
    return {
        "kind": "zip",
        "fields": list(fields),
        "values": [list(row) for row in rows],
    }


def cases(*case_bindings: Mapping[str, Any]) -> dict[str, Any]:
    """An explicit-cases axis: each case is a full binding dict."""
    return {"kind": "cases", "cases": [dict(case) for case in case_bindings]}


def _axis_bindings(axis: Mapping[str, Any]) -> list[dict[str, Any]]:
    kind = axis.get("kind")
    if kind == "grid":
        return [{axis["field"]: value} for value in axis["values"]]
    if kind == "zip":
        fields = list(axis["fields"])
        rows = []
        for row in axis["values"]:
            if len(row) != len(fields):
                raise ConfigurationError(
                    f"zip axis row {row!r} does not match fields {fields!r}"
                )
            rows.append(dict(zip(fields, row)))
        return rows
    if kind == "cases":
        return [dict(case) for case in axis["cases"]]
    raise ConfigurationError(
        f"unknown axis kind {kind!r}; known: grid, zip, cases"
    )


# -- the declarations --------------------------------------------------------


@dataclass(frozen=True)
class Sweep:
    """A family of scenarios: base template x product of axes.

    ``base`` maps scenario fields (dotted paths allowed) to values or value
    specs.  Each axis contributes a list of binding dicts; the sweep's
    cells are the cartesian product across axes (binding-key collisions
    between axes are errors).  ``exclude`` drops any cell whose bindings
    match every key of one of its entries.
    """

    base: Mapping[str, Any] = field(default_factory=dict)
    axes: tuple[Mapping[str, Any], ...] = ()
    exclude: tuple[Mapping[str, Any], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "base", dict(self.base))
        axes = (self.axes,) if isinstance(self.axes, Mapping) else self.axes
        for axis in axes:
            if not isinstance(axis, Mapping) or "kind" not in axis:
                raise ConfigurationError(
                    f"each sweep axis must be an axis dict (grid/zipped/"
                    f"cases), got {axis!r}"
                )
        object.__setattr__(self, "axes", tuple(dict(a) for a in axes))
        object.__setattr__(self, "exclude", tuple(dict(e) for e in self.exclude))

    def cells(self) -> list[dict[str, Any]]:
        """Every cell's bindings, in axis-major (first axis slowest) order."""
        per_axis = [_axis_bindings(axis) for axis in self.axes]
        out: list[dict[str, Any]] = []
        for combo in itertools.product(*per_axis) if per_axis else [()]:
            bindings: dict[str, Any] = {}
            for part in combo:
                collision = set(part) & set(bindings)
                if collision:
                    raise ConfigurationError(
                        f"axes bind the same variable(s): {sorted(collision)}"
                    )
                bindings.update(part)
            if any(
                all(key in bindings and bindings[key] == value for key, value in ex.items())
                for ex in self.exclude
            ):
                continue
            out.append(bindings)
        if not out:
            raise ConfigurationError("sweep has no cells (empty axes or all excluded)")
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "base": dict(self.base),
            "axes": [dict(axis) for axis in self.axes],
            "exclude": [dict(ex) for ex in self.exclude],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Sweep":
        return cls(
            base=dict(data.get("base") or {}),
            axes=tuple(data.get("axes") or ()),
            exclude=tuple(data.get("exclude") or ()),
        )


#: Default metric columns when a study doesn't choose.
DEFAULT_METRICS = ("n_trials", "n_converged", "success_rate", "median_rounds")


@dataclass(frozen=True)
class Study:
    """A named sweep with trials-per-cell and metric selection."""

    name: str
    sweep: Sweep
    trials: int
    metrics: tuple[str, ...] = DEFAULT_METRICS
    backend: str = "auto"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a study needs a name")
        if self.trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {self.trials}")
        object.__setattr__(self, "metrics", tuple(self.metrics))
        unknown = [m for m in self.metrics if m not in METRICS]
        if unknown:
            raise ConfigurationError(
                f"unknown metric(s) {unknown}; known: {', '.join(sorted(METRICS))}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "sweep": self.sweep.to_dict(),
            "trials": self.trials,
            "metrics": list(self.metrics),
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Study":
        # An explicit empty metrics list means "no metric columns" and must
        # round-trip as such; only a *missing* key falls back to defaults.
        metrics = data.get("metrics")
        return cls(
            name=data["name"],
            sweep=Sweep.from_dict(data["sweep"]),
            trials=int(data["trials"]),
            metrics=DEFAULT_METRICS if metrics is None else tuple(metrics),
            backend=data.get("backend", "auto"),
            description=data.get("description", ""),
        )

    def to_json(self, **dumps_kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "Study":
        return cls.from_dict(json.loads(text))


# -- metrics -----------------------------------------------------------------

#: A metric folds one cell's reports+stats into a scalar or a dict of
#: named scalar columns.  Metrics must be pure: cached cells re-serve the
#: recorded values without re-running the function.
MetricFn = Callable[[Sequence[RunReport], TrialStats], Any]

METRICS: dict[str, MetricFn] = {}


def register_metric(name: str, fn: MetricFn, replace: bool = False) -> None:
    """Register a named metric for use in :attr:`Study.metrics`."""
    if name in METRICS and not replace:
        raise ConfigurationError(f"metric {name!r} already registered")
    METRICS[name] = fn


def _metric_scalar(value: Any) -> Any:
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if value is None or isinstance(value, str):
        return value
    raise ConfigurationError(
        f"metric values must be JSON scalars, got {type(value).__name__}"
    )


def evaluate_metrics(
    names: Sequence[str], reports: Sequence[RunReport], stats: TrialStats
) -> dict[str, Any]:
    """Evaluate ``names`` on one cell; dict-valued metrics flatten to columns."""
    values: dict[str, Any] = {}
    for name in names:
        try:
            fn = METRICS[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown metric {name!r}; known: {', '.join(sorted(METRICS))}"
            ) from None
        out = fn(reports, stats)
        flat = out if isinstance(out, Mapping) else {name: out}
        for key, value in flat.items():
            if key in values:
                raise ConfigurationError(
                    f"metric column {key!r} produced twice in one cell"
                )
            values[key] = _metric_scalar(value)
    return values


def _median(values: list[float]) -> float:
    return float(np.median(values)) if values else float("nan")


def _register_builtin_metrics() -> None:
    # Solved-based metrics (converged AND on a good nest) — the TrialStats
    # / run_stats success contract.
    register_metric("n_trials", lambda reports, stats: stats.n_trials)
    register_metric("n_converged", lambda reports, stats: stats.n_converged)
    register_metric("success_rate", lambda reports, stats: stats.success_rate)
    register_metric("median_rounds", lambda reports, stats: stats.median_rounds)
    register_metric("mean_rounds", lambda reports, stats: stats.mean_rounds)
    register_metric("p95_rounds", lambda reports, stats: stats.percentile(95))
    # Converged-based metrics (criterion fired, good or not) — the
    # summarize-runs contract used by the scaling experiments.
    register_metric(
        "n_converged_reports",
        lambda reports, stats: sum(1 for r in reports if r.converged),
    )
    register_metric(
        "success_rate_converged",
        lambda reports, stats: (
            sum(1 for r in reports if r.converged) / len(reports)
        ),
    )
    register_metric(
        "median_rounds_converged",
        lambda reports, stats: _median(
            [r.converged_round for r in reports if r.converged]
        ),
    )
    # All-report metrics (censored trials count at their executed rounds).
    register_metric(
        "median_rounds_all",
        lambda reports, stats: _median([r.rounds_to_convergence for r in reports]),
    )
    register_metric(
        "min_rounds_all",
        lambda reports, stats: min(r.rounds_to_convergence for r in reports),
    )
    register_metric(
        "max_rounds_all",
        lambda reports, stats: max(r.rounds_to_convergence for r in reports),
    )


_register_builtin_metrics()


# -- execution ---------------------------------------------------------------


@dataclass(frozen=True)
class Cell:
    """One fully-resolved sweep cell, ready to execute (or look up)."""

    index: int
    bindings: Mapping[str, Any]
    scenario: Scenario
    trials: int
    trial_start: int
    backend: str

    def payload(self, metrics: Sequence[str]) -> dict[str, Any]:
        """The content-address payload identifying this cell's result."""
        return {
            "version": CACHE_FORMAT_VERSION,
            "scenario": self.scenario.to_dict(),
            "trials": self.trials,
            "trial_start": self.trial_start,
            "backend": self.backend,
            "metrics": sorted(set(metrics)),
        }


@dataclass(frozen=True)
class CellFailure:
    """Structured record of a quarantined cell's terminal failure."""

    #: Exception class name (``"WorkerCrash"``, ``"ChunkTimeout"``, ...).
    kind: str
    message: str
    #: Cell-level attempts made before giving up.
    attempts: int
    #: Whether the terminal failure was a retryable substrate fault.
    retryable: bool


@dataclass(frozen=True)
class CellResult:
    """One executed (or cache-served, degraded, or quarantined) cell.

    ``stats``/``metrics`` are the classic payload; ``failure`` is set (and
    ``stats`` is ``None``) for quarantined cells, ``degraded`` names the
    failure kinds that pushed a fast cell onto the agent engine, and
    ``simulated`` counts the trials this cell actually ran (0 for cache
    hits and quarantined cells).
    """

    cell: Cell
    stats: TrialStats | None
    metrics: Mapping[str, Any]
    cached: bool
    failure: CellFailure | None = None
    degraded: tuple[str, ...] = ()
    simulated: int = 0

    @property
    def quarantined(self) -> bool:
        return self.failure is not None


@dataclass(frozen=True)
class StudyResult:
    """Everything :func:`run_study` produced for one study."""

    study: Study
    cells: tuple[CellResult, ...]
    table: ResultTable
    cache_hits: int
    cache_misses: int
    simulated_trials: int

    @property
    def quarantined(self) -> tuple[CellResult, ...]:
        """The cells that failed every recovery path (queryable failures)."""
        return tuple(c for c in self.cells if c.failure is not None)

    @property
    def degraded(self) -> tuple[CellResult, ...]:
        """The cells served by the agent engine after fast-kernel failure."""
        return tuple(c for c in self.cells if c.degraded)


def _set_path(config: dict[str, Any], path: str, value: Any) -> None:
    parts = path.split(".")
    target = config
    for part in parts[:-1]:
        nxt = target.get(part)
        if not isinstance(nxt, dict):
            nxt = {}
            target[part] = nxt
        target = nxt
    target[parts[-1]] = value


def expand_cell(study: Study, index: int, bindings: Mapping[str, Any]) -> Cell:
    """Resolve one cell's bindings into a concrete scenario + execution plan."""
    literal = {
        key: value for key, value in bindings.items() if not _is_spec(value)
    }
    literal.setdefault("cell_index", index)
    resolved = {key: _resolve(value, literal) for key, value in bindings.items()}
    resolved["cell_index"] = literal["cell_index"]

    config: dict[str, Any] = {}
    reserved: dict[str, Any] = {}
    for key, value in study.sweep.base.items():
        root = key.split(".", 1)[0]
        if root in RESERVED_FIELDS:
            reserved[key] = _resolve(value, resolved)
        elif root in SCENARIO_FIELDS:
            _set_path(config, key, _resolve(value, resolved))
        else:
            raise ConfigurationError(
                f"sweep base key {key!r} is neither a scenario field nor a "
                f"reserved execution field; known roots: "
                f"{', '.join(SCENARIO_FIELDS + RESERVED_FIELDS)}"
            )
    for key, value in resolved.items():
        root = key.split(".", 1)[0]
        if root in RESERVED_FIELDS:
            reserved[key] = value
        elif root in SCENARIO_FIELDS:
            _set_path(config, key, value)
    missing = [name for name in ("algorithm", "n", "nests") if name not in config]
    if missing:
        raise ConfigurationError(
            f"sweep cell {index} is missing required scenario field(s): {missing}"
        )
    scenario = Scenario.from_dict(config)

    trials = reserved.get("trials", study.trials)
    trial_start = reserved.get("trial_start", 0)
    backend = reserved.get("backend", study.backend)
    if trials < 1:
        raise ConfigurationError(f"cell {index}: trials must be >= 1, got {trials}")
    if trial_start < 0:
        raise ConfigurationError(
            f"cell {index}: trial_start must be >= 0, got {trial_start}"
        )
    return Cell(
        index=index,
        bindings=dict(resolved),
        scenario=scenario,
        trials=int(trials),
        trial_start=int(trial_start),
        backend=str(backend),
    )


def expand_study(study: Study) -> list[Cell]:
    """All cells of a study, resolved and validated."""
    return [
        expand_cell(study, index, bindings)
        for index, bindings in enumerate(study.sweep.cells())
    ]


def _table_row(cell: Cell, metrics: Mapping[str, Any]) -> dict[str, Any]:
    row: dict[str, Any] = {}
    for key, value in cell.bindings.items():
        if key in RESERVED_FIELDS or key == "cell_index":
            continue
        if isinstance(value, (bool, int, float, str)):
            row[key] = value
        elif value is None and key.split(".", 1)[0] not in SCENARIO_FIELDS:
            row[key] = value
    for key, value in metrics.items():
        if key in row:
            raise ConfigurationError(
                f"metric column {key!r} collides with a sweep variable of "
                "the same name; rename one of them"
            )
        row[key] = value
    return row


def run_study(
    study: Study,
    backend: str | None = None,
    workers: int | None = None,
    cache: "ResultCache | str | None" = "auto",
    batch_chunk: int | None = None,
    pool: "WorkerPool | None" = None,
    transport: str | None = None,
    policy: "ExecutionPolicy | None" = None,
) -> StudyResult:
    """Execute a study cell by cell, serving repeats from the cache.

    A thin frontend over :class:`repro.api.scheduler.CellScheduler` — the
    CLI today and the study-service daemon tomorrow drive the same
    executor.  Every cache miss expands into ``trials`` per-trial
    scenarios and runs through :func:`repro.api.run_batch` (so homogeneous
    cells ride the trial-parallel batch kernels, and ``workers`` fans
    trials out over processes).  When ``workers > 1`` a single persistent
    :class:`~repro.api.runner.WorkerPool` serves **every** cell of the
    study — worker processes fork once per study, not once per cell; pass
    your own via ``pool=`` to share it across studies (callers owning the
    pool also own its shutdown).  ``transport`` selects the worker result
    transport (see :func:`repro.api.run_batch`).  Results are
    deterministic for any ``workers`` / ``batch_chunk`` / ``pool`` /
    ``transport`` / ``policy`` / cache state: a warm re-run returns a
    bit-identical :class:`~repro.api.results.ResultTable` while simulating
    nothing.

    ``policy`` (an :class:`~repro.api.scheduler.ExecutionPolicy`) controls
    supervision, retry/backoff, degradation, and quarantine; the default
    supervises with quarantine on, so one poisoned cell becomes a
    structured failure row instead of aborting the sweep.

    ``cache="auto"`` uses ``$REPRO_CACHE_DIR`` when set (else no cache);
    pass a path or :class:`~repro.api.cache.ResultCache` to pin one, or
    ``None`` to disable.
    """
    from repro.api.scheduler import CellScheduler

    with CellScheduler(
        study,
        backend=backend,
        workers=workers,
        cache=cache,
        batch_chunk=batch_chunk,
        pool=pool,
        transport=transport,
        policy=policy,
    ) as scheduler:
        return scheduler.run()


# -- the study registry ------------------------------------------------------

#: Builds a study from runner-style arguments (``quick`` grids, seed, and
#: per-experiment overrides).
StudyFactory = Callable[..., Study]


@dataclass(frozen=True)
class StudyEntry:
    name: str
    factory: StudyFactory
    description: str = ""


class StudyRegistry:
    """Name -> study factory, the ``--list-studies`` population."""

    def __init__(self) -> None:
        self._entries: dict[str, StudyEntry] = {}

    def register(
        self, name: str, factory: StudyFactory, description: str = "", replace: bool = False
    ) -> None:
        if name in self._entries and not replace:
            raise ConfigurationError(f"study {name!r} already registered")
        self._entries[name] = StudyEntry(name, factory, description)

    def get(self, name: str) -> StudyEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown study {name!r}; known: {', '.join(self.names())}"
            ) from None

    def build(self, name: str, **kwargs: Any) -> Study:
        """Instantiate a registered study (``quick=``, ``base_seed=``, ...)."""
        return self.get(name).factory(**kwargs)

    def names(self) -> tuple[str, ...]:
        return tuple(self._entries)

    def describe(self) -> list[tuple[str, str]]:
        return [(entry.name, entry.description) for entry in self._entries.values()]

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)


#: Process-wide registry of named studies (populated by
#: :mod:`repro.experiments` on import).
STUDIES = StudyRegistry()
