"""The cell scheduler: one supervised executor under every study frontend.

:func:`repro.api.run_study` used to own an inline cell loop; ROADMAP item
1 (the long-running study service) needs that loop as an explicit object
a daemon can drive cell-by-cell.  :class:`CellScheduler` is that object:
it expands a :class:`~repro.api.sweep.Study`, owns the worker pool and
cache for its lifetime, and yields one
:class:`~repro.api.sweep.CellResult` per cell through :meth:`outcomes`
(streaming — a service layer can persist/publish each cell as it lands)
or a full :class:`~repro.api.sweep.StudyResult` through :meth:`run` (the
CLI path).  ``run_study`` is now a thin wrapper; the future daemon is a
second frontend over the same executor.

Execution behavior is pluggable through :class:`ExecutionPolicy`:

- **supervision** — cache-missing cells dispatch through the supervised
  worker pool (per-chunk deadlines, pool respawn, deterministic chunk
  retry with exponential backoff; see
  :func:`repro.api.runner._dispatch_supervised`);
- **cell retry** — a cell whose dispatch still fails after chunk-level
  recovery is retried up to ``quarantine_after`` times (only for
  *retryable* substrate faults — a deterministic kernel crash would just
  replay);
- **degradation** — a fast-backend cell that keeps failing falls back to
  the agent engine when the algorithm has one, recording
  ``extras["degraded"]`` on its reports (the resilience twin of the
  existing ``agent_fallback``);
- **quarantine** — a cell that exhausts every recovery path becomes a
  structured failure row in the :class:`~repro.api.results.ResultTable`
  (``status="quarantined"``) and the study *completes*; set
  ``quarantine=False`` for fail-fast
  :class:`~repro.exceptions.CellQuarantined`.

Retries re-draw the exact same ``RandomSource(seed).trial(t)`` streams,
so every recovered result is bit-identical to an undisturbed run — the
chaos suite (:mod:`tests.test_chaos`) pins this against the golden
harness.  See ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Iterator

from repro.api.cache import ResultCache, resolve_cache
from repro.api.registry import REGISTRY
from repro.api.results import ResultTable
from repro.api.spill import maybe_spill
from repro.api.runner import (
    WorkerPool,
    aggregate,
    default_workers,
    resolve_backend,
    run_batch,
)
from repro.api.sweep import (
    CellFailure,
    CellResult,
    Study,
    StudyResult,
    _table_row,
    evaluate_metrics,
    expand_study,
)
from repro.exceptions import (
    CellQuarantined,
    ConfigurationError,
    is_retryable,
)
from repro.fast.arena import maybe_trim

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.sweep import Cell


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a scheduler (and the supervised dispatcher) handles failure.

    The default policy supervises: chunks get deadlines only if
    ``chunk_timeout`` is set (``None`` waits forever — a deadline that
    could fire on a slow-but-healthy machine would be a false positive),
    substrate faults retry with deterministic exponential backoff, and a
    hopeless cell is quarantined rather than aborting the study.
    ``ExecutionPolicy(supervise=False)`` reproduces the pre-resilience
    dispatch exactly (and is what the clean-path overhead bench compares
    against).

    ``sleep`` exists for tests: deterministic backoff schedules are
    asserted by injecting a recorder instead of actually sleeping.
    """

    #: Dispatch cache-missing cells through the supervised pool path.
    supervise: bool = True
    #: Per-chunk deadline in seconds (``None``: no deadline).
    chunk_timeout: float | None = None
    #: Chunk-level retries after a worker death / blown deadline.
    max_retries: int = 2
    #: Backoff before retry ``k`` is ``backoff_base * backoff_factor**(k-1)``,
    #: capped at ``backoff_max`` seconds.
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    #: Cell-level attempts before degradation/quarantine.
    quarantine_after: int = 2
    #: Fall back to the agent engine for a repeatedly-crashing fast cell.
    degrade_to_agent: bool = True
    #: Record exhausted cells as failure rows (False: raise CellQuarantined).
    quarantine: bool = True
    #: Injection point for the backoff sleep (tests record, prod sleeps).
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ConfigurationError(
                f"chunk_timeout must be positive, got {self.chunk_timeout}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0:
            raise ConfigurationError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_max < 0:
            raise ConfigurationError(
                f"backoff_max must be >= 0, got {self.backoff_max}"
            )
        if self.quarantine_after < 1:
            raise ConfigurationError(
                f"quarantine_after must be >= 1, got {self.quarantine_after}"
            )

    def backoff_delay(self, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` (1-based; 0 for <= 0)."""
        if attempt <= 0 or self.backoff_base == 0:
            return 0.0
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )


class CellScheduler:
    """Expand a study and execute its cells under an execution policy.

    The scheduler owns the run's resources: the resolved cache, and — when
    no external ``pool`` is passed and ``workers > 1`` — a private
    :class:`~repro.api.runner.WorkerPool` shared by every cell and closed
    on :meth:`close` / context-manager exit.  Frontends either iterate
    :meth:`outcomes` (cell-at-a-time streaming) or call :meth:`run`.
    """

    def __init__(
        self,
        study: Study,
        *,
        backend: str | None = None,
        workers: int | None = None,
        cache: "ResultCache | str | None" = "auto",
        batch_chunk: int | None = None,
        pool: WorkerPool | None = None,
        transport: str | None = None,
        policy: ExecutionPolicy | None = None,
    ) -> None:
        self.study = study
        self.backend = backend
        self.workers = default_workers() if workers is None else workers
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )
        self.cache = resolve_cache(cache)
        self.batch_chunk = batch_chunk
        self.transport = transport
        self.policy = ExecutionPolicy() if policy is None else policy
        self._external_pool = pool
        self._own_pool: WorkerPool | None = None

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release the scheduler-owned pool (external pools are untouched)."""
        if self._own_pool is not None:
            self._own_pool.close()
            self._own_pool = None

    def __enter__(self) -> "CellScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _pool(self) -> WorkerPool | None:
        if self._external_pool is not None:
            return self._external_pool
        if self.workers > 1 and self._own_pool is None:
            self._own_pool = WorkerPool(self.workers)
        return self._own_pool

    # -- execution ----------------------------------------------------------

    def cells(self) -> "list[Cell]":
        """The study's expanded cells with backends resolved eagerly.

        Resolution errors (unknown backend, unsupported features) are
        configuration bugs, not runtime faults: they surface here —
        identically with and without a cache — and are never quarantined.
        """
        expanded = []
        for cell in expand_study(self.study):
            if self.backend is not None:
                cell = replace(cell, backend=self.backend)
            resolved = resolve_backend(cell.scenario, cell.backend)
            expanded.append(replace(cell, backend=resolved))
        return expanded

    def outcomes(self) -> Iterator[CellResult]:
        """Execute cell by cell, yielding each result as it completes.

        The streaming surface for the study-service frontend: a daemon
        can persist or publish each cell the moment it lands instead of
        waiting for the whole study.
        """
        for cell in self.cells():
            result = self._run_cell(cell)
            # Between cells is the one boundary where no kernel is
            # mid-flight in this thread: apply the arena retention cap so
            # a single huge-n cell cannot bloat a long-lived worker for
            # the rest of the study (no-op unless $REPRO_ARENA_TRIM_BYTES
            # is set; pool workers trim on their own side per task).
            maybe_trim()
            yield result

    def run(self) -> StudyResult:
        """Execute every cell and fold the outcomes into a StudyResult."""
        return fold_study_result(
            self.study, list(self.outcomes()), cached=self.cache is not None
        )

    def _run_cell(self, cell: "Cell") -> CellResult:
        """One cell through the full recovery ladder.

        Attempt the cell up to ``policy.quarantine_after`` times (each
        attempt itself rides the chunk-level supervision inside
        :func:`~repro.api.run_batch`); only *retryable* substrate faults
        earn another attempt.  Then degrade fast -> agent if allowed, and
        finally quarantine (or raise, under fail-fast policies).
        """
        policy = self.policy
        failure: BaseException | None = None
        attempts = 0
        for attempt in range(policy.quarantine_after):
            attempts = attempt + 1
            try:
                return self._execute(cell)
            except (KeyboardInterrupt, SystemExit):
                raise
            except ConfigurationError:
                raise
            except Exception as exc:
                failure = exc
                if not is_retryable(exc):
                    break
                if attempt + 1 < policy.quarantine_after:
                    delay = policy.backoff_delay(attempt + 1)
                    if delay > 0:
                        policy.sleep(delay)
        assert failure is not None
        if (
            policy.degrade_to_agent
            and cell.backend == "fast"
            and REGISTRY.get(cell.scenario.algorithm).has_agent
        ):
            degraded_cell = replace(cell, backend="agent")
            try:
                return self._execute(
                    degraded_cell, degraded=(type(failure).__name__,)
                )
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                failure = exc
        if not policy.quarantine:
            raise CellQuarantined(
                f"cell {cell.index} failed after {attempts} attempt(s): "
                f"{type(failure).__name__}: {failure}",
                cell_index=cell.index,
                cause=failure,
            ) from failure
        return CellResult(
            cell,
            None,
            {},
            cached=False,
            failure=CellFailure(
                kind=type(failure).__name__,
                message=str(failure),
                attempts=attempts,
                retryable=is_retryable(failure),
            ),
        )

    def _execute(
        self, cell: "Cell", degraded: tuple[str, ...] = ()
    ) -> CellResult:
        """One attempt: cache lookup, else simulate, evaluate, store.

        The cache check lives *inside* the attempt so a retried cell
        whose first attempt died after ``store`` (or whose twin completed
        in another process) is served warm instead of re-simulated.
        """
        payload = cell.payload(self.study.metrics)
        if self.cache is not None:
            entry = self.cache.load(payload)
            if entry is not None:
                stats, metric_values = entry
                return CellResult(
                    cell, stats, metric_values, cached=True, degraded=degraded
                )
        try:
            scenarios = cell.scenario.trials(cell.trials, start=cell.trial_start)
            reports = run_batch(
                scenarios,
                workers=self.workers,
                backend=cell.backend,
                batch_chunk=self.batch_chunk,
                pool=self._pool(),
                transport=self.transport,
                policy=self.policy,
                chaos_scope=f"cell{cell.index}",
            )
            if degraded:
                from dataclasses import replace as _replace

                reports = [
                    _replace(r, extras={**r.extras, "degraded": list(degraded)})
                    for r in reports
                ]
            stats = aggregate(reports)
            metric_values = evaluate_metrics(self.study.metrics, reports, stats)
            if self.cache is not None:
                self.cache.store(payload, stats, metric_values)
        except BaseException:
            # A deduplicating cache (repro.service) hands out an in-flight
            # claim on the miss above; a failed compute must release it or
            # concurrent requesters of the same cell would wait forever.
            release = getattr(self.cache, "release", None)
            if release is not None:
                release(payload)
            raise
        return CellResult(
            cell,
            stats,
            metric_values,
            cached=False,
            degraded=degraded,
            simulated=len(reports),
        )


def fold_study_result(
    study: Study, results: "list[CellResult]", cached: bool
) -> StudyResult:
    """Fold per-cell outcomes into a :class:`StudyResult`.

    The one fold shared by every frontend — :meth:`CellScheduler.run`,
    the streaming ``sweep --json`` CLI, and the study service — so a
    study's table is bit-identical however its cells were delivered.
    ``cached`` says whether a cache served the run (hit/miss counters are
    only meaningful then).
    """
    hits = misses = simulated = 0
    for result in results:
        simulated += result.simulated
        if cached and result.failure is None:
            if result.cached:
                hits += 1
            else:
                misses += 1
    # Huge studies go out of core here: maybe_spill is the identity unless
    # $REPRO_SPILL_DIR is set and the table exceeds its row/byte budget,
    # in which case the returned table is memmap-backed (same interface,
    # same bits — docs/PERFORMANCE.md §8).
    table = maybe_spill(
        ResultTable.from_rows([_result_row(result) for result in results])
    )
    return StudyResult(
        study=study,
        cells=tuple(results),
        table=table,
        cache_hits=hits,
        cache_misses=misses,
        simulated_trials=simulated,
    )


def cell_event(result: CellResult) -> dict:
    """One completed cell as a JSON-safe event record.

    The NDJSON line format shared by ``python -m repro.api sweep --json``
    and the service's ``GET /jobs/<id>/cells`` stream: the cell's table
    row plus execution provenance (cached / degraded / quarantined,
    trials actually simulated).
    """
    event: dict = {
        "cell": result.cell.index,
        "row": _result_row(result),
        # The metrics dict separately from the merged row: a remote client
        # rebuilds CellResults from events and re-folds, and the fold needs
        # metrics (in insertion order) distinct from the cell's bindings.
        "metrics": dict(result.metrics),
        "cached": result.cached,
        "simulated": result.simulated,
    }
    if result.degraded:
        event["degraded"] = list(result.degraded)
    if result.failure is not None:
        event["status"] = "quarantined"
        event["error"] = f"{result.failure.kind}: {result.failure.message}"
    return event


def _result_row(result: CellResult) -> dict:
    """One ResultTable row: clean rows keep the classic schema exactly.

    Quarantined cells contribute ``status`` / ``error`` columns instead of
    metrics; degraded cells keep their metrics and add ``status``.  In an
    all-clean study neither column exists, so pre-resilience tables are
    bit-identical.
    """
    if result.failure is not None:
        row = _table_row(result.cell, {})
        row["status"] = "quarantined"
        row["error"] = f"{result.failure.kind}: {result.failure.message}"
        return row
    row = _table_row(result.cell, result.metrics)
    if result.degraded:
        row["status"] = "degraded"
    return row
