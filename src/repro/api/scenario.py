"""Declarative run descriptions: the single currency of the Scenario API.

A :class:`Scenario` says *what* to simulate — algorithm name, colony size,
nest configuration, seed, stopping rule, perturbation layers — without
saying *how* (which engine).  It is frozen, comparable, picklable (so
:func:`repro.api.run_batch` can ship it to worker processes) and
round-trips through plain dicts and JSON, which makes sweeps storable and
shareable as data.

Randomness is fully determined by ``(seed, trial_index)``: trial ``t`` of a
scenario uses the independent child stream ``RandomSource(seed).trial(t)``,
exactly as :func:`repro.sim.run.run_trials` always has, so batch results
never depend on scheduling or worker count.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.api.registry import CRITERIA
from repro.exceptions import ConfigurationError
from repro.extensions.estimation import EncounterNoise, EncounterRateEstimator
from repro.model.nests import NestConfig
from repro.sim.asynchrony import DelayModel
from repro.sim.faults import CrashMode, FaultPlan
from repro.sim.noise import CountNoise
from repro.sim.rng import RandomSource

#: Criterion names accepted by :attr:`Scenario.criterion` — exactly the
#: registered :data:`repro.api.registry.CRITERIA` factories.
CRITERION_NAMES = tuple(CRITERIA)


@dataclass(frozen=True)
class Scenario:
    """One fully-specified simulation run (or family of seeded trials).

    Parameters
    ----------
    algorithm:
        Registry name (see ``python -m repro.api --list``).
    n, nests, seed, max_rounds:
        Workload and stopping control.  ``seed`` is the *base* seed; with
        ``trial_index=None`` the run uses ``RandomSource(seed)`` directly.
    trial_index:
        When set, the run uses the independent child stream
        ``RandomSource(seed).trial(trial_index)`` — see :meth:`trials`.
    params:
        Algorithm-specific knobs (JSON-safe values only), interpreted by
        the registry entry — e.g. ``{"strict_pseudocode": True}`` for
        ``optimal`` or ``{"policy": "mixed"}`` for ``spread``.
    noise, fault_plan, delay_model:
        Optional perturbation layers (Section 6 extensions).
    criterion:
        Convergence-criterion name (one of :data:`CRITERION_NAMES`), or
        ``None`` for the algorithm's registered default.
    record_history:
        Keep the per-round ``(T, k+1)`` population matrix on the report
        (costs memory proportional to the run length).
    """

    algorithm: str
    n: int
    nests: NestConfig
    seed: int = 0
    trial_index: int | None = None
    max_rounds: int = 100_000
    params: Mapping[str, Any] = field(default_factory=dict)
    noise: CountNoise | EncounterNoise | None = None
    fault_plan: FaultPlan | None = None
    delay_model: DelayModel | None = None
    criterion: str | None = None
    record_history: bool = False

    def __post_init__(self) -> None:
        if not self.algorithm:
            raise ConfigurationError("scenario needs an algorithm name")
        if self.n < 1:
            raise ConfigurationError(f"n must be >= 1, got {self.n}")
        if self.max_rounds < 1:
            raise ConfigurationError(
                f"max_rounds must be >= 1, got {self.max_rounds}"
            )
        if self.trial_index is not None and self.trial_index < 0:
            raise ConfigurationError(
                f"trial_index must be >= 0, got {self.trial_index}"
            )
        if self.criterion is not None and self.criterion not in CRITERION_NAMES:
            raise ConfigurationError(
                f"unknown criterion {self.criterion!r}; "
                f"known: {', '.join(CRITERION_NAMES)}"
            )
        object.__setattr__(self, "params", dict(self.params))

    # -- randomness --------------------------------------------------------

    def source(self) -> RandomSource:
        """The seeded stream bundle this scenario's run must use."""
        root = RandomSource(self.seed)
        return root if self.trial_index is None else root.trial(self.trial_index)

    # -- derivation --------------------------------------------------------

    def replace(self, **changes: Any) -> "Scenario":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def trial(self, index: int) -> "Scenario":
        """The scenario for independent trial ``index`` of this base seed."""
        return self.replace(trial_index=index)

    def trials(self, count: int, start: int = 0) -> list["Scenario"]:
        """``count`` independent per-trial scenarios under this base seed."""
        return [self.trial(start + index) for index in range(count)]

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A JSON-safe plain-dict form; inverse of :meth:`from_dict`.

        The form is **canonical**: ``params`` keys come out sorted and numpy
        scalars are normalized to plain Python ints/floats/bools, so two
        equal scenarios always serialize to the same JSON text — the
        property the sweep cache's content addressing relies on (equal
        scenarios must hash equal).
        """
        return {
            "algorithm": self.algorithm,
            "n": int(self.n),
            "nests": {
                "qualities": [float(q) for q in self.nests.qualities],
                "good_threshold": float(self.nests.good_threshold),
            },
            "seed": int(self.seed),
            "trial_index": (
                None if self.trial_index is None else int(self.trial_index)
            ),
            "max_rounds": int(self.max_rounds),
            "params": _canonical_value(self.params),
            "noise": _noise_to_dict(self.noise),
            "fault_plan": _fault_plan_to_dict(self.fault_plan),
            "delay_model": (
                None
                if self.delay_model is None
                else {"delay_probability": self.delay_model.delay_probability}
            ),
            "criterion": self.criterion,
            "record_history": self.record_history,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output."""
        nests_data = data["nests"]
        delay_data = data.get("delay_model")
        return cls(
            algorithm=data["algorithm"],
            n=int(data["n"]),
            nests=NestConfig(
                qualities=tuple(float(q) for q in nests_data["qualities"]),
                good_threshold=float(nests_data.get("good_threshold", 0.5)),
            ),
            seed=int(data.get("seed", 0)),
            trial_index=(
                None if data.get("trial_index") is None else int(data["trial_index"])
            ),
            max_rounds=int(data.get("max_rounds", 100_000)),
            params=dict(data.get("params") or {}),
            noise=_noise_from_dict(data.get("noise")),
            fault_plan=_fault_plan_from_dict(data.get("fault_plan")),
            delay_model=(
                None
                if delay_data is None
                else DelayModel(float(delay_data["delay_probability"]))
            ),
            criterion=data.get("criterion"),
            record_history=bool(data.get("record_history", False)),
        )

    def to_json(self, **dumps_kwargs: Any) -> str:
        """JSON form; inverse of :meth:`from_json`."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Rebuild a scenario from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


def _canonical_value(value: Any) -> Any:
    """Normalize a JSON-bound value: sorted dict keys, no numpy scalars.

    Guarantees that scenarios which compare equal produce byte-identical
    ``to_json`` output regardless of dict insertion order or whether a
    value arrived as ``np.int64(4)`` or ``4``.
    """
    if isinstance(value, Mapping):
        return {str(key): _canonical_value(value[key]) for key in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [_canonical_value(item) for item in value]
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    return value


# -- perturbation-layer (de)serialization -----------------------------------


def _noise_to_dict(noise: CountNoise | EncounterNoise | None) -> dict | None:
    if noise is None:
        return None
    if isinstance(noise, EncounterNoise):
        return {
            "kind": "encounter",
            "trials": noise.estimator.trials,
            "capacity": noise.estimator.capacity,
            "quality_flip_prob": noise.quality_flip_prob,
        }
    if isinstance(noise, CountNoise):
        return {
            "kind": "count",
            "relative_sigma": noise.relative_sigma,
            "absolute_sigma": noise.absolute_sigma,
            "quality_flip_prob": noise.quality_flip_prob,
        }
    raise ConfigurationError(f"cannot serialize noise model {noise!r}")


def _noise_from_dict(data: Mapping[str, Any] | None) -> CountNoise | EncounterNoise | None:
    if data is None:
        return None
    kind = data.get("kind", "count")
    if kind == "encounter":
        return EncounterNoise(
            estimator=EncounterRateEstimator(
                trials=int(data.get("trials", 64)),
                capacity=int(data.get("capacity", 1024)),
            ),
            quality_flip_prob=float(data.get("quality_flip_prob", 0.0)),
        )
    if kind == "count":
        return CountNoise(
            relative_sigma=float(data.get("relative_sigma", 0.0)),
            absolute_sigma=float(data.get("absolute_sigma", 0.0)),
            quality_flip_prob=float(data.get("quality_flip_prob", 0.0)),
        )
    raise ConfigurationError(f"unknown noise kind {kind!r}")


def _fault_plan_to_dict(plan: FaultPlan | None) -> dict | None:
    if plan is None:
        return None
    return {
        "crash_fraction": plan.crash_fraction,
        "byzantine_fraction": plan.byzantine_fraction,
        "crash_round_range": list(plan.crash_round_range),
        "crash_mode": plan.crash_mode.value,
        "seek_bad": plan.seek_bad,
    }


def _fault_plan_from_dict(data: Mapping[str, Any] | None) -> FaultPlan | None:
    if data is None:
        return None
    lo, hi = data.get("crash_round_range", (1, 20))
    return FaultPlan(
        crash_fraction=float(data.get("crash_fraction", 0.0)),
        byzantine_fraction=float(data.get("byzantine_fraction", 0.0)),
        crash_round_range=(int(lo), int(hi)),
        crash_mode=CrashMode(data.get("crash_mode", CrashMode.AT_HOME.value)),
        seek_bad=bool(data.get("seek_bad", True)),
    )
