"""Out-of-core :class:`~repro.api.results.ResultTable` columns.

A 10^5+-cell study's table no longer has to live in RAM: numeric columns
spill to flat binary files and come back as read-only ``numpy.memmap``
arrays *behind the unchanged dict-of-columns interface* — ``memmap`` is an
``ndarray`` subclass whose scalar reads yield ordinary numpy scalars and
whose fancy-indexed reads yield ordinary in-RAM arrays, so ``select`` /
``group_by`` / ``equals`` / CSV / JSON export work verbatim on a spilled
table (``tests/test_spill.py`` pins this, including bit-exact ``equals``
against the in-RAM original).  Object columns (strings, mixed, None) have
no memmap form; they stay in RAM via a JSON sidecar — in practice they are
the handful of swept-binding columns, orders of magnitude smaller than the
metric columns.

The spill is a plain directory: one ``spill.json`` manifest plus one file
per column.  That makes "resume from spill" trivial — :func:`load_spilled`
rebuilds the table from the manifest alone, so a crashed or restarted
consumer re-opens the study's results without re-simulating anything.

:func:`maybe_spill` is the policy seam :func:`~repro.api.scheduler.
fold_study_result` calls on every fold: inert unless ``$REPRO_SPILL_DIR``
is set, spilling when the table exceeds the row budget
(``$REPRO_SPILL_ROWS``, default :data:`DEFAULT_SPILL_ROWS`) or the byte
budget (``$REPRO_SPILL_BYTES``, default unlimited).  The service's NDJSON
cell streaming is upstream of the fold and unaffected.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

import numpy as np

from repro.api.results import ResultTable, _column_array, _python_scalar
from repro.exceptions import ConfigurationError

#: Environment variables configuring the automatic spill policy.
SPILL_DIR_ENV = "REPRO_SPILL_DIR"
SPILL_ROWS_ENV = "REPRO_SPILL_ROWS"
SPILL_BYTES_ENV = "REPRO_SPILL_BYTES"

#: Default row budget once a spill directory is configured: studies at or
#: above this many cells go out of core.
DEFAULT_SPILL_ROWS = 100_000

#: Manifest file name inside a spill directory.
MANIFEST_NAME = "spill.json"

_MANIFEST_VERSION = 1


def _table_nbytes(table: ResultTable) -> int:
    """In-RAM footprint estimate: numeric columns exactly, object columns
    by slot (the pointed-to Python objects are not counted)."""
    return sum(table.column(name).nbytes for name in table.column_names)


def spill_table(table: ResultTable, directory: str | Path) -> Path:
    """Write ``table`` into ``directory`` as a memmap-ready spill.

    Numeric columns (``int64``/``float64``/bool) become raw little-endian
    column files read back with ``numpy.memmap``; object columns become
    JSON sidecars.  Returns the manifest path.  The directory is created
    if needed and must not already hold a manifest (spills are immutable
    once written — a second study must spill elsewhere).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest_path = directory / MANIFEST_NAME
    if manifest_path.exists():
        raise ConfigurationError(
            f"spill directory {directory} already holds a manifest"
        )
    columns = []
    for index, name in enumerate(table.column_names):
        array = table.column(name)
        if array.dtype.kind == "O":
            file_name = f"col_{index}.json"
            payload = [_python_scalar(value) for value in array]
            (directory / file_name).write_text(json.dumps(payload))
            columns.append({"name": name, "kind": "object", "file": file_name})
        else:
            file_name = f"col_{index}.bin"
            # Fixed on-disk byte order: a spill written on one machine
            # must read back identically on any other.
            np.ascontiguousarray(
                array, dtype=array.dtype.newbyteorder("<")
            ).tofile(directory / file_name)
            columns.append(
                {
                    "name": name,
                    "kind": "memmap",
                    "dtype": array.dtype.str.lstrip("<>=|"),
                    "file": file_name,
                }
            )
    manifest = {
        "version": _MANIFEST_VERSION,
        "n_rows": table.n_rows,
        "columns": columns,
    }
    manifest_path.write_text(json.dumps(manifest, indent=2))
    return manifest_path


def load_spilled(directory: str | Path) -> ResultTable:
    """Re-open a spill directory as a memmap-backed :class:`ResultTable`.

    Numeric columns come back as read-only ``numpy.memmap`` views over the
    column files (no data is read until touched); object columns are
    rebuilt from their JSON sidecars through the standard dtype-inference
    path.  The result is ``equals``-identical to the table that was
    spilled — the resume-from-spill contract.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise ConfigurationError(f"no spill manifest in {directory}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("version") != _MANIFEST_VERSION:
        raise ConfigurationError(
            f"unsupported spill manifest version {manifest.get('version')!r}"
        )
    n_rows = int(manifest["n_rows"])
    columns: dict[str, Any] = {}
    for spec in manifest["columns"]:
        path = directory / spec["file"]
        if spec["kind"] == "object":
            columns[spec["name"]] = _column_array(json.loads(path.read_text()))
        else:
            columns[spec["name"]] = np.memmap(
                path,
                dtype=np.dtype("<" + spec["dtype"]),
                mode="r",
                shape=(n_rows,),
            )
    table = ResultTable(columns)
    table.spill_dir = directory  # type: ignore[attr-defined]
    return table


def _env_int(name: str, default: int | None) -> int | None:
    setting = os.environ.get(name, "").strip()
    if not setting:
        return default
    try:
        return int(setting)
    except ValueError:
        return default


def maybe_spill(
    table: ResultTable,
    directory: str | Path | None = None,
    max_rows: int | None = None,
    max_bytes: int | None = None,
) -> ResultTable:
    """Spill ``table`` out of core if it exceeds the configured budget.

    The automatic policy seam: with no ``directory`` argument and no
    ``$REPRO_SPILL_DIR``, this is the identity.  Otherwise the table
    spills into a fresh subdirectory of ``directory`` once it reaches
    ``max_rows`` (``$REPRO_SPILL_ROWS``, default
    :data:`DEFAULT_SPILL_ROWS`) rows or ``max_bytes``
    (``$REPRO_SPILL_BYTES``, default unlimited) in-RAM bytes, and the
    memmap-backed equivalent is returned (its ``spill_dir`` attribute
    names the directory for later :func:`load_spilled` resumes).  Tables
    under budget pass through untouched.
    """
    if directory is None:
        directory = os.environ.get(SPILL_DIR_ENV, "").strip() or None
    if directory is None:
        return table
    if max_rows is None:
        max_rows = _env_int(SPILL_ROWS_ENV, DEFAULT_SPILL_ROWS)
    if max_bytes is None:
        max_bytes = _env_int(SPILL_BYTES_ENV, None)
    over_rows = max_rows is not None and table.n_rows >= max_rows
    over_bytes = max_bytes is not None and _table_nbytes(table) >= max_bytes
    if not (over_rows or over_bytes):
        return table
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    spill_dir = Path(tempfile.mkdtemp(prefix="study_", dir=base))
    spill_table(table, spill_dir)
    return load_spilled(spill_dir)
