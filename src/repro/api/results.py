"""Columnar study results: a small dict-of-numpy-columns table.

:func:`repro.api.sweep.run_study` streams one row per sweep cell into a
:class:`ResultTable` — cell bindings (the swept variables) on the left,
metric values on the right.  The table is deliberately tiny: named columns
backed by numpy arrays, equality that is *bit*-exact (the cold-vs-warm
cache contract), ``group_by``/``mean``/``quantile`` for the common
post-processing, and CSV/JSON export so results travel as data the same
way :class:`~repro.api.scenario.Scenario` and
:class:`~repro.api.sweep.Study` do.

No pandas: the environment is numpy-only and the access patterns here
(column math, group-by on a handful of keys) don't need more.
"""

from __future__ import annotations

import io
import json
import math
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigurationError

#: Scalar cell types a column may hold (None marks a missing value).
Scalar = Any


def _column_array(values: Sequence[Scalar]) -> np.ndarray:
    """The tightest dtype that holds ``values`` losslessly.

    All-int -> int64, numeric (with NaN for missing) -> float64, everything
    else (strings, mixed, None) -> object.  Booleans stay object so they
    render as True/False rather than 1/0.
    """
    if all(isinstance(v, int) and not isinstance(v, bool) for v in values):
        return np.asarray(values, dtype=np.int64)
    if all(
        v is None
        or (isinstance(v, (int, float)) and not isinstance(v, bool))
        for v in values
    ):
        return np.asarray(
            [float("nan") if v is None else float(v) for v in values],
            dtype=np.float64,
        )
    out = np.empty(len(values), dtype=object)
    out[:] = values
    return out


class ResultTable:
    """An ordered mapping of column name -> numpy array, equal lengths."""

    def __init__(self, columns: Mapping[str, Sequence[Scalar]]) -> None:
        if not columns:
            raise ConfigurationError("a result table needs at least one column")
        self._columns: dict[str, np.ndarray] = {}
        length: int | None = None
        for name, values in columns.items():
            array = (
                values
                if isinstance(values, np.ndarray)
                else _column_array(list(values))
            )
            if length is None:
                length = len(array)
            elif len(array) != length:
                raise ConfigurationError(
                    f"column {name!r} has {len(array)} rows, expected {length}"
                )
            self._columns[str(name)] = array

    # -- construction ------------------------------------------------------

    @classmethod
    def from_rows(cls, rows: Sequence[Mapping[str, Scalar]]) -> "ResultTable":
        """Build from per-row dicts; columns = union of keys, first-seen order.

        Keys missing from a row become ``None`` (NaN in numeric columns).
        """
        if not rows:
            raise ConfigurationError("a result table needs at least one row")
        names: list[str] = []
        for row in rows:
            for key in row:
                if key not in names:
                    names.append(key)
        return cls(
            {name: [row.get(name) for row in rows] for name in names}
        )

    # -- shape and access --------------------------------------------------

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self._columns)

    @property
    def n_rows(self) -> int:
        return len(next(iter(self._columns.values())))

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise ConfigurationError(
                f"no column {name!r}; have: {', '.join(self._columns)}"
            ) from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def __contains__(self, name: object) -> bool:
        return name in self._columns

    def row(self, index: int) -> dict[str, Scalar]:
        """One row as a plain dict of Python scalars."""
        return {
            name: _python_scalar(array[index])
            for name, array in self._columns.items()
        }

    def rows(self) -> Iterator[dict[str, Scalar]]:
        for index in range(self.n_rows):
            yield self.row(index)

    # -- relational helpers ------------------------------------------------

    def mask(self, mask: np.ndarray) -> "ResultTable":
        """The sub-table of rows where ``mask`` is True."""
        return ResultTable(
            {name: array[mask] for name, array in self._columns.items()}
        )

    def select(self, **filters: Scalar) -> "ResultTable":
        """Rows matching every ``column == value`` filter (may be empty-ish).

        Raises if the selection is empty — a silent empty table hides typos
        in sweep variable values.
        """
        mask = np.ones(self.n_rows, dtype=bool)
        for name, value in filters.items():
            mask &= _equals(self.column(name), value)
        if not mask.any():
            raise ConfigurationError(
                f"select({filters!r}) matched no rows"
            )
        return self.mask(mask)

    def value(self, column: str, **filters: Scalar) -> Scalar:
        """The single value of ``column`` in the unique row matching filters."""
        sub = self.select(**filters)
        if sub.n_rows != 1:
            raise ConfigurationError(
                f"select({filters!r}) matched {sub.n_rows} rows, expected 1"
            )
        return _python_scalar(sub.column(column)[0])

    def group_by(self, *keys: str) -> list[tuple[tuple[Scalar, ...], "ResultTable"]]:
        """(key values, sub-table) pairs, in first-appearance order."""
        if not keys:
            raise ConfigurationError("group_by needs at least one key column")
        arrays = [self.column(key) for key in keys]
        seen: dict[tuple, np.ndarray] = {}
        for index in range(self.n_rows):
            key = tuple(_python_scalar(array[index]) for array in arrays)
            if key not in seen:
                seen[key] = np.zeros(self.n_rows, dtype=bool)
            seen[key][index] = True
        return [(key, self.mask(mask)) for key, mask in seen.items()]

    # -- column statistics -------------------------------------------------

    def mean(self, name: str) -> float:
        """NaN-ignoring mean of a numeric column."""
        return float(np.nanmean(self.column(name).astype(float)))

    def quantile(self, name: str, q: float) -> float:
        """NaN-ignoring quantile (``q`` in [0, 1]) of a numeric column."""
        return float(np.nanquantile(self.column(name).astype(float), q))

    # -- equality ----------------------------------------------------------

    def equals(self, other: "ResultTable") -> bool:
        """Bit-exact equality: same columns, dtypes kinds, and cell values.

        NaNs compare equal to NaNs in the same position (a warm cache read
        must reproduce a cold run exactly, NaN medians included).
        """
        if self.column_names != other.column_names:
            return False
        for name in self.column_names:
            a, b = self.column(name), other.column(name)
            if len(a) != len(b) or a.dtype.kind != b.dtype.kind:
                return False
            if a.dtype.kind == "f":
                if not np.array_equal(a, b, equal_nan=True):
                    return False
            elif a.dtype.kind == "O":
                if any(not _cell_equal(x, y) for x, y in zip(a, b)):
                    return False
            elif not np.array_equal(a, b):
                return False
        return True

    # -- export ------------------------------------------------------------

    def to_dict(self) -> dict[str, list]:
        """Column name -> list of Python scalars (JSON-safe)."""
        return {
            name: [_python_scalar(v) for v in array]
            for name, array in self._columns.items()
        }

    def to_json(self, **dumps_kwargs: Any) -> str:
        """JSON object of columns; inverse of :meth:`from_json`."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ResultTable":
        return cls(json.loads(text))

    def to_csv(self) -> str:
        """RFC-4180-ish CSV text (header row + one line per row)."""
        buffer = io.StringIO()
        buffer.write(",".join(_csv_cell(name) for name in self._columns) + "\n")
        for row in self.rows():
            buffer.write(
                ",".join(_csv_cell(row[name]) for name in self._columns) + "\n"
            )
        return buffer.getvalue()

    def __repr__(self) -> str:
        return (
            f"ResultTable({self.n_rows} rows x {len(self._columns)} cols: "
            f"{', '.join(self._columns)})"
        )


def _python_scalar(value: Any) -> Scalar:
    """numpy scalar -> Python scalar (None preserved)."""
    if isinstance(value, np.generic):
        return value.item()
    return value


def _equals(array: np.ndarray, value: Scalar) -> np.ndarray:
    if array.dtype.kind == "O":
        return np.asarray([_cell_equal(item, value) for item in array], dtype=bool)
    return array == value


def _cell_equal(a: Scalar, b: Scalar) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    return a == b


def _csv_cell(value: Scalar) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        return repr(value)
    text = str(value)
    if any(ch in text for ch in ',"\n'):
        text = '"' + text.replace('"', '""') + '"'
    return text
