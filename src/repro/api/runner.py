"""Scenario execution: one entrypoint over both engines, serial or parallel.

:func:`run` turns a :class:`~repro.api.scenario.Scenario` into a
:class:`~repro.api.report.RunReport` on either engine; :func:`run_batch`
additionally detects *homogeneous* runs of scenarios (same workload,
differing only in seed/trial index), simulates them trial-parallel through
the registered batch kernels (:mod:`repro.fast.batch`) in chunks, and fans
chunks and leftovers out over worker processes.  Because every scenario's
randomness is a pure function of its ``(seed, trial_index)`` (see
:class:`~repro.sim.rng.RandomSource`) and the batch kernels draw strictly
per trial, batch results are bit-identical for any worker count, chunk
size, and grouping — parallelism and batching are execution details, never
a semantics change.

Backend selection (``backend="auto"``):

1. use the registered fast kernel if it exists and implements every
   feature tag the scenario requests (see
   :func:`repro.api.registry.scenario_features` — fault plans, delay
   models, the noise kinds, non-default criteria and histories are all
   declared feature-granularly per kernel);
2. otherwise fall back to the agent engine, recording the missing feature
   tags in the report's ``extras["agent_fallback"]``;
3. raise :class:`~repro.exceptions.ConfigurationError` if neither engine
   can honor the scenario (an explicit ``backend=`` likewise raises rather
   than silently substituting, naming the unsupported features).
"""

from __future__ import annotations

import itertools
import json
import os
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.api.registry import REGISTRY, AlgorithmRegistry, criterion_factory
from repro.api.report import RunReport
from repro.api.scenario import Scenario
from repro.exceptions import (
    ChunkTimeout,
    ConfigurationError,
    ExecutionError,
    WorkerCrash,
    is_retryable,
)
from repro.fast.arena import maybe_trim
from repro.fast.tiling import resolve_tile_width
from repro.sim.engine import RoundHook
from repro.sim.run import TrialStats, run_trial

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.scheduler import ExecutionPolicy

BACKENDS = ("auto", "agent", "fast")

#: Environment variable choosing the default worker-process count.
WORKERS_ENV = "REPRO_WORKERS"


def default_workers() -> int:
    """Worker processes from ``$REPRO_WORKERS`` (default 1, floor 1).

    The one shared parser for every entry point (experiment runners, the
    ``repro.api`` CLI, :func:`repro.api.run_study`): unparseable or
    non-positive values fall back to serial execution rather than erroring
    — a bad environment variable should never break a reproduction run.
    """
    try:
        return max(1, int(os.environ.get(WORKERS_ENV, "1")))
    except ValueError:
        return 1


def resolve_backend(
    scenario: Scenario,
    backend: str = "auto",
    registry: AlgorithmRegistry = REGISTRY,
) -> str:
    """The concrete backend (``"agent"`` or ``"fast"``) a run will use."""
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown backend {backend!r}; known: {', '.join(BACKENDS)}"
        )
    entry = registry.get(scenario.algorithm)
    if backend == "auto":
        if entry.supports_fast(scenario):
            return "fast"
        if entry.has_agent:
            return "agent"
        raise ConfigurationError(
            f"algorithm {scenario.algorithm!r} has no agent engine and its "
            "fast kernel does not support this scenario's features"
        )
    if backend == "fast":
        if not entry.has_fast:
            raise ConfigurationError(
                f"algorithm {scenario.algorithm!r} has no fast kernel"
            )
        missing = entry.missing_fast_features(scenario)
        if missing:
            raise ConfigurationError(
                f"the fast kernel for {scenario.algorithm!r} does not "
                f"support this scenario's {', '.join(missing)}; use "
                "backend='agent'"
            )
        return "fast"
    if not entry.has_agent:
        raise ConfigurationError(
            f"algorithm {scenario.algorithm!r} has no agent-engine "
            "implementation (it is a standalone reference process)"
        )
    return "agent"


def run(
    scenario: Scenario,
    backend: str = "auto",
    hooks: Sequence[RoundHook] = (),
    registry: AlgorithmRegistry = REGISTRY,
) -> RunReport:
    """Execute one scenario and return its normalized report.

    ``hooks`` (per-round callbacks) exist only on the agent engine; passing
    any forces agent execution under ``backend="auto"``.

    When ``backend="auto"`` falls back to the agent engine even though a
    fast kernel is registered, the report's ``extras["agent_fallback"]``
    names the feature tags (or ``"hooks"``) that forced the fallback — the
    observable answer to "why was this run slow?".
    """
    requested_auto = backend == "auto"
    if hooks and backend == "auto":
        backend = "agent"
    resolved = resolve_backend(scenario, backend, registry)
    if resolved == "fast":
        if hooks:
            raise ConfigurationError("round hooks require backend='agent'")
        entry = registry.get(scenario.algorithm)
        return entry.fast_kernel(scenario, scenario.source())

    entry = registry.get(scenario.algorithm)
    fallback: tuple[str, ...] = ()
    if requested_auto and entry.has_fast:
        fallback = ("hooks",) if hooks else entry.missing_fast_features(scenario)
    factory, default_criterion = entry.agent_builder(scenario)
    if scenario.criterion is not None:
        criterion = criterion_factory(scenario.criterion)
    else:
        criterion = default_criterion
    result = run_trial(
        factory,
        scenario.n,
        scenario.nests,
        seed=scenario.source(),
        max_rounds=scenario.max_rounds,
        criterion_factory=criterion,
        noise=scenario.noise,
        fault_plan=scenario.fault_plan,
        delay_model=scenario.delay_model,
        hooks=hooks,
        keep_history=scenario.record_history,
    )
    extras = {"agent_fallback": list(fallback)} if fallback else None
    return RunReport.from_simulation(scenario, result, extras=extras)


#: Classic default chunk (the ``n = 4096`` operating point of the
#: size-aware policy below); kept as the fallback for degenerate ``n``.
DEFAULT_BATCH_CHUNK = 64

#: Target per-chunk state volume: a chunk holds ``O(chunk * n)`` elements
#: per state plane, so the default chunk is sized to keep one plane around
#: this many elements (~2 MB of float64) — small enough to stay
#: cache-friendly and bound worker memory, large enough to amortize the
#: per-chunk round-loop overhead the arena doesn't absorb.  Results never
#: depend on the choice.
BATCH_CHUNK_TARGET_ELEMS = 262_144

#: Bounds of the size-aware default (an explicit ``batch_chunk`` is never
#: clamped).
MIN_DEFAULT_CHUNK, MAX_DEFAULT_CHUNK = 16, 512

#: Hard per-plane state budget: a chunk's ``(chunk, n)`` state planes are
#: capped at this many elements (32 MB at int32), because — unlike the
#: per-round scratch, which tiling bounds at ``O(chunk * tile)`` — per-ant
#: *state* is irreducibly ``chunk * n``.  At million-ant scale this is the
#: binding term (8 trials/chunk at n = 10^6); past ``n = 2**23`` chunks
#: become single trials rather than blowing the budget.
MAX_STATE_ELEMS = 1 << 23


def default_batch_chunk(n: int) -> int:
    """The default trials-per-chunk for colonies of ``n`` ants.

    Two budgets intersect (docs/PERFORMANCE.md §8): the classic
    ``~BATCH_CHUNK_TARGET_ELEMS`` scratch budget, sized over the *tile*
    width once ant-axis tiling kicks in (so huge-n batches no longer
    collapse toward the ``MIN_DEFAULT_CHUNK`` floor on scratch grounds
    alone), and the :data:`MAX_STATE_ELEMS` cap on the untileable
    ``(chunk, n)`` state planes, which owns the large-n regime and may
    take the chunk below ``MIN_DEFAULT_CHUNK`` — all the way to one trial
    per chunk for gargantuan colonies.  Results never depend on the
    choice (chunking is bit-invisible); only peak memory and overhead do.
    """
    if n < 1:
        return DEFAULT_BATCH_CHUNK
    scratch_width = resolve_tile_width(n) or n
    scratch_term = max(
        MIN_DEFAULT_CHUNK,
        min(MAX_DEFAULT_CHUNK, BATCH_CHUNK_TARGET_ELEMS // scratch_width),
    )
    return max(1, min(scratch_term, MAX_STATE_ELEMS // n))


class WorkerPool:
    """A persistent process pool reused across ``run_batch`` calls.

    ``run_study`` used to fork a fresh :class:`ProcessPoolExecutor` per
    cache-missing cell; at study scale that re-pays worker startup (and
    registry import) hundreds of times.  A :class:`WorkerPool` owns one
    executor, created lazily on the first parallel dispatch and reused
    until :meth:`close` — pass it to :func:`run_batch`/
    :func:`repro.api.run_study` via ``pool=``, or use it as a context
    manager.  Results are bit-identical with and without a pool (pinned
    by the golden-digest and pool-determinism suites).
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._executor: ProcessPoolExecutor | None = None

    def executor(self) -> ProcessPoolExecutor:
        """The lazily-created executor (spawns workers on first use)."""
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    @property
    def started(self) -> bool:
        """Whether worker processes exist yet."""
        return self._executor is not None

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def kill(self) -> None:
        """Forcibly terminate the workers and reap them (idempotent).

        The supervised dispatcher's recovery primitive: after a chunk
        deadline or a ``BrokenProcessPool`` the surviving workers cannot
        be trusted (one may be wedged mid-chunk), so the whole cohort is
        SIGKILLed and *joined* — the join guarantees no worker can create
        a shared-memory segment after the parent starts unlinking the
        failed chunks' segments.  The pool object stays usable: the next
        :meth:`executor` call respawns a fresh cohort.
        """
        executor, self._executor = self._executor, None
        if executor is None:
            return
        processes = list((getattr(executor, "_processes", None) or {}).values())
        for proc in processes:
            try:
                proc.kill()
            except Exception:  # pragma: no cover - already-reaped worker
                pass
        executor.shutdown(wait=False, cancel_futures=True)
        for proc in processes:
            try:
                proc.join(5.0)
            except Exception:  # pragma: no cover - concurrent reap
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

#: One unit of batch work: ``("single", scenario, backend)`` runs one
#: scenario through :func:`run`; ``("batch", [scenarios])`` runs one
#: homogeneous chunk through the algorithm's batch kernel.
_Task = tuple


def _batch_group_key(scenario: Scenario) -> str:
    """Canonical identity of a scenario modulo its randomness.

    Two scenarios share a key iff they differ only in ``seed`` /
    ``trial_index`` — the definition of a homogeneous batch.  The JSON form
    has a fixed key order, so string equality is scenario equality.
    (Zeroing the randomness fields on the dict, not via ``replace()``,
    skips re-running dataclass validation per scenario — this key is
    computed for every element of every batch.)
    """
    data = scenario.to_dict()
    data["seed"] = 0
    data["trial_index"] = None
    return json.dumps(data)


def _run_task(task: _Task) -> list[RunReport]:
    """Top-level task target (must be picklable by multiprocessing)."""
    if task[0] == "single":
        _, scenario, backend = task
        return [run(scenario, backend=backend)]
    _, chunk = task
    entry = REGISTRY.get(chunk[0].algorithm)
    return entry.batch_kernel(chunk)


#: Parent-assigned shared-memory segment names: ``repro<pid>s<seq>``.
#: Deterministic per-process naming (no ``uuid``) lets the parent unlink
#: the in-flight segment of a worker that died mid-chunk — the fix for
#: the "killed worker leaks /dev/shm" hole.
_SEGMENT_SEQ = itertools.count()


def _segment_name() -> str:
    return f"repro{os.getpid()}s{next(_SEGMENT_SEQ)}"


def _run_task_packed(
    task: _Task,
    shm: bool = False,
    shm_name: str | None = None,
    chaos_scope: str | None = None,
    chaos_task: int = 0,
    attempt: int = 0,
) -> object:
    """Worker-side target: batch chunks return packed numpy columns.

    Packing drops the per-report Python object graph from the result pipe
    (the parent rebuilds reports from the scenarios it already holds);
    with ``shm`` the columns of large chunks move through a
    ``multiprocessing.shared_memory`` segment — named ``shm_name`` by the
    parent, so a killed worker's in-flight segment is still unlinkable.
    Singles still return their reports directly — they can carry
    agent-engine payloads the packer doesn't speak.

    This is also the chaos-injection point (:mod:`repro.api.chaos`): it
    only ever runs in worker processes, so an injected SIGKILL exercises
    the supervision path without touching the parent.
    """
    from repro.api import chaos
    from repro.api.transport import maybe_to_shm, pack_reports

    chaos.maybe_inject(chaos_scope, chaos_task, attempt, task[0], "start")
    reports = _run_task(task)
    # Long-lived pool workers honour the $REPRO_ARENA_TRIM_BYTES retention
    # cap between tasks, so one huge-n chunk cannot pin its working set
    # for the rest of the pool's life (no-op when the cap is unset).
    maybe_trim()
    if task[0] != "batch":
        return reports
    packed = pack_reports(reports)
    if shm:
        packed = maybe_to_shm(packed, name=shm_name)
    chaos.maybe_inject(chaos_scope, chaos_task, attempt, task[0], "result")
    return packed


def _resolve_task_result(result: object, task: _Task) -> list[RunReport]:
    """Parent-side inverse of :func:`_run_task_packed`."""
    from repro.api.transport import from_shm, is_shm_descriptor, unpack_reports

    if isinstance(result, list):
        return result
    if is_shm_descriptor(result):
        try:
            result = from_shm(result)
        except FileNotFoundError as exc:
            raise WorkerCrash(
                f"shared-memory segment {result['shm']!r} vanished before "
                "the parent could read it"
            ) from exc
    return unpack_reports(result, task[1])


def _reap_if_broken(executor) -> None:
    """SIGKILL and join a broken executor's workers before shm cleanup.

    When a pool breaks, its futures fail *before* the executor finishes
    terminating sibling workers — one of them may still be inside
    ``maybe_to_shm``, about to create a segment the parent is unlinking.
    Reaping first closes that race.
    """
    if not getattr(executor, "_broken", False):
        return
    processes = list((getattr(executor, "_processes", None) or {}).values())
    for proc in processes:
        try:
            proc.kill()
        except Exception:  # pragma: no cover - already-reaped worker
            pass
    for proc in processes:
        try:
            proc.join(5.0)
        except Exception:  # pragma: no cover - concurrent reap
            pass


def _collect_results(
    executor, tasks: list[_Task], shm: bool, chaos_scope: str | None = None
) -> list[object]:
    """Gather worker results, releasing orphaned shm segments on failure.

    A failing task must leak no shared-memory segment — neither from
    chunks that already completed (their ownership transferred to this
    process the moment the workers returned descriptors) nor from the
    in-flight chunk of a crashed worker (its parent-assigned name is
    unlinked without ever having seen a descriptor).
    """
    from concurrent.futures import wait
    from repro.api.transport import discard_shm, is_shm_descriptor, unlink_segment

    names = [_segment_name() if shm else None for _ in tasks]
    futures = [
        executor.submit(
            _run_task_packed,
            task,
            shm=shm,
            shm_name=names[i],
            chaos_scope=chaos_scope,
            chaos_task=i,
        )
        for i, task in enumerate(tasks)
    ]
    try:
        return [future.result() for future in futures]
    except BaseException:
        for future in futures:
            future.cancel()
        wait(futures)
        _reap_if_broken(executor)
        for i, future in enumerate(futures):
            if future.cancelled() or future.exception() is not None:
                if names[i] is not None:
                    unlink_segment(names[i])
                continue
            result = future.result()
            if is_shm_descriptor(result):
                discard_shm(result)
        raise


def _dispatch_supervised(
    pool: WorkerPool,
    tasks: list[_Task],
    shm: bool,
    policy: "ExecutionPolicy",
    chaos_scope: str | None = None,
) -> list[object]:
    """Run tasks under supervision: deadlines, pool respawn, chunk retry.

    Each round submits every still-pending chunk, then harvests results
    with a per-chunk deadline (``policy.chunk_timeout``).  A blown
    deadline or a dead worker (``BrokenProcessPool``) marks the round's
    unfinished chunks failed with a *retryable* error, SIGKILLs and
    respawns the pool, unlinks the failed chunks' parent-assigned shm
    segments, and — after a deterministic exponential backoff — retries
    them.  Because a chunk is a pure function of its scenarios'
    ``(seed, trial_index)`` streams, a retry reproduces the same bits, so
    recovery is invisible in the results.  A chunk that exhausts
    ``policy.max_retries`` re-raises its last failure; a *non-retryable*
    task exception (a deterministic kernel crash) is fatal immediately —
    retrying a pure function that raised is wasted work.
    """
    from concurrent.futures import BrokenExecutor
    from repro.api.transport import discard_shm, is_shm_descriptor, unlink_segment

    results: list[object] = [None] * len(tasks)
    done = [False] * len(tasks)
    attempts = [0] * len(tasks)
    pending = list(range(len(tasks)))

    def _discard_completed() -> None:
        for i, result in enumerate(results):
            if done[i] and is_shm_descriptor(result):
                discard_shm(result)

    while pending:
        executor = pool.executor()
        names = {i: (_segment_name() if shm else None) for i in pending}
        futures: dict[int, object] = {}
        try:
            for i in pending:
                futures[i] = executor.submit(
                    _run_task_packed,
                    tasks[i],
                    shm=shm,
                    shm_name=names[i],
                    chaos_scope=chaos_scope,
                    chaos_task=i,
                    attempt=attempts[i],
                )
        except BrokenExecutor:
            pass  # handled below: unsubmitted chunks fail this round
        pool_dead = len(futures) < len(pending)
        failures: dict[int, BaseException] = {}
        for i in pending:
            future = futures.get(i)
            if future is None:
                failures[i] = WorkerCrash(
                    f"worker pool broke before chunk {i} could be dispatched"
                )
                continue
            if pool_dead:
                # Salvage chunks that finished cleanly before the pool
                # died; everything else in this round is retried.
                if (
                    future.done()
                    and not future.cancelled()
                    and future.exception() is None
                ):
                    results[i] = future.result()
                    done[i] = True
                else:
                    future.cancel()
                    failures[i] = WorkerCrash(
                        f"chunk {i} lost when the worker pool died "
                        f"(attempt {attempts[i]})"
                    )
                continue
            try:
                results[i] = future.result(timeout=policy.chunk_timeout)
                done[i] = True
            except TimeoutError:
                failures[i] = ChunkTimeout(
                    f"chunk {i} exceeded its {policy.chunk_timeout}s "
                    f"deadline (attempt {attempts[i]})",
                    timeout=policy.chunk_timeout,
                )
                pool_dead = True
            except BrokenExecutor as exc:
                failures[i] = WorkerCrash(
                    f"worker died running chunk {i} "
                    f"(attempt {attempts[i]}): {exc!r}"
                )
                pool_dead = True
            except ExecutionError as exc:
                if is_retryable(exc):
                    failures[i] = exc
                else:
                    pool.kill()
                    _discard_completed()
                    for name in names.values():
                        if name is not None:
                            unlink_segment(name)
                    raise
            except BaseException:
                pool.kill()
                _discard_completed()
                for name in names.values():
                    if name is not None:
                        unlink_segment(name)
                raise
        if pool_dead:
            # Kill *before* unlinking: a surviving worker mid-chunk must
            # not create its segment after the parent unlinks the name.
            pool.kill()
        for i in failures:
            if names[i] is not None:
                unlink_segment(names[i])
        pending = []
        for i, exc in failures.items():
            attempts[i] += 1
            if attempts[i] > policy.max_retries:
                _discard_completed()
                raise exc
            pending.append(i)
        if pending:
            delay = policy.backoff_delay(max(attempts[i] for i in pending))
            if delay > 0:
                policy.sleep(delay)
    return results


#: Result transports for worker processes.  ``pickle`` is always correct;
#: ``shm`` routes large packed chunks through shared memory.
TRANSPORTS = ("pickle", "shm")

#: Environment variable opting into the shared-memory transport by default.
SHM_TRANSPORT_ENV = "REPRO_SHM_TRANSPORT"


def _resolve_transport(transport: str | None) -> str:
    if transport is None:
        transport = (
            "shm" if os.environ.get(SHM_TRANSPORT_ENV) == "1" else "pickle"
        )
    if transport not in TRANSPORTS:
        raise ConfigurationError(
            f"unknown transport {transport!r}; known: {', '.join(TRANSPORTS)}"
        )
    return transport


def run_batch(
    scenarios: Iterable[Scenario],
    workers: int = 1,
    backend: str = "auto",
    batch_chunk: int | None = None,
    pool: "WorkerPool | None" = None,
    transport: str | None = None,
    policy: "ExecutionPolicy | None" = None,
    chaos_scope: str | None = None,
) -> list[RunReport]:
    """Run many scenarios; reports come back in input order.

    Homogeneous runs of scenarios — same algorithm and workload, differing
    only in ``seed``/``trial_index`` — are detected and dispatched to the
    algorithm's trial-parallel batch kernel in chunks (when the registry
    entry has one, the resolved backend is ``fast`` and the scenario uses
    the default v2 matcher schedule); everything else runs
    scenario-by-scenario as before.  ``workers > 1`` fans the chunks and
    the leftover singles out over a process pool; pass a
    :class:`WorkerPool` via ``pool=`` to reuse worker processes across
    calls (``pool`` takes precedence over ``workers``).  ``batch_chunk``
    defaults to the size-aware :func:`default_batch_chunk` policy per
    group.  ``transport`` selects how workers ship results back
    (:data:`TRANSPORTS`; ``None`` reads ``$REPRO_SHM_TRANSPORT``).

    A :class:`~repro.api.scheduler.ExecutionPolicy` via ``policy=`` turns
    on *supervised* parallel dispatch: per-chunk deadlines, automatic pool
    respawn after a worker death, and deterministic chunk retry with
    exponential backoff (see :func:`_dispatch_supervised`).
    ``chaos_scope`` labels this call for the deterministic fault-injection
    harness (:mod:`repro.api.chaos`); it has no effect unless a
    ``$REPRO_CHAOS`` plan targets it.

    Each trial derives its randomness from its own ``(seed, trial_index)``
    and the batch kernels consume those streams per trial, so the reports
    are **bit-identical for every** ``workers``, ``batch_chunk``, ``pool``,
    ``transport`` and ``policy`` value — supervised recovery included —
    and identical to running each scenario alone —
    :mod:`tests.test_batch_engine`, the golden-digest suite and
    :mod:`tests.test_chaos` pin this down.
    """
    batch = list(scenarios)
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if batch_chunk is not None and batch_chunk < 1:
        raise ConfigurationError(f"batch_chunk must be >= 1, got {batch_chunk}")
    # Validate eagerly so configuration errors surface identically whether
    # or not the dispatch ends up parallel.
    shm = _resolve_transport(transport) == "shm"
    # Resolve backends up front so configuration errors surface immediately
    # (and identically) regardless of worker count.
    payloads = [(s, resolve_backend(s, backend)) for s in batch]

    # Partition into batchable groups (keyed by everything but randomness)
    # and leftover singles, remembering every scenario's input position.
    groups: dict[str, list[int]] = {}
    tasks: list[_Task] = []
    task_indices: list[list[int]] = []
    for index, (scenario, resolved) in enumerate(payloads):
        entry = REGISTRY.get(scenario.algorithm)
        if resolved == "fast" and entry.supports_batch(scenario):
            groups.setdefault(_batch_group_key(scenario), []).append(index)
        else:
            # Singles re-run under the *requested* backend (already resolved
            # above, so no new errors can surface): an "auto" request that
            # fell back to the agent engine then records its fallback
            # reason on the report, exactly as a lone run() call would.
            tasks.append(("single", scenario, backend))
            task_indices.append([index])
    for indices in groups.values():
        chunk_size = (
            batch_chunk
            if batch_chunk is not None
            else default_batch_chunk(batch[indices[0]].n)
        )
        for start in range(0, len(indices), chunk_size):
            chunk_indices = indices[start : start + chunk_size]
            tasks.append(("batch", [batch[i] for i in chunk_indices]))
            task_indices.append(chunk_indices)

    effective_workers = pool.workers if pool is not None else workers
    supervised = policy is not None and policy.supervise
    if effective_workers == 1 or len(tasks) <= 1:
        task_reports = [_run_task(task) for task in tasks]
    else:
        if supervised:
            if pool is not None:
                results = _dispatch_supervised(
                    pool, tasks, shm, policy, chaos_scope
                )
            else:
                with WorkerPool(
                    min(effective_workers, len(tasks))
                ) as transient:
                    results = _dispatch_supervised(
                        transient, tasks, shm, policy, chaos_scope
                    )
        elif pool is not None:
            results = _collect_results(
                pool.executor(), tasks, shm, chaos_scope
            )
        else:
            with ProcessPoolExecutor(
                max_workers=min(effective_workers, len(tasks))
            ) as executor:
                results = _collect_results(executor, tasks, shm, chaos_scope)
        task_reports = [
            _resolve_task_result(result, task)
            for result, task in zip(results, tasks)
        ]

    reports: list[RunReport | None] = [None] * len(batch)
    for indices, chunk_reports in zip(task_indices, task_reports):
        for index, report in zip(indices, chunk_reports):
            reports[index] = report
    return reports  # type: ignore[return-value]


def aggregate(reports: Iterable[RunReport]) -> TrialStats:
    """Fold reports into the classic :class:`~repro.sim.run.TrialStats`.

    A trial counts as converged only when it :attr:`~RunReport.solved` —
    settled unanimously on a *good* nest — matching the (fixed) semantics
    of :func:`repro.sim.run.run_trials`.
    """
    materialized = list(reports)
    rounds = [r.converged_round for r in materialized if r.solved]
    chosen = Counter(
        r.chosen_nest for r in materialized if r.chosen_nest is not None
    )
    return TrialStats(
        n_trials=len(materialized),
        n_converged=len(rounds),
        rounds=np.asarray(rounds, dtype=np.int64),
        censored_at=max((r.max_rounds for r in materialized), default=0),
        chosen_nests=dict(chosen),
    )


def run_stats(
    scenario: Scenario,
    n_trials: int,
    workers: int = 1,
    backend: str = "auto",
    batch_chunk: int | None = None,
) -> TrialStats:
    """Run ``n_trials`` independent trials of a scenario and aggregate.

    The drop-in Scenario-API replacement for
    :func:`repro.sim.run.run_trials`: trial ``t`` uses
    ``RandomSource(scenario.seed).trial(t)``, exactly as before.  Trial
    batches are the canonical homogeneous workload, so this rides the
    trial-parallel fast engine whenever the algorithm has a batch kernel.
    """
    if n_trials < 1:
        raise ConfigurationError(f"n_trials must be >= 1, got {n_trials}")
    return aggregate(
        run_batch(scenario.trials(n_trials), workers, backend, batch_chunk)
    )
