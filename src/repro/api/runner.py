"""Scenario execution: one entrypoint over both engines, serial or parallel.

:func:`run` turns a :class:`~repro.api.scenario.Scenario` into a
:class:`~repro.api.report.RunReport` on either engine; :func:`run_batch`
fans a list of scenarios out over worker processes.  Because every
scenario's randomness is a pure function of its ``(seed, trial_index)``
(see :class:`~repro.sim.rng.RandomSource`), batch results are bit-identical
for any worker count — parallelism is an execution detail, never a
semantics change.

Backend selection (``backend="auto"``):

1. use the registered fast kernel if it exists and supports every feature
   the scenario requests (fault plans, delay models, non-Gaussian noise and
   custom criteria are agent-engine-only);
2. otherwise fall back to the agent engine;
3. raise :class:`~repro.exceptions.ConfigurationError` if neither engine
   can honor the scenario (an explicit ``backend=`` likewise raises rather
   than silently substituting).
"""

from __future__ import annotations

from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Sequence

import numpy as np

from repro.api.registry import REGISTRY, AlgorithmRegistry, criterion_factory
from repro.api.report import RunReport
from repro.api.scenario import Scenario
from repro.exceptions import ConfigurationError
from repro.sim.engine import RoundHook
from repro.sim.run import TrialStats, run_trial

BACKENDS = ("auto", "agent", "fast")


def resolve_backend(
    scenario: Scenario,
    backend: str = "auto",
    registry: AlgorithmRegistry = REGISTRY,
) -> str:
    """The concrete backend (``"agent"`` or ``"fast"``) a run will use."""
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown backend {backend!r}; known: {', '.join(BACKENDS)}"
        )
    entry = registry.get(scenario.algorithm)
    if backend == "auto":
        if entry.supports_fast(scenario):
            return "fast"
        if entry.has_agent:
            return "agent"
        raise ConfigurationError(
            f"algorithm {scenario.algorithm!r} has no agent engine and its "
            "fast kernel does not support this scenario's features"
        )
    if backend == "fast":
        if not entry.has_fast:
            raise ConfigurationError(
                f"algorithm {scenario.algorithm!r} has no fast kernel"
            )
        if not entry.supports_fast(scenario):
            raise ConfigurationError(
                f"the fast kernel for {scenario.algorithm!r} does not support "
                "this scenario (fault plans, delay models, quality-flip or "
                "encounter noise, and custom criteria need backend='agent')"
            )
        return "fast"
    if not entry.has_agent:
        raise ConfigurationError(
            f"algorithm {scenario.algorithm!r} has no agent-engine "
            "implementation (it is a standalone reference process)"
        )
    return "agent"


def run(
    scenario: Scenario,
    backend: str = "auto",
    hooks: Sequence[RoundHook] = (),
    registry: AlgorithmRegistry = REGISTRY,
) -> RunReport:
    """Execute one scenario and return its normalized report.

    ``hooks`` (per-round callbacks) exist only on the agent engine; passing
    any forces agent execution under ``backend="auto"``.
    """
    if hooks and backend == "auto":
        backend = "agent"
    resolved = resolve_backend(scenario, backend, registry)
    if resolved == "fast":
        if hooks:
            raise ConfigurationError("round hooks require backend='agent'")
        entry = registry.get(scenario.algorithm)
        return entry.fast_kernel(scenario, scenario.source())

    entry = registry.get(scenario.algorithm)
    factory, default_criterion = entry.agent_builder(scenario)
    if scenario.criterion is not None:
        criterion = criterion_factory(scenario.criterion)
    else:
        criterion = default_criterion
    result = run_trial(
        factory,
        scenario.n,
        scenario.nests,
        seed=scenario.source(),
        max_rounds=scenario.max_rounds,
        criterion_factory=criterion,
        noise=scenario.noise,
        fault_plan=scenario.fault_plan,
        delay_model=scenario.delay_model,
        hooks=hooks,
        keep_history=scenario.record_history,
    )
    return RunReport.from_simulation(scenario, result)


def _run_for_pool(payload: tuple[Scenario, str]) -> RunReport:
    """Top-level worker target (must be picklable by multiprocessing)."""
    scenario, backend = payload
    return run(scenario, backend=backend)


def run_batch(
    scenarios: Iterable[Scenario],
    workers: int = 1,
    backend: str = "auto",
) -> list[RunReport]:
    """Run many scenarios; reports come back in input order.

    ``workers > 1`` fans the batch out over a process pool.  Each scenario
    derives its randomness from its own ``(seed, trial_index)``, so the
    per-scenario reports are identical for every ``workers`` value — a
    property :mod:`tests.test_api` pins down.
    """
    batch = list(scenarios)
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    # Resolve backends up front so configuration errors surface immediately
    # (and identically) regardless of worker count.
    payloads = [(s, resolve_backend(s, backend)) for s in batch]
    if workers == 1 or len(batch) <= 1:
        return [run(s, backend=resolved) for s, resolved in payloads]
    with ProcessPoolExecutor(max_workers=min(workers, len(batch))) as pool:
        chunksize = max(1, len(batch) // (4 * workers))
        return list(pool.map(_run_for_pool, payloads, chunksize=chunksize))


def aggregate(reports: Iterable[RunReport]) -> TrialStats:
    """Fold reports into the classic :class:`~repro.sim.run.TrialStats`.

    A trial counts as converged only when it :attr:`~RunReport.solved` —
    settled unanimously on a *good* nest — matching the (fixed) semantics
    of :func:`repro.sim.run.run_trials`.
    """
    materialized = list(reports)
    rounds = [r.converged_round for r in materialized if r.solved]
    chosen = Counter(
        r.chosen_nest for r in materialized if r.chosen_nest is not None
    )
    return TrialStats(
        n_trials=len(materialized),
        n_converged=len(rounds),
        rounds=np.asarray(rounds, dtype=np.int64),
        censored_at=max((r.max_rounds for r in materialized), default=0),
        chosen_nests=dict(chosen),
    )


def run_stats(
    scenario: Scenario,
    n_trials: int,
    workers: int = 1,
    backend: str = "auto",
) -> TrialStats:
    """Run ``n_trials`` independent trials of a scenario and aggregate.

    The drop-in Scenario-API replacement for
    :func:`repro.sim.run.run_trials`: trial ``t`` uses
    ``RandomSource(scenario.seed).trial(t)``, exactly as before.
    """
    if n_trials < 1:
        raise ConfigurationError(f"n_trials must be >= 1, got {n_trials}")
    return aggregate(run_batch(scenario.trials(n_trials), workers, backend))
