"""Measurement processes: paper lemmas as registered one-shot algorithms.

Two of the paper's quantitative claims are not house-hunts but *sampling
experiments* over model primitives:

- **Lemma 2.1** (experiment E2): the probability that a tagged active
  recruiter recruits another ant in one Algorithm 1 pairing round;
- **Lemma 5.4** (experiment E5): the relative population gap of a fixed
  nest pair after the uniform round-1 search split (a multinomial draw).

Registering them as fast-only algorithms lets the Sweep/Study layer treat
them exactly like every other workload: one trial = one draw, reports flow
through :func:`repro.api.run_batch`, cells cache by content address, and
``success`` has the natural reading (the tagged ant succeeded; sampling
always "converges").  Per-sample detail that :class:`TrialStats` cannot
carry (the E5 gap value) rides in ``RunReport.extras`` for the study's
metric functions.

The batch kernels deliberately loop per trial rather than drawing one
vectorized sample block: every trial must consume its own
``RandomSource(seed).trial(t)`` stream so that batch execution is
bit-identical to running each trial alone (the run_batch contract) and
cached cells stay valid under any regrouping.  The cost is the per-trial
``SeedSequence`` spawn — ~70µs/trial, a second or two per full-profile E5
cell — paid once per cell and then served from the result cache.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.api.report import RunReport
from repro.api.scenario import Scenario
from repro.exceptions import ConfigurationError
from repro.model.recruitment import match_arrays
from repro.sim.rng import RandomSource


def _report(
    scenario: Scenario,
    converged: bool,
    chosen_nest: int | None,
    final_counts: np.ndarray | None,
    extras: dict,
) -> RunReport:
    return RunReport(
        algorithm=scenario.algorithm,
        backend="fast",
        n=scenario.n,
        k=scenario.nests.k,
        seed=scenario.seed,
        trial_index=scenario.trial_index,
        max_rounds=scenario.max_rounds,
        converged=converged,
        converged_round=1 if converged else None,
        rounds_executed=1,
        chosen_nest=chosen_nest,
        chose_good_nest=(
            chosen_nest is not None and scenario.nests.is_good(chosen_nest)
        ),
        final_counts=final_counts,
        population_history=None,
        extras=extras,
    )


# -- Lemma 2.1: tagged-recruiter success (one pairing round) -----------------


def tagged_recruitment_trial(
    m: int, active_fraction: float, rng: np.random.Generator
) -> bool:
    """One pairing round among ``m`` home-nest ants; did slot 0 succeed?

    The tagged ant is slot 0 and always recruits actively; of the remaining
    ``m - 1`` slots, ``round(active_fraction * (m - 1))`` also recruit.
    Lemma 2.1 counts "recruiting *another* ant", so the model's forced
    self-pairing is **not** a success.
    """
    if m < 1:
        raise ConfigurationError(f"need at least one home ant, got {m}")
    active = np.zeros(m, dtype=bool)
    active[0] = True
    n_other_active = int(round(active_fraction * (m - 1)))
    if n_other_active:
        active[1 : 1 + n_other_active] = True
    targets = np.arange(m, dtype=np.int64)
    _, recruiter_of, is_recruiter = match_arrays(active, targets, rng)
    return bool(is_recruiter[0] and recruiter_of[0] != 0)


def _tagged_params(scenario: Scenario) -> float:
    unknown = set(scenario.params) - {"active_fraction"}
    if unknown:
        raise ConfigurationError(
            f"tagged_recruitment does not accept params {sorted(unknown)}"
        )
    return float(scenario.params.get("active_fraction", 1.0))


def _tagged_fast(scenario: Scenario, source: RandomSource) -> RunReport:
    fraction = _tagged_params(scenario)
    success = tagged_recruitment_trial(scenario.n, fraction, source.matcher)
    return _report(
        scenario,
        converged=success,
        chosen_nest=1 if success else None,
        final_counts=None,
        extras={"process": "tagged_recruitment"},
    )


def _tagged_batch(scenarios: Sequence[Scenario]) -> list[RunReport]:
    return [_tagged_fast(s, s.source()) for s in scenarios]


# -- Lemma 5.4: the uniform round-1 search split -----------------------------


def _split_fast(scenario: Scenario, source: RandomSource) -> RunReport:
    if scenario.params:
        raise ConfigurationError(
            f"initial_split does not accept params {sorted(scenario.params)}"
        )
    k = scenario.nests.k
    if k < 2:
        raise ConfigurationError("initial_split needs at least two nests")
    counts = source.environment.multinomial(scenario.n, np.full(k, 1.0 / k))
    first = float(counts[0])
    second = float(counts[1])
    high, low = max(first, second), min(first, second)
    extras = {
        "process": "initial_split",
        "tie": bool(high == low),
        "empty_pair_nest": bool(low == 0),
        "gap": None if low == 0 else high / low - 1.0,
    }
    winner = int(np.argmax(counts)) + 1
    final_counts = np.concatenate([[0], counts]).astype(np.int64)
    return _report(
        scenario,
        converged=True,
        chosen_nest=winner,
        final_counts=final_counts,
        extras=extras,
    )


def _split_batch(scenarios: Sequence[Scenario]) -> list[RunReport]:
    return [_split_fast(s, s.source()) for s in scenarios]


def register_measurement_processes(registry) -> None:
    """Register both processes on ``registry`` (idempotent via caller)."""
    registry.register(
        "tagged_recruitment",
        "Lemma 2.1 sampler: one Algorithm 1 round, tagged-recruiter success",
        fast_kernel=_tagged_fast,
        batch_kernel=_tagged_batch,
        params=("active_fraction",),
    )
    registry.register(
        "initial_split",
        "Lemma 5.4 sampler: uniform round-1 multinomial nest split",
        fast_kernel=_split_fast,
        batch_kernel=_split_batch,
    )
