"""Worker-to-parent result transport: packed columns and shared memory.

A batch chunk's reports used to travel back from worker processes as a
pickled ``list[RunReport]`` — one Python object graph per trial, with the
scenario identity fields duplicated into every report even though the
parent already holds the chunk's scenarios.  This module packs a chunk
into a handful of numpy columns (:func:`pack_reports`) that pickle as
flat buffers, and reconstructs bit-identical reports on the parent side
(:func:`unpack_reports`) from the columns plus the scenarios it already
has.

For large payloads an opt-in ``multiprocessing.shared_memory`` transport
(:func:`maybe_to_shm` / :func:`from_shm`) moves the packed arrays through
a named segment instead of the result pipe: the worker copies the columns
into the segment and unregisters it from its resource tracker, the parent
copies them out and unlinks.  Enable it with
``run_batch(..., transport="shm")`` or ``$REPRO_SHM_TRANSPORT=1``; the
pickle fallback is always correct, the segment is an optimization for
batches whose columns exceed :data:`SHM_MIN_BYTES` (histories, very wide
``final_counts`` matrices).

Everything here is invisible to the bits: ``unpack_reports(pack_reports(
reports), scenarios)`` reproduces every field exactly, pinned by the
golden-digest suite running across the pool boundary.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.api.report import RunReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.scenario import Scenario

#: Sentinel for ``None`` in the integer columns.
_NONE = -1

#: Payloads smaller than this travel as ordinary pickles — a shared-memory
#: segment (two syscalls + two copies) only pays for itself on big columns.
SHM_MIN_BYTES = 1 << 20

#: The keys of :func:`pack_reports` output holding numpy arrays.
_ARRAY_KEYS = (
    "converged",
    "converged_round",
    "rounds_executed",
    "chosen_nest",
    "chose_good_nest",
    "final_counts",
    "history_rows",
    "history_splits",
)


def pack_reports(reports: Sequence[RunReport]) -> dict[str, Any]:
    """Pack one homogeneous chunk's reports into columnar form.

    Scenario identity fields are dropped (the parent reconstructs them
    from the scenarios it dispatched); arrays are stacked; ``extras``
    dicts ride along as-is (for batch kernels they are tiny — the matcher
    tag, or the spread process's informed history).
    """
    n = len(reports)
    converged = np.fromiter(
        (r.converged for r in reports), dtype=np.bool_, count=n
    )
    converged_round = np.fromiter(
        (
            _NONE if r.converged_round is None else r.converged_round
            for r in reports
        ),
        dtype=np.int64,
        count=n,
    )
    rounds_executed = np.fromiter(
        (r.rounds_executed for r in reports), dtype=np.int64, count=n
    )
    chosen_nest = np.fromiter(
        (_NONE if r.chosen_nest is None else r.chosen_nest for r in reports),
        dtype=np.int64,
        count=n,
    )
    chose_good = np.fromiter(
        (r.chose_good_nest for r in reports), dtype=np.bool_, count=n
    )
    if all(r.final_counts is not None for r in reports):
        final_counts = np.stack(
            [np.asarray(r.final_counts, dtype=np.int64) for r in reports]
        )
    else:
        # Per-chunk algorithms either all report counts or none do.
        final_counts = None
    history_rows = history_splits = None
    if any(r.population_history is not None for r in reports):
        parts = [
            np.asarray(r.population_history, dtype=np.int64)
            for r in reports
        ]
        history_rows = np.concatenate(parts, axis=0)
        history_splits = np.cumsum(
            np.asarray([p.shape[0] for p in parts], dtype=np.int64)
        )[:-1]
    return {
        "n": n,
        "converged": converged,
        "converged_round": converged_round,
        "rounds_executed": rounds_executed,
        "chosen_nest": chosen_nest,
        "chose_good_nest": chose_good,
        "final_counts": final_counts,
        "history_rows": history_rows,
        "history_splits": history_splits,
        "extras": [dict(r.extras) for r in reports],
    }


def unpack_reports(
    packed: dict[str, Any], scenarios: Sequence["Scenario"]
) -> list[RunReport]:
    """Rebuild the chunk's reports, bit-identical to the direct path."""
    n = packed["n"]
    if n != len(scenarios):
        raise ValueError(
            f"packed chunk carries {n} reports for {len(scenarios)} scenarios"
        )
    histories: list[np.ndarray | None] = [None] * n
    if packed["history_rows"] is not None:
        histories = list(
            np.split(packed["history_rows"], packed["history_splits"])
        )
    final_counts = packed["final_counts"]
    reports = []
    for i, scenario in enumerate(scenarios):
        converged_round = int(packed["converged_round"][i])
        chosen = int(packed["chosen_nest"][i])
        reports.append(
            RunReport(
                algorithm=scenario.algorithm,
                backend="fast",
                n=scenario.n,
                k=scenario.nests.k,
                seed=scenario.seed,
                trial_index=scenario.trial_index,
                max_rounds=scenario.max_rounds,
                converged=bool(packed["converged"][i]),
                converged_round=(
                    None if converged_round == _NONE else converged_round
                ),
                rounds_executed=int(packed["rounds_executed"][i]),
                chosen_nest=None if chosen == _NONE else chosen,
                chose_good_nest=bool(packed["chose_good_nest"][i]),
                final_counts=(
                    None if final_counts is None else final_counts[i]
                ),
                population_history=histories[i],
                extras=packed["extras"][i],
            )
        )
    return reports


def packed_nbytes(packed: dict[str, Any]) -> int:
    """Total array bytes in a packed chunk (the shm sizing decision)."""
    return sum(
        packed[key].nbytes
        for key in _ARRAY_KEYS
        if packed.get(key) is not None
    )


def maybe_to_shm(
    packed: dict[str, Any],
    min_bytes: int | None = None,
    name: str | None = None,
) -> dict[str, Any]:
    """Move the packed arrays into a shared-memory segment if large enough.

    Returns either ``packed`` unchanged (small payloads) or a descriptor
    ``{"shm": name, "fields": ..., "rest": ...}``.  The segment is created
    here (in the worker) and unregistered from this process's resource
    tracker — ownership transfers to the parent, which unlinks it in
    :func:`from_shm`.

    When ``name`` is given the segment is created under that exact name.
    The supervised dispatcher assigns one per chunk *before* submitting,
    so the parent can unlink the in-flight segment of a worker that died
    mid-chunk — a randomly named segment from a killed worker would be
    unfindable and leak in ``/dev/shm``.  A stale same-named segment (a
    prior attempt killed between create and result delivery, then cleaned
    concurrently) is unlinked and the create retried once.
    """
    from multiprocessing import resource_tracker, shared_memory

    threshold = SHM_MIN_BYTES if min_bytes is None else min_bytes
    total = packed_nbytes(packed)
    if total < threshold:
        return packed
    if name is None:
        segment = shared_memory.SharedMemory(create=True, size=max(1, total))
    else:
        try:
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=max(1, total)
            )
        except FileExistsError:
            unlink_segment(name)
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=max(1, total)
            )
    fields = []
    offset = 0
    for key in _ARRAY_KEYS:
        array = packed.get(key)
        if array is None:
            continue
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf, offset=offset)
        view[...] = array
        fields.append((key, array.dtype.str, array.shape, offset))
        offset += array.nbytes
    rest = {
        key: value
        for key, value in packed.items()
        if key not in _ARRAY_KEYS
    }
    name = segment.name
    segment.close()
    # Hand ownership to the parent: without this, the worker's resource
    # tracker would unlink the segment a second time at exit and warn.
    try:  # pragma: no cover - tracker registration is platform-dependent
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:
        pass
    return {"shm": name, "fields": fields, "rest": rest}


def from_shm(descriptor: dict[str, Any]) -> dict[str, Any]:
    """Rehydrate a packed chunk from its shared-memory descriptor.

    The arrays are copied out so the segment can be closed and unlinked
    immediately — no lifetime coupling between reports and the segment.
    """
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=descriptor["shm"])
    try:
        packed = dict(descriptor["rest"])
        for key, dtype_str, shape, offset in descriptor["fields"]:
            view = np.ndarray(
                shape, dtype=np.dtype(dtype_str), buffer=segment.buf, offset=offset
            )
            packed[key] = view.copy()
        for key in _ARRAY_KEYS:
            packed.setdefault(key, None)
    finally:
        segment.close()
        segment.unlink()
    return packed


def is_shm_descriptor(obj: Any) -> bool:
    """Whether a worker result is a shared-memory descriptor."""
    return isinstance(obj, dict) and "shm" in obj


def unlink_segment(name: str) -> None:
    """Unlink a named segment if it exists (idempotent error cleanup).

    The parent calls this for every segment name it assigned to a failed
    or abandoned chunk — whether the worker got as far as creating it or
    not — so a kill at any point in the chunk's life cannot leak shm.
    """
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:  # never materialized or already consumed
        return
    segment.close()
    segment.unlink()


def discard_shm(descriptor: dict[str, Any]) -> None:
    """Unlink a descriptor's segment without reading it (error cleanup).

    Ownership transferred to the parent in :func:`maybe_to_shm`; when a
    sibling task fails before the parent consumes this result, the
    segment must still be released or it outlives the process.
    """
    unlink_segment(descriptor["shm"])
