"""The algorithm registry: one name, up to two engines.

Each :class:`AlgorithmEntry` binds a registry name to

- an **agent builder**: ``(scenario) -> (AntFactory, default CriterionFactory
  or None)`` — how to assemble a colony for the reference engine, and
- a **fast kernel**: ``(scenario, source) -> RunReport`` — the vectorized
  implementation, when one exists, plus a ``fast_supports`` predicate
  declaring which scenario features the kernel can honor (fault plans and
  delay models, for example, exist only on the agent engine).

:func:`repro.api.run` consults the entry to dispatch; ``backend="auto"``
prefers the fast kernel whenever it supports the scenario and falls back to
the agent engine otherwise.  New protocol variants register in one line —
see :mod:`repro.api.algorithms` for the built-in population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.exceptions import ConfigurationError
from repro.sim.convergence import (
    CommittedToSingleGoodNest,
    ConvergenceCriterion,
    UnanimousCommitment,
)
from repro.sim.rng import RandomSource
from repro.sim.run import AntFactory, CriterionFactory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.report import RunReport
    from repro.api.scenario import Scenario

#: Criterion name -> factory, the runtime side of
#: :data:`repro.api.scenario.CRITERION_NAMES`.
CRITERIA: dict[str, CriterionFactory] = {
    "good": CommittedToSingleGoodNest,
    "good_settled": lambda: CommittedToSingleGoodNest(require_settled=True),
    "good_healthy": lambda: CommittedToSingleGoodNest(exclude_faulty=True),
    "unanimous": UnanimousCommitment,
}


def criterion_factory(name: str) -> CriterionFactory:
    """The factory for a registered criterion name."""
    try:
        return CRITERIA[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown criterion {name!r}; known: {', '.join(sorted(CRITERIA))}"
        ) from None


#: Builds the agent-engine ingredients for a scenario.
AgentBuilder = Callable[
    ["Scenario"], tuple[AntFactory, "CriterionFactory | None"]
]
#: Runs the vectorized implementation of a scenario.
FastKernel = Callable[["Scenario", RandomSource], "RunReport"]
#: Decides whether the fast kernel can honor every feature of a scenario.
FastSupport = Callable[["Scenario"], bool]
#: Runs one homogeneous chunk of scenarios trial-parallel (the batched fast
#: engine); must return one report per scenario, in order, bit-identical to
#: running each scenario alone through the v2 fast kernel.
BatchKernel = Callable[[Sequence["Scenario"]], "list[RunReport]"]

#: The matcher schedule the fast engine uses unless a scenario pins one via
#: ``params={"matcher": ...}``.  "v2" is the batched, data-independent
#: schedule; "v1" is the sequential-scan reference kept for regression
#: comparison (see docs/PERFORMANCE.md).
DEFAULT_MATCHER = "v2"
MATCHER_NAMES = ("v1", "v2")


def scenario_matcher(scenario: "Scenario") -> str:
    """The matcher schedule a scenario requests (validated)."""
    matcher = scenario.params.get("matcher", DEFAULT_MATCHER)
    if matcher not in MATCHER_NAMES:
        raise ConfigurationError(
            f"unknown matcher {matcher!r}; known: {', '.join(MATCHER_NAMES)}"
        )
    return matcher


@dataclass(frozen=True)
class AlgorithmEntry:
    """One registered algorithm: metadata plus per-engine adapters."""

    name: str
    summary: str
    agent_builder: AgentBuilder | None = None
    fast_kernel: FastKernel | None = None
    fast_supports: FastSupport | None = None
    batch_kernel: BatchKernel | None = None

    def __post_init__(self) -> None:
        if self.agent_builder is None and self.fast_kernel is None:
            raise ConfigurationError(
                f"algorithm {self.name!r} registers neither engine"
            )

    @property
    def has_agent(self) -> bool:
        """Whether an agent-engine implementation is registered."""
        return self.agent_builder is not None

    @property
    def has_fast(self) -> bool:
        """Whether a vectorized kernel is registered."""
        return self.fast_kernel is not None

    @property
    def backends(self) -> tuple[str, ...]:
        """The backends this entry can serve, fast first."""
        names: list[str] = []
        if self.has_fast:
            names.append("fast")
        if self.has_agent:
            names.append("agent")
        return tuple(names)

    def supports_fast(self, scenario: "Scenario") -> bool:
        """Whether the fast kernel exists *and* covers this scenario."""
        if self.fast_kernel is None:
            return False
        if self.fast_supports is None:
            return True
        return self.fast_supports(scenario)

    @property
    def has_batch(self) -> bool:
        """Whether a trial-parallel batch kernel is registered."""
        return self.batch_kernel is not None

    def supports_batch(self, scenario: "Scenario") -> bool:
        """Whether the batch kernel exists and covers this scenario.

        Batch execution requires the v2 matcher schedule — scenarios that
        pin ``matcher="v1"`` run trial-by-trial through the sequential fast
        kernel instead.
        """
        if self.batch_kernel is None:
            return False
        if not self.supports_fast(scenario):
            return False
        return scenario_matcher(scenario) == DEFAULT_MATCHER


class AlgorithmRegistry:
    """Name -> :class:`AlgorithmEntry` mapping with registration helpers."""

    def __init__(self) -> None:
        self._entries: dict[str, AlgorithmEntry] = {}

    def register(
        self,
        name: str,
        summary: str,
        agent_builder: AgentBuilder | None = None,
        fast_kernel: FastKernel | None = None,
        fast_supports: FastSupport | None = None,
        batch_kernel: BatchKernel | None = None,
        replace: bool = False,
    ) -> AlgorithmEntry:
        """Register an algorithm; returns the stored entry."""
        if name in self._entries and not replace:
            raise ConfigurationError(f"algorithm {name!r} already registered")
        entry = AlgorithmEntry(
            name=name,
            summary=summary,
            agent_builder=agent_builder,
            fast_kernel=fast_kernel,
            fast_supports=fast_supports,
            batch_kernel=batch_kernel,
        )
        self._entries[name] = entry
        return entry

    def get(self, name: str) -> AlgorithmEntry:
        """Look up an entry; raise with the known names on a miss."""
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown algorithm {name!r}; known: {', '.join(self.names())}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """All registered names, in registration order."""
        return tuple(self._entries)

    def describe(self) -> list[tuple[str, str, str]]:
        """(name, backends, summary) rows for listings and the CLI."""
        return [
            (entry.name, "+".join(entry.backends), entry.summary)
            for entry in self._entries.values()
        ]

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[AlgorithmEntry]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)


#: The process-wide default registry, populated by :mod:`repro.api.algorithms`.
REGISTRY = AlgorithmRegistry()
