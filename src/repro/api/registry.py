"""The algorithm registry: one name, up to two engines.

Each :class:`AlgorithmEntry` binds a registry name to

- an **agent builder**: ``(scenario) -> (AntFactory, default CriterionFactory
  or None)`` — how to assemble a colony for the reference engine, and
- a **fast kernel**: ``(scenario, source) -> RunReport`` — the vectorized
  implementation, when one exists.

Which scenarios a fast kernel can honor is declared **feature-granularly**:
:func:`scenario_features` maps a scenario to the set of feature tags it
requests (fault-plan layers, noise kinds, delay models, non-default
criteria, recorded histories) and each entry lists the tags its kernel
implements in ``fast_features``.  ``backend="auto"`` prefers the fast
kernel whenever the requested set is covered (plus the entry's optional
structural ``fast_supports`` predicate) and falls back to the agent engine
otherwise; :meth:`AlgorithmEntry.missing_fast_features` names exactly which
features forced a fallback — the runner records them on the report and the
explicit-``backend="fast"`` error message lists them.

New protocol variants register in one line — see
:mod:`repro.api.algorithms` for the built-in population.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.exceptions import ConfigurationError
from repro.extensions.estimation import EncounterNoise
from repro.fast.backends import BACKEND_NAMES
from repro.sim.convergence import (
    CommittedToSingleGoodNest,
    ConvergenceCriterion,
    UnanimousCommitment,
)
from repro.sim.noise import CountNoise
from repro.sim.rng import RandomSource
from repro.sim.run import AntFactory, CriterionFactory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.report import RunReport
    from repro.api.scenario import Scenario

#: Criterion name -> factory, the runtime side of
#: :data:`repro.api.scenario.CRITERION_NAMES`.
CRITERIA: dict[str, CriterionFactory] = {
    "good": CommittedToSingleGoodNest,
    "good_settled": lambda: CommittedToSingleGoodNest(require_settled=True),
    "good_healthy": lambda: CommittedToSingleGoodNest(exclude_faulty=True),
    "unanimous": UnanimousCommitment,
}


def criterion_factory(name: str) -> CriterionFactory:
    """The factory for a registered criterion name."""
    try:
        return CRITERIA[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown criterion {name!r}; known: {', '.join(sorted(CRITERIA))}"
        ) from None


# -- scenario feature tags ---------------------------------------------------
#
# The vocabulary ``backend="auto"`` dispatch speaks: a scenario *requests* a
# set of tags and a fast kernel *implements* a set of tags.  Tags are
# deliberately fine-grained (crash faults separate from Byzantine rows,
# Gaussian count noise separate from quality flips) so a kernel can grow
# support one perturbation at a time and fallback reasons stay precise.

FEATURE_FAULT_CRASH = "fault_plan.crash"
FEATURE_FAULT_BYZANTINE = "fault_plan.byzantine"
FEATURE_DELAY = "delay_model"
FEATURE_NOISE_COUNT = "noise.count"
FEATURE_NOISE_QUALITY_FLIP = "noise.quality_flip"
FEATURE_NOISE_ENCOUNTER = "noise.encounter"
#: An unrecognized duck-typed noise model (anything that is neither a
#: CountNoise nor an EncounterNoise).  No kernel declares this tag: only
#: the agent engine's NoisyAnt wrapper can honor arbitrary models.
FEATURE_NOISE_CUSTOM = "noise.custom"
FEATURE_RECORD_HISTORY = "record_history"


def criterion_feature(name: str) -> str:
    """The feature tag of a non-default convergence criterion."""
    return f"criterion.{name}"


#: Every feature tag a scenario can request (criterion tags are derived).
FEATURE_TAGS = (
    FEATURE_FAULT_CRASH,
    FEATURE_FAULT_BYZANTINE,
    FEATURE_DELAY,
    FEATURE_NOISE_COUNT,
    FEATURE_NOISE_QUALITY_FLIP,
    FEATURE_NOISE_ENCOUNTER,
    FEATURE_NOISE_CUSTOM,
    FEATURE_RECORD_HISTORY,
) + tuple(criterion_feature(name) for name in CRITERIA)


def scenario_features(scenario: "Scenario") -> frozenset[str]:
    """The feature tags a scenario requests beyond a plain run.

    No-op layers request nothing: a ``FaultPlan`` whose fractions round to
    zero faulty ants *at this scenario's* ``n``, a null ``CountNoise`` and
    a zero-probability ``DelayModel`` leave the run unperturbed, so they
    never force an engine.
    """
    features: set[str] = set()
    plan = scenario.fault_plan
    if plan is not None:
        if plan.n_crashed(scenario.n) > 0:
            features.add(FEATURE_FAULT_CRASH)
        if plan.n_byzantine(scenario.n) > 0:
            features.add(FEATURE_FAULT_BYZANTINE)
    delay = scenario.delay_model
    if delay is not None and not delay.is_null:
        features.add(FEATURE_DELAY)
    noise = scenario.noise
    if isinstance(noise, EncounterNoise):
        features.add(FEATURE_NOISE_ENCOUNTER)
        if noise.quality_flip_prob > 0.0:
            features.add(FEATURE_NOISE_QUALITY_FLIP)
    elif isinstance(noise, CountNoise):
        if noise.relative_sigma > 0.0 or noise.absolute_sigma > 0.0:
            features.add(FEATURE_NOISE_COUNT)
        if noise.quality_flip_prob > 0.0:
            features.add(FEATURE_NOISE_QUALITY_FLIP)
    elif noise is not None:
        # An unrecognized noise model can only be honored by the agent
        # engine's duck-typed wrapper; no fast kernel declares this tag.
        features.add(FEATURE_NOISE_CUSTOM)
    if scenario.criterion is not None:
        features.add(criterion_feature(scenario.criterion))
    if scenario.record_history:
        features.add(FEATURE_RECORD_HISTORY)
    return frozenset(features)


#: Builds the agent-engine ingredients for a scenario.
AgentBuilder = Callable[
    ["Scenario"], tuple[AntFactory, "CriterionFactory | None"]
]
#: Runs the vectorized implementation of a scenario.
FastKernel = Callable[["Scenario", RandomSource], "RunReport"]
#: Structural constraints beyond the feature tags (e.g. the spread process
#: hard-coding the good nest as nest 1, or a kernel existing only under the
#: v2 matcher schedule).  Feature coverage is declared via ``fast_features``.
FastSupport = Callable[["Scenario"], bool]
#: Runs one homogeneous chunk of scenarios trial-parallel (the batched fast
#: engine); must return one report per scenario, in order, bit-identical to
#: running each scenario alone through the v2 fast kernel.
BatchKernel = Callable[[Sequence["Scenario"]], "list[RunReport]"]

#: The matcher schedule the fast engine uses unless a scenario pins one via
#: ``params={"matcher": ...}``.  "v2" is the batched, data-independent
#: schedule; "v1" is the sequential-scan reference kept for regression
#: comparison (see docs/PERFORMANCE.md).
DEFAULT_MATCHER = "v2"
MATCHER_NAMES = ("v1", "v2")


def scenario_matcher(scenario: "Scenario") -> str:
    """The matcher schedule a scenario requests (validated)."""
    matcher = scenario.params.get("matcher", DEFAULT_MATCHER)
    if matcher not in MATCHER_NAMES:
        raise ConfigurationError(
            f"unknown matcher {matcher!r}; known: {', '.join(MATCHER_NAMES)}"
        )
    return matcher


def scenario_kernel_backend(scenario: "Scenario") -> str | None:
    """The kernel-backend pin a scenario requests (validated), or ``None``.

    Every backend realizes the v2 batched kernels bit-for-bit, so an
    environment-selected backend (``$REPRO_FAST_BACKEND`` or
    :func:`repro.fast.backends.use_backend`) is digest-transparent and
    never recorded.  An explicit ``params={"kernel_backend": ...}`` pin
    *is* part of the scenario identity — the runner records it in report
    extras.  Pins only name a realization of the v2 batched kernels; the
    sequential v1 schedule has no backend seam, so a pin combined with
    ``matcher="v1"`` is a configuration error rather than a silent ignore.
    """
    pin = scenario.params.get("kernel_backend")
    if pin is None:
        return None
    if pin not in BACKEND_NAMES:
        raise ConfigurationError(
            f"unknown kernel backend {pin!r}; known: {', '.join(BACKEND_NAMES)}"
        )
    if scenario_matcher(scenario) == "v1":
        raise ConfigurationError(
            "kernel_backend pins select a realization of the v2 batched "
            "kernels; the sequential v1 matcher schedule has no backend "
            "seam — drop the pin or use matcher='v2'"
        )
    return pin


@dataclass(frozen=True)
class AlgorithmEntry:
    """One registered algorithm: metadata plus per-engine adapters."""

    name: str
    summary: str
    agent_builder: AgentBuilder | None = None
    fast_kernel: FastKernel | None = None
    fast_supports: FastSupport | None = None
    batch_kernel: BatchKernel | None = None
    #: Feature tags the fast kernel implements (see :func:`scenario_features`).
    fast_features: frozenset[str] = field(default_factory=frozenset)
    #: The ``Scenario.params`` keys this entry's builders/kernels accept.
    #: Declarative contract, cross-checked statically against the
    #: implementations by reprolint's R301 (``tools/reprolint.py``).
    param_names: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.agent_builder is None and self.fast_kernel is None:
            raise ConfigurationError(
                f"algorithm {self.name!r} registers neither engine"
            )
        object.__setattr__(self, "fast_features", frozenset(self.fast_features))
        object.__setattr__(self, "param_names", tuple(self.param_names))
        unknown = self.fast_features - set(FEATURE_TAGS)
        if unknown:
            raise ConfigurationError(
                f"algorithm {self.name!r} declares unknown fast feature(s) "
                f"{sorted(unknown)}; known: {', '.join(FEATURE_TAGS)}"
            )

    @property
    def has_agent(self) -> bool:
        """Whether an agent-engine implementation is registered."""
        return self.agent_builder is not None

    @property
    def has_fast(self) -> bool:
        """Whether a vectorized kernel is registered."""
        return self.fast_kernel is not None

    @property
    def backends(self) -> tuple[str, ...]:
        """The backends this entry can serve, fast first."""
        names: list[str] = []
        if self.has_fast:
            names.append("fast")
        if self.has_agent:
            names.append("agent")
        return tuple(names)

    def supports_fast(self, scenario: "Scenario") -> bool:
        """Whether the fast kernel exists *and* covers this scenario."""
        return self.fast_kernel is not None and not self.missing_fast_features(
            scenario
        )

    #: Pseudo-tag reported when the structural predicate (not a declared
    #: feature) rules the fast kernel out — e.g. a spread scenario whose
    #: good nest is not nest 1, or a v1-matcher request on a v2-only kernel.
    STRUCTURAL_LIMIT = "scenario-structure"

    def missing_fast_features(self, scenario: "Scenario") -> tuple[str, ...]:
        """Why the fast kernel cannot honor this scenario (empty = it can).

        Returns the sorted requested-but-unimplemented feature tags; when
        the tags are all covered but the structural ``fast_supports``
        predicate still says no, returns ``(STRUCTURAL_LIMIT,)``.  This is
        the single source of truth behind :meth:`supports_fast`, the
        ``backend="fast"`` error message, and the ``agent_fallback`` extra
        :func:`repro.api.run` records under ``backend="auto"``.
        """
        if self.fast_kernel is None:
            return ("no-fast-kernel",)
        missing = tuple(sorted(scenario_features(scenario) - self.fast_features))
        if missing:
            return missing
        if self.fast_supports is not None and not self.fast_supports(scenario):
            return (self.STRUCTURAL_LIMIT,)
        return ()

    @property
    def has_batch(self) -> bool:
        """Whether a trial-parallel batch kernel is registered."""
        return self.batch_kernel is not None

    def supports_batch(self, scenario: "Scenario") -> bool:
        """Whether the batch kernel exists and covers this scenario.

        Batch execution requires the v2 matcher schedule — scenarios that
        pin ``matcher="v1"`` run trial-by-trial through the sequential fast
        kernel instead.
        """
        if self.batch_kernel is None:
            return False
        if not self.supports_fast(scenario):
            return False
        return scenario_matcher(scenario) == DEFAULT_MATCHER


class AlgorithmRegistry:
    """Name -> :class:`AlgorithmEntry` mapping with registration helpers."""

    def __init__(self) -> None:
        self._entries: dict[str, AlgorithmEntry] = {}

    def register(
        self,
        name: str,
        summary: str,
        agent_builder: AgentBuilder | None = None,
        fast_kernel: FastKernel | None = None,
        fast_supports: FastSupport | None = None,
        batch_kernel: BatchKernel | None = None,
        fast_features: frozenset[str] | Sequence[str] = (),
        params: Sequence[str] = (),
        replace: bool = False,
    ) -> AlgorithmEntry:
        """Register an algorithm; returns the stored entry.

        ``params`` declares the ``Scenario.params`` keys the entry's
        builders and kernels accept (stored as
        :attr:`AlgorithmEntry.param_names`); reprolint cross-checks the
        declaration against the implementations.
        """
        if name in self._entries and not replace:
            raise ConfigurationError(f"algorithm {name!r} already registered")
        entry = AlgorithmEntry(
            name=name,
            summary=summary,
            agent_builder=agent_builder,
            fast_kernel=fast_kernel,
            fast_supports=fast_supports,
            batch_kernel=batch_kernel,
            fast_features=frozenset(fast_features),
            param_names=tuple(params),
        )
        self._entries[name] = entry
        return entry

    def get(self, name: str) -> AlgorithmEntry:
        """Look up an entry; raise with the known names on a miss."""
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown algorithm {name!r}; known: {', '.join(self.names())}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """All registered names, in registration order."""
        return tuple(self._entries)

    def describe(self) -> list[tuple[str, str, str]]:
        """(name, backends, summary) rows for listings and the CLI."""
        return [
            (entry.name, "+".join(entry.backends), entry.summary)
            for entry in self._entries.values()
        ]

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[AlgorithmEntry]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)


#: The process-wide default registry, populated by :mod:`repro.api.algorithms`.
REGISTRY = AlgorithmRegistry()
