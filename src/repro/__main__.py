"""Package entry point: a one-command demonstration.

``python -m repro`` runs a small house-hunt with both algorithms and prints
population sparklines — the fastest way to see the library work.  For the
experiment tables use ``python -m repro.experiments`` (see its ``--help``).
"""

from __future__ import annotations

import argparse

from repro import NestConfig, Scenario, run_scenario
from repro.analysis.viz import population_chart


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run a demonstration house-hunt with both algorithms.",
    )
    parser.add_argument("--n", type=int, default=256, help="colony size")
    parser.add_argument("--k", type=int, default=5, help="candidate nests")
    parser.add_argument("--seed", type=int, default=2015, help="random seed")
    args = parser.parse_args(argv)

    nests = NestConfig.binary(args.k, set(range(1, args.k, 2)) or {1})
    print(
        f"house-hunting: n={args.n} ants, k={args.k} nests "
        f"(good: {list(nests.good_nests)}), seed={args.seed}\n"
    )

    # Row selections: Algorithm 3 stands at nests on odd rounds (default);
    # Algorithm 2's cohort populations are visible on its B2 sub-rounds.
    for name, algorithm, rows in [
        ("Algorithm 3 (Simple, O(k log n))", "simple", None),
        ("Algorithm 2 (Optimal, O(log n))", "optimal", slice(2, None, 4)),
    ]:
        result = run_scenario(
            Scenario(
                algorithm=algorithm,
                n=args.n,
                nests=nests,
                seed=args.seed,
                max_rounds=50_000,
                record_history=True,
            ),
            backend="fast",
        )
        print(name)
        print(population_chart(result.population_history, row_slice=rows))
        if result.converged:
            print(
                f"  -> consensus on nest {result.chosen_nest} in "
                f"{result.converged_round} rounds\n"
            )
        else:
            print(f"  -> no consensus within {result.rounds_executed} rounds\n")
    print(
        "more: python -m repro.api --list   |   "
        "python -m repro.experiments --list   |   examples/*.py"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
