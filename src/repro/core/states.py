"""Control-state and phase enumerations for the paper's algorithms.

Keeping these as first-class enums (rather than strings buried in the ant
classes) lets tests and metrics assert on exact machine states, and makes
the FSM structure of the pseudocode explicit.
"""

from __future__ import annotations

from enum import Enum


class SimpleState(Enum):
    """Algorithm 3's two states (plus the pre-search round)."""

    SEARCH = "search"
    ACTIVE = "active"
    PASSIVE = "passive"


class SimplePhase(Enum):
    """Algorithm 3 alternates recruitment rounds and assessment rounds."""

    SEARCH = "search"  # round 1 only
    RECRUIT = "recruit"  # at home, everyone participates
    ASSESS = "assess"  # at own candidate nest, reading its count


class OptimalState(Enum):
    """Algorithm 2's four states (Section 4.1)."""

    SEARCH = "search"
    ACTIVE = "active"
    PASSIVE = "passive"
    FINAL = "final"


class OptimalPhase(Enum):
    """Program counter inside Algorithm 2's four-round case blocks.

    Names encode ``<state letter><round-in-block><branch>``; the pseudocode
    line references are given in :mod:`repro.core.optimal`.  Every path
    through a block is exactly four rounds, which is what keeps the whole
    colony block-aligned.
    """

    SEARCH = "search"  # round 1: the single search() call

    A1_RECRUIT = "a1_recruit"  # R1: recruit(1, nest)
    A2_ASSESS = "a2_assess"  # R2: go(nestt)
    A3_HOLD = "a3_hold"  # R3 case 1: go(nest)
    A4_HOME_CHECK = "a4_home_check"  # R4 case 1: recruit(0, nest)
    A3_DROP_WAIT = "a3_drop_wait"  # R3 case 2: recruit(0, nest), discarded
    A4_DROP_RETURN = "a4_drop_return"  # R4 case 2: go(nest)
    A3_REVISIT = "a3_revisit"  # R3 case 3: go(new nest)
    A4_REVISIT_PAD = "a4_revisit_pad"  # R4 case 3: go(nest)

    P1_AT_NEST = "p1_at_nest"  # R1: go(nest)
    P2_WAIT = "p2_wait"  # R2: recruit(0, nest)
    P3_PAD = "p3_pad"  # R3: go(nest)
    P4_PAD = "p4_pad"  # R4: go(nest)

    F_RECRUIT = "f_recruit"  # final: recruit(1, nest), every round
