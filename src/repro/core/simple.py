"""Algorithm 3 — the Simple house-hunting algorithm (Section 5).

The whole algorithm, from the paper:

    In the first round all ants search.  Ants that found a good nest stay
    *active*; the rest turn *passive*.  Rounds then alternate between
    recruitment at the home nest and population assessment at the ants'
    candidate nests.  In each recruitment round an active ant recruits with
    probability ``count/n`` (its nest's last assessed population over the
    colony size) — positive feedback that lets large nests swamp small ones,
    as in a Pólya urn.  A recruited ant (active or passive) adopts the
    recruiter's nest; passive ants become active when recruited.

Theorem 5.11: converges to a single good nest in ``O(k log n)`` rounds with
high probability (for ``k = O(√n / log n)``).

Pseudocode mapping (the paper's Algorithm 3):

==========  =====================================================
line        here
==========  =====================================================
2–4         ``observe(SearchResult)``
6           ``_recruit_bit`` inside ``decide`` (phase RECRUIT)
7, 10–13    ``observe(RecruitResult)``
8, 14       ``decide`` (phase ASSESS) + ``observe(GoResult)``
==========  =====================================================
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SimulationError
from repro.model.actions import (
    Action,
    ActionResult,
    Go,
    GoResult,
    Recruit,
    RecruitResult,
    Search,
    SearchResult,
)
from repro.model.ant import Ant
from repro.core.states import SimplePhase, SimpleState
from repro.types import GOOD_THRESHOLD, NestId


class SimpleAnt(Ant):
    """One ant running Algorithm 3.

    Parameters
    ----------
    ant_id, n, rng:
        See :class:`~repro.model.ant.Ant`.
    good_threshold:
        Quality above which a nest is acceptable (the paper's binary model
        uses qualities {0, 1} and threshold 0.5).
    """

    def __init__(
        self,
        ant_id: int,
        n: int,
        rng: np.random.Generator,
        good_threshold: float = GOOD_THRESHOLD,
    ) -> None:
        super().__init__(ant_id, n, rng)
        self.good_threshold = good_threshold
        self.state = SimpleState.SEARCH
        self.phase = SimplePhase.SEARCH
        self.nest: NestId | None = None
        self.count: int = 0

    # -- per-round contract --------------------------------------------------

    def decide(self) -> Action:
        if self.phase is SimplePhase.SEARCH:
            return Search()
        if self.phase is SimplePhase.RECRUIT:
            assert self.nest is not None
            if self.state is SimpleState.ACTIVE:
                return Recruit(self._recruit_bit(), self.nest)
            return Recruit(False, self.nest)
        if self.phase is SimplePhase.ASSESS:
            assert self.nest is not None
            return Go(self.nest)
        raise SimulationError(f"ant {self.ant_id}: unknown phase {self.phase}")

    def _recruit_bit(self) -> bool:
        """Line 6: ``b := 1`` with probability ``count / n``."""
        return bool(self.rng.random() < self.count / self.n)

    def observe(self, result: ActionResult) -> None:
        if self.phase is SimplePhase.SEARCH:
            assert isinstance(result, SearchResult)
            self._observe_search(result)
        elif self.phase is SimplePhase.RECRUIT:
            assert isinstance(result, RecruitResult)
            self._observe_recruit(result)
        elif self.phase is SimplePhase.ASSESS:
            assert isinstance(result, GoResult)
            self.count = result.count
            self.phase = SimplePhase.RECRUIT

    def _observe_search(self, result: SearchResult) -> None:
        """Lines 2–4: commit to the found nest; reject bad nests."""
        self.nest = result.nest
        self.count = result.count
        if result.quality > self.good_threshold:
            self.state = SimpleState.ACTIVE
        else:
            self.state = SimpleState.PASSIVE
        self.phase = SimplePhase.RECRUIT

    def _observe_recruit(self, result: RecruitResult) -> None:
        """Lines 7 and 10–13: adopt the returned nest; wake up if recruited."""
        if self.state is SimpleState.ACTIVE:
            # Line 7: nest := recruit(b, nest) — unconditional adoption.
            self.nest = result.nest
        else:
            # Lines 10–13: a passive ant recruited to a new nest activates.
            if result.nest != self.nest:
                self.state = SimpleState.ACTIVE
                self.nest = result.nest
        self.phase = SimplePhase.ASSESS

    # -- observation interface ------------------------------------------------

    @property
    def committed_nest(self) -> NestId | None:
        return self.nest

    def state_label(self) -> str:
        return self.state.value
