"""The information-spreading process behind the Ω(log n) lower bound
(Section 3 / Theorem 3.2).

The lower bound's setting: exactly one good nest ``n_w`` (the "rumor").
An ant is *informed* once it knows ``w`` — by searching into it or by being
recruited to it — and the proof shows an ignorant ant stays ignorant each
round with probability ≥ 1/4, so Ω(log n) rounds are needed before all
``n`` ants can be informed, *no matter what algorithm is used*.

:class:`InformedSpreadAnt` implements the strongest spreading strategies the
model allows, so measuring its completion time empirically brackets the bound:

- informed ants call ``recruit(1, w)`` **every round** (maximal push rate);
- ignorant ants follow an :class:`IgnorantPolicy`:

  - ``WAIT``: stay at home (``recruit(0, ·)``) — maximally recruitable;
  - ``SEARCH``: keep searching — finds ``w`` directly w.p. 1/k per round
    but is never at home to be recruited;
  - ``MIXED``: flip a fair coin between the two each round.

The measured completion time of the best policy, divided by ``log n``, gives
the empirical constant to compare against the theoretical
``(log₄ n)/2 − log₄(12c)`` bound (see ``analysis.theory`` and bench E1).
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.exceptions import ConfigurationError
from repro.model.actions import (
    Action,
    ActionResult,
    Recruit,
    RecruitResult,
    Search,
    SearchResult,
)
from repro.model.ant import Ant
from repro.types import GOOD_THRESHOLD, NestId


class IgnorantPolicy(Enum):
    """What an ignorant ant does while it waits to learn the rumor."""

    WAIT = "wait"
    SEARCH = "search"
    MIXED = "mixed"


class InformedSpreadAnt(Ant):
    """Best-case rumor-spreading ant for the lower-bound experiment.

    The single good nest plays the rumor; quality readings identify it
    (``q(w) = 1``, everything else 0), matching the lower bound's assumption
    that "each ant is able to recognize nest ``n_w`` once it knows its id".
    """

    def __init__(
        self,
        ant_id: int,
        n: int,
        rng: np.random.Generator,
        policy: IgnorantPolicy = IgnorantPolicy.WAIT,
    ) -> None:
        super().__init__(ant_id, n, rng)
        self.policy = policy
        self.winning_nest: NestId | None = None
        self._fallback_nest: NestId | None = None  # any known nest, for recruit(0, ·)

    @property
    def informed(self) -> bool:
        """Whether this ant knows the good nest's id."""
        return self.winning_nest is not None

    def decide(self) -> Action:
        if self.informed:
            assert self.winning_nest is not None
            return Recruit(True, self.winning_nest)
        if self._fallback_nest is None:
            # Round 1 (or until something is known): searching is the only
            # legal call for an ant with an empty known set.
            return Search()
        if self.policy is IgnorantPolicy.SEARCH:
            return Search()
        if self.policy is IgnorantPolicy.MIXED and self.rng.random() < 0.5:
            return Search()
        return Recruit(False, self._fallback_nest)

    def observe(self, result: ActionResult) -> None:
        if isinstance(result, SearchResult):
            self._fallback_nest = result.nest
            if result.quality > GOOD_THRESHOLD:
                self.winning_nest = result.nest
        elif isinstance(result, RecruitResult) and not self.informed:
            # Being handed a nest different from our own input means we were
            # recruited — by assumption only informed ants recruit, and they
            # recruit to w, so the rumor arrived.
            if result.nest != self._fallback_nest:
                self.winning_nest = result.nest

    @property
    def committed_nest(self) -> NestId | None:
        return self.winning_nest

    @property
    def settled(self) -> bool:
        return self.informed

    def state_label(self) -> str:
        return "informed" if self.informed else "ignorant"


def validate_lower_bound_world(k: int, good_nest: NestId) -> None:
    """Sanity-check the single-good-nest workload used by the experiment."""
    if k < 2:
        raise ConfigurationError(
            "the lower bound requires k >= 2 (Theorem 3.2's statement)"
        )
    if not 1 <= good_nest <= k:
        raise ConfigurationError(f"good nest {good_nest} out of range 1..{k}")
