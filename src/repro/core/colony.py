"""Factory helpers for building colonies of each algorithm.

The trial runner (:mod:`repro.sim.run`) consumes factories of signature
``(ant_id, n, rng) -> Ant``; these helpers bind algorithm parameters into
such factories so experiment code stays declarative.
"""

from __future__ import annotations

from repro.core.lower_bound import IgnorantPolicy, InformedSpreadAnt
from repro.core.optimal import OptimalAnt
from repro.core.simple import SimpleAnt
from repro.sim.run import AntFactory
from repro.types import GOOD_THRESHOLD


def simple_factory(good_threshold: float = GOOD_THRESHOLD) -> AntFactory:
    """Factory for Algorithm 3 (:class:`~repro.core.simple.SimpleAnt`)."""

    def build(ant_id: int, n: int, rng) -> SimpleAnt:
        return SimpleAnt(ant_id, n, rng, good_threshold=good_threshold)

    return build


def optimal_factory(
    good_threshold: float = GOOD_THRESHOLD, strict_pseudocode: bool = False
) -> AntFactory:
    """Factory for Algorithm 2 (:class:`~repro.core.optimal.OptimalAnt`)."""

    def build(ant_id: int, n: int, rng) -> OptimalAnt:
        return OptimalAnt(
            ant_id,
            n,
            rng,
            good_threshold=good_threshold,
            strict_pseudocode=strict_pseudocode,
        )

    return build


def informed_spread_factory(
    policy: IgnorantPolicy = IgnorantPolicy.WAIT,
) -> AntFactory:
    """Factory for the lower-bound spread process."""

    def build(ant_id: int, n: int, rng) -> InformedSpreadAnt:
        return InformedSpreadAnt(ant_id, n, rng, policy=policy)

    return build
