"""The paper's algorithms: Algorithm 2 (Optimal), Algorithm 3 (Simple),
and the best-case information-spreading process behind the Ω(log n) lower
bound (Theorem 3.2).
"""

from repro.core.colony import (
    informed_spread_factory,
    optimal_factory,
    simple_factory,
)
from repro.core.lower_bound import IgnorantPolicy, InformedSpreadAnt
from repro.core.optimal import OptimalAnt
from repro.core.simple import SimpleAnt
from repro.core.states import OptimalPhase, OptimalState, SimplePhase, SimpleState

__all__ = [
    "IgnorantPolicy",
    "InformedSpreadAnt",
    "OptimalAnt",
    "OptimalPhase",
    "OptimalState",
    "SimpleAnt",
    "SimplePhase",
    "SimpleState",
    "informed_spread_factory",
    "optimal_factory",
    "simple_factory",
]
