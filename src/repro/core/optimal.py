"""Algorithm 2 — the asymptotically optimal house-hunting algorithm
(Section 4).

Each ant is in one of four states — ``search``, ``active``, ``passive``,
``final`` — and executes four-round *case blocks* that the whole colony
steps through in lock-step (every path through a block is exactly four
rounds, which is what keeps the schedule aligned; see the padding calls the
paper highlights on lines 13, 18–19, 35–36, 42).

The competition mechanism: in each block, an active ant recruits to its
nest (R1), then revisits it and compares the new population against the
one it remembered (R2).  Non-decreasing population ⇒ the nest keeps
competing (case 1); decreasing ⇒ the entire nest's cohort gives up and
turns passive (case 2); and an ant that was itself recruited away joins the
new nest and checks whether *that* nest is competing or dropping (case 3).
Because a nest's active cohort always shares the same remembered ``count``,
a nest keeps or loses its whole cohort at once; Lemma 4.2 shows each
competing nest drops out per block with probability ≥ 1/66, and at least
one always survives, so O(log k) blocks leave a single winner.  Its cohort
detects ``counth = count`` (everyone at home is committed to my nest) and
turns ``final``, after which finals recruit the passive ants — who wait at
home every fourth round — doubling the final cohort until the colony is
unanimous: O(log n) rounds in total (Theorem 4.3).

Pseudocode line mapping (the paper's Algorithm 2):

=============  ==========================================================
lines          here
=============  ==========================================================
6–11           ``SEARCH`` phase (round 1)
12–19          passive block: ``P1_AT_NEST`` … ``P4_PAD``
20–21          final state: ``F_RECRUIT`` every round
22–24          active block: ``A1_RECRUIT``, ``A2_ASSESS``
25–31 (case1)  ``A3_HOLD``, ``A4_HOME_CHECK``
32–36 (case2)  ``A3_DROP_WAIT``, ``A4_DROP_RETURN``
37–42 (case3)  ``A3_REVISIT``, ``A4_REVISIT_PAD``
=============  ==========================================================

Faithfulness clarification (DESIGN.md §3.2): in case 3 the pseudocode
assesses the new nest into ``countn`` but never stores it; the prose says
"the ant updates that count".  With ``strict_pseudocode=False`` (default)
we set ``count := countn`` when the ant stays active, preserving the
cohort-count invariant the analysis uses.  ``strict_pseudocode=True`` keeps
the literal stale ``count`` for comparison (bench E4b).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SimulationError
from repro.model.actions import (
    Action,
    ActionResult,
    Go,
    GoResult,
    Recruit,
    RecruitResult,
    Search,
    SearchResult,
)
from repro.model.ant import Ant
from repro.core.states import OptimalPhase, OptimalState
from repro.types import GOOD_THRESHOLD, NestId

_P = OptimalPhase
_S = OptimalState


class OptimalAnt(Ant):
    """One ant running Algorithm 2.

    Parameters
    ----------
    ant_id, n, rng:
        See :class:`~repro.model.ant.Ant`.
    good_threshold:
        Quality above which a nest is acceptable.
    strict_pseudocode:
        Keep the literal (stale-``count``) case-3 behavior; see module
        docstring.
    """

    def __init__(
        self,
        ant_id: int,
        n: int,
        rng: np.random.Generator,
        good_threshold: float = GOOD_THRESHOLD,
        strict_pseudocode: bool = False,
    ) -> None:
        super().__init__(ant_id, n, rng)
        self.good_threshold = good_threshold
        self.strict_pseudocode = strict_pseudocode
        self.state = _S.SEARCH
        self.phase = _P.SEARCH
        self.nest: NestId | None = None
        self.count: int = 0
        # Block-local registers (the pseudocode's nestt / countt).
        self._nestt: NestId | None = None
        self._countt: int = 0

    # -- decide: one action per phase -----------------------------------------

    def decide(self) -> Action:
        phase = self.phase
        if phase is _P.SEARCH:
            return Search()  # line 7
        assert self.nest is not None
        if phase is _P.A1_RECRUIT:
            return Recruit(True, self.nest)  # line 23
        if phase is _P.A2_ASSESS:
            assert self._nestt is not None
            return Go(self._nestt)  # line 24
        if phase is _P.A3_HOLD:
            return Go(self.nest)  # line 28
        if phase is _P.A4_HOME_CHECK:
            return Recruit(False, self.nest)  # line 29
        if phase is _P.A3_DROP_WAIT:
            return Recruit(False, self.nest)  # line 35 (padding)
        if phase is _P.A4_DROP_RETURN:
            return Go(self.nest)  # line 36 (padding)
        if phase is _P.A3_REVISIT:
            return Go(self.nest)  # line 39 (nest already := nestt)
        if phase is _P.A4_REVISIT_PAD:
            return Go(self.nest)  # line 42 (padding)
        if phase is _P.P1_AT_NEST:
            return Go(self.nest)  # line 13 (padding)
        if phase is _P.P2_WAIT:
            return Recruit(False, self.nest)  # line 14
        if phase is _P.P3_PAD:
            return Go(self.nest)  # line 18 (padding)
        if phase is _P.P4_PAD:
            return Go(self.nest)  # line 19 (padding)
        if phase is _P.F_RECRUIT:
            return Recruit(True, self.nest)  # line 21
        raise SimulationError(f"ant {self.ant_id}: unknown phase {phase}")

    # -- observe: state transitions --------------------------------------------

    def observe(self, result: ActionResult) -> None:
        phase = self.phase
        if phase is _P.SEARCH:
            assert isinstance(result, SearchResult)
            self._observe_search(result)
        elif phase is _P.A1_RECRUIT:
            assert isinstance(result, RecruitResult)
            self._nestt = result.nest
            self.phase = _P.A2_ASSESS
        elif phase is _P.A2_ASSESS:
            assert isinstance(result, GoResult)
            self._observe_assessment(result)
        elif phase is _P.A3_HOLD:
            self.phase = _P.A4_HOME_CHECK
        elif phase is _P.A4_HOME_CHECK:
            assert isinstance(result, RecruitResult)
            # Line 29 discards the returned nest; only counth is read.
            if result.home_count == self.count:  # line 30
                self.state = _S.FINAL
                self.phase = _P.F_RECRUIT
            else:
                self.phase = _P.A1_RECRUIT
        elif phase is _P.A3_DROP_WAIT:
            # Line 35: return value fully discarded.
            self.phase = _P.A4_DROP_RETURN
        elif phase is _P.A4_DROP_RETURN:
            self.phase = _P.P1_AT_NEST
        elif phase is _P.A3_REVISIT:
            assert isinstance(result, GoResult)
            self._observe_revisit(result)
        elif phase is _P.A4_REVISIT_PAD:
            self.phase = (
                _P.P1_AT_NEST if self.state is _S.PASSIVE else _P.A1_RECRUIT
            )
        elif phase is _P.P1_AT_NEST:
            self.phase = _P.P2_WAIT
        elif phase is _P.P2_WAIT:
            assert isinstance(result, RecruitResult)
            if result.nest != self.nest:  # line 15
                self.nest = result.nest
                self.state = _S.FINAL
            self.phase = _P.P3_PAD
        elif phase is _P.P3_PAD:
            self.phase = _P.P4_PAD
        elif phase is _P.P4_PAD:
            self.phase = (
                _P.F_RECRUIT if self.state is _S.FINAL else _P.P1_AT_NEST
            )
        elif phase is _P.F_RECRUIT:
            assert isinstance(result, RecruitResult)
            self.nest = result.nest  # line 21 assigns the returned nest
        else:  # pragma: no cover - exhaustive
            raise SimulationError(f"ant {self.ant_id}: unknown phase {phase}")

    def _observe_search(self, result: SearchResult) -> None:
        """Lines 7–11: commit to the found nest; bad quality ⇒ passive."""
        self.nest = result.nest
        self.count = result.count
        if result.quality > self.good_threshold:
            self.state = _S.ACTIVE
            self.phase = _P.A1_RECRUIT
        else:
            self.state = _S.PASSIVE
            self.phase = _P.P1_AT_NEST

    def _observe_assessment(self, result: GoResult) -> None:
        """Lines 25–42 branch on (nestt, countt) after the R2 visit."""
        self._countt = result.count
        if self._nestt == self.nest:
            if self._countt >= self.count:
                # Case 1 (lines 25–28): nest keeps competing.
                self.count = self._countt
                self.phase = _P.A3_HOLD
            else:
                # Case 2 (lines 32–34): population fell — give up.
                self.state = _S.PASSIVE
                self.phase = _P.A3_DROP_WAIT
        else:
            # Case 3 (lines 37–38): recruited away; adopt the new nest.
            self.nest = self._nestt
            self.phase = _P.A3_REVISIT

    def _observe_revisit(self, result: GoResult) -> None:
        """Lines 39–42: is the new nest competing or dropping out?"""
        countn = result.count
        if countn < self._countt:  # line 40
            self.state = _S.PASSIVE
        elif not self.strict_pseudocode:
            # DESIGN.md §3.2: "the ant updates that count" — keep the
            # cohort-count invariant.
            self.count = countn
        self.phase = _P.A4_REVISIT_PAD

    # -- observation interface ---------------------------------------------------

    @property
    def committed_nest(self) -> NestId | None:
        return self.nest

    @property
    def settled(self) -> bool:
        return self.state is _S.FINAL

    def state_label(self) -> str:
        return self.state.value
