"""Thin HTTP client for the study service (stdlib ``urllib`` only).

:class:`ServiceClient` wraps the daemon's JSON surface: submit a study,
poll job status, stream completed cells as NDJSON, and fetch terminal
results.  :meth:`ServiceClient.run_study` is the drop-in path: submit,
wait, and rebuild a full :class:`~repro.api.sweep.StudyResult` locally
from the job's cell events — re-folding through the same
:func:`~repro.api.scheduler.fold_study_result` the daemon used, so the
returned table is bit-identical to a local :func:`repro.api.run_study`
of the same study.

``$REPRO_SERVICE_URL`` names the daemon; code that calls
:func:`repro.experiments.common.execute_study` routes through it
automatically when the variable is set, which is how a fleet of
experiment scripts shares one warm daemon (and its cache) without code
changes.
"""

from __future__ import annotations

import http.client
import json
import os
import time
import urllib.error
import urllib.request
from typing import Any, Iterator, Mapping

from repro.api.scheduler import fold_study_result
from repro.api.sweep import (
    CellFailure,
    CellResult,
    Study,
    StudyResult,
    expand_study,
)
from repro.exceptions import ReproError

#: Environment variable naming the daemon's base URL.
SERVICE_URL_ENV = "REPRO_SERVICE_URL"

#: Where a daemon listens when nobody says otherwise.
DEFAULT_URL = "http://127.0.0.1:8642"


def default_service_url() -> str:
    """``$REPRO_SERVICE_URL`` when set, else the default local daemon."""
    return os.environ.get(SERVICE_URL_ENV) or DEFAULT_URL


class ServiceError(ReproError):
    """The daemon rejected a request or a job failed terminally."""


class ServiceClient:
    """One daemon endpoint; methods mirror the HTTP routes one-to-one."""

    def __init__(self, url: str | None = None, *, timeout: float = 30.0) -> None:
        self.url = (url or default_service_url()).rstrip("/")
        self.timeout = timeout

    # -- raw HTTP -------------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Mapping[str, Any] | None = None
    ) -> Any:
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            f"{self.url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as error:
            detail = error.read().decode("utf-8", "replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except (ValueError, AttributeError):
                pass
            raise ServiceError(
                f"{method} {path} -> {error.code}: {detail}"
            ) from error
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach study service at {self.url}: {error.reason}"
            ) from error
        except (OSError, http.client.HTTPException) as error:
            # A daemon dropping mid-request (shutdown races) resets the
            # socket below urllib's URLError wrapping.
            raise ServiceError(
                f"connection to study service at {self.url} failed: {error!r}"
            ) from error

    # -- the API --------------------------------------------------------------

    def healthy(self) -> bool:
        try:
            return bool(self._request("GET", "/healthz").get("ok"))
        except ServiceError:
            return False

    def submit(
        self, study: "Study | Mapping[str, Any]", priority: int = 0
    ) -> dict[str, Any]:
        """Submit a study; returns the job snapshot (``["job"]`` is the id)."""
        if isinstance(study, Study):
            study = study.to_dict()
        return self._request(
            "POST", "/jobs", {"study": dict(study), "priority": priority}
        )

    def status(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/jobs")

    def stats(self) -> dict[str, Any]:
        return self._request("GET", "/stats")

    def shutdown(self) -> dict[str, Any]:
        return self._request("POST", "/shutdown")

    def iter_cells(self, job_id: str, since: int = 0) -> Iterator[dict[str, Any]]:
        """Stream a job's completed-cell events (blocks until it ends)."""
        request = urllib.request.Request(
            f"{self.url}/jobs/{job_id}/cells?since={since}"
        )
        try:
            with urllib.request.urlopen(request, timeout=None) as response:
                for line in response:
                    line = line.strip()
                    if line:
                        yield json.loads(line)
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cell stream for {job_id} failed: {error}"
            ) from error

    def wait(
        self,
        job_id: str,
        timeout: float | None = None,
        poll_seconds: float = 0.2,
    ) -> dict[str, Any]:
        """Poll until the job is terminal; returns the final snapshot."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            snapshot = self.status(job_id)
            if snapshot["state"] in ("done", "quarantined", "failed"):
                return snapshot
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {snapshot['state']} after {timeout}s"
                )
            time.sleep(poll_seconds)

    def result(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/result")

    # -- the drop-in path ------------------------------------------------------

    def run_study(
        self,
        study: Study,
        priority: int = 0,
        timeout: float | None = None,
    ) -> StudyResult:
        """Submit, wait, and rebuild the full :class:`StudyResult`.

        Cell results are reconstructed from the daemon's cell events and
        re-folded locally, so ``.table`` is bit-identical to the daemon's
        (and to a local run).  Per-cell ``stats`` are not shipped over the
        wire — reconstructed cells carry ``stats=None``; everything the
        experiment layer consumes (the table, quarantine/degrade flags,
        cache counters) is exact.
        """
        job_id = self.submit(study, priority=priority)["job"]
        snapshot = self.wait(job_id, timeout=timeout)
        if snapshot["state"] == "failed":
            raise ServiceError(
                f"job {job_id} failed: {snapshot.get('error', 'unknown error')}"
            )
        data = self.result(job_id)
        expanded = expand_study(study)
        cells = [
            _cell_result_from_event(expanded, event) for event in data["events"]
        ]
        result = fold_study_result(study, cells, cached=True)
        if list(result.table.to_dict()) != list(data["table"]):
            raise ServiceError(
                f"job {job_id}: local re-fold disagrees with the daemon's "
                "table columns — client and daemon are out of sync"
            )
        return result


def _cell_result_from_event(expanded, event: Mapping[str, Any]) -> CellResult:
    """Rebuild one :class:`CellResult` from a daemon cell event.

    The cell itself is re-expanded locally from the study (expansion is
    deterministic), the metrics ride the event verbatim, and a
    quarantined event's ``"Kind: message"`` string splits back into a
    :class:`CellFailure` (attempt counts don't survive the wire — they
    are not part of the table contract).
    """
    index = int(event["cell"])
    cell = expanded[index]
    failure = None
    if event.get("status") == "quarantined":
        kind, _, message = str(event.get("error", "")).partition(": ")
        failure = CellFailure(
            kind=kind, message=message, attempts=0, retryable=False
        )
    return CellResult(
        cell,
        None,
        dict(event.get("metrics") or {}),
        cached=bool(event.get("cached")),
        failure=failure,
        degraded=tuple(event.get("degraded") or ()),
        simulated=int(event.get("simulated") or 0),
    )


__all__ = [
    "DEFAULT_URL",
    "SERVICE_URL_ENV",
    "ServiceClient",
    "ServiceError",
    "default_service_url",
]
