"""Jobs and the priority queue between the HTTP frontend and the executors.

A :class:`Job` is one submitted study riding through the daemon: it holds
the study, its queue priority, a state machine
(``queued -> running -> done | quarantined | failed``), per-cell progress
counters, and the ordered list of completed-cell events that the NDJSON
streaming endpoint replays (``GET /jobs/<id>/cells?since=<n>`` is "give me
events [n:]", so a client can reconnect and resume).

:class:`JobQueue` is the async hand-off: HTTP threads :meth:`submit`,
executor threads :meth:`pop`.  Higher ``priority`` values run first; ties
run in submission order.  All waiting is condition-variable based — no
polling between the frontend and the executors.

Timestamps use :func:`time.monotonic` (the service reports *ages and
durations*, never wall-clock datetimes — and the repo's determinism lint
bans ambient wall-clock reads).
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Any

from repro.api.sweep import Study, StudyResult

#: Every state a job can report.
JOB_STATES = ("queued", "running", "done", "quarantined", "failed")

#: States a job never leaves.  ``done`` = every cell clean;
#: ``quarantined`` = the study completed but >= 1 cell exhausted its
#: recovery ladder (its table holds structured failure rows);
#: ``failed`` = the run aborted (configuration error, fail-fast policy).
TERMINAL_STATES = ("done", "quarantined", "failed")


class Job:
    """One submitted study and everything observable about its progress."""

    def __init__(
        self,
        job_id: str,
        study: Study,
        priority: int = 0,
        seq: int = 0,
        cells_total: int | None = None,
    ) -> None:
        self.id = job_id
        self.study = study
        self.priority = priority
        self.seq = seq
        self.state = "queued"
        self.error: str | None = None
        self.cells_total = cells_total
        #: Completed-cell events in completion order (the NDJSON stream).
        self.events: list[dict[str, Any]] = []
        self.result: StudyResult | None = None
        self.submitted_at = time.monotonic()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self._cond = threading.Condition()

    # -- state transitions (executor side) ----------------------------------

    def mark_running(self) -> None:
        with self._cond:
            self.state = "running"
            self.started_at = time.monotonic()
            self._cond.notify_all()

    def add_event(self, event: dict[str, Any]) -> None:
        """Record one completed cell and wake streaming readers."""
        with self._cond:
            self.events.append(event)
            self._cond.notify_all()

    def finish(
        self,
        state: str,
        result: StudyResult | None = None,
        error: str | None = None,
    ) -> None:
        if state not in TERMINAL_STATES:
            raise ValueError(f"not a terminal state: {state!r}")
        with self._cond:
            self.state = state
            self.result = result
            self.error = error
            self.finished_at = time.monotonic()
            self._cond.notify_all()

    # -- observation (HTTP side) --------------------------------------------

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def wait_events(
        self, since: int, timeout: float | None = None
    ) -> tuple[list[dict[str, Any]], bool]:
        """Events ``[since:]``, blocking until there are any or the job ends.

        Returns ``(new_events, terminal)``; an empty list with
        ``terminal=False`` means the timeout elapsed first (callers loop).
        """
        with self._cond:
            if not self.events[since:] and not self.terminal:
                self._cond.wait(timeout)
            return list(self.events[since:]), self.terminal

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job is terminal; True iff it is."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self.terminal:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    break
                self._cond.wait(remaining)
            return self.terminal

    def snapshot(self) -> dict[str, Any]:
        """The ``GET /jobs/<id>`` status payload."""
        with self._cond:
            events = list(self.events)
            now = time.monotonic()
            data: dict[str, Any] = {
                "job": self.id,
                "state": self.state,
                "study": self.study.name,
                "priority": self.priority,
                "cells_total": self.cells_total,
                "cells_done": len(events),
                "cells_cached": sum(1 for e in events if e.get("cached")),
                "cells_quarantined": sum(
                    1 for e in events if e.get("status") == "quarantined"
                ),
                "cells_degraded": sum(1 for e in events if e.get("degraded")),
                "trials_simulated": sum(e.get("simulated", 0) for e in events),
                "age_seconds": round(now - self.submitted_at, 3),
            }
            if self.started_at is not None:
                end = self.finished_at if self.finished_at is not None else now
                data["run_seconds"] = round(end - self.started_at, 3)
            if self.error is not None:
                data["error"] = self.error
            return data


class JobQueue:
    """A priority queue of jobs plus the index of everything ever submitted."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Job]] = []
        self._jobs: dict[str, Job] = {}
        self._cond = threading.Condition()
        self._ids = itertools.count(1)
        self._closed = False

    def submit(
        self, study: Study, priority: int = 0, cells_total: int | None = None
    ) -> Job:
        """Enqueue a study; higher ``priority`` runs first, FIFO on ties."""
        with self._cond:
            if self._closed:
                raise RuntimeError("the job queue is shut down")
            seq = next(self._ids)
            job = Job(
                f"job-{seq}",
                study,
                priority=priority,
                seq=seq,
                cells_total=cells_total,
            )
            self._jobs[job.id] = job
            heapq.heappush(self._heap, (-priority, seq, job))
            self._cond.notify()
            return job

    def pop(self, timeout: float | None = None) -> Job | None:
        """The next job to run, or ``None`` on timeout / queue shutdown."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self._heap:
                if self._closed:
                    return None
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining)
            return heapq.heappop(self._heap)[2]

    def get(self, job_id: str) -> Job | None:
        with self._cond:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """Every known job, most recent submission first."""
        with self._cond:
            return sorted(
                self._jobs.values(), key=lambda job: job.seq, reverse=True
            )

    def depth(self) -> int:
        """Jobs submitted but not yet claimed by an executor."""
        with self._cond:
            return len(self._heap)

    def close(self) -> None:
        """Stop accepting work and wake every blocked :meth:`pop`."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
