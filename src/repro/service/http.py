"""HTTP frontend for :class:`~repro.service.daemon.StudyService`.

Stdlib-only (:mod:`http.server` ``ThreadingHTTPServer``) — the service
must run in the bare container, so no web framework.  The surface is
small and JSON-first:

====================================  ========================================
``POST /jobs``                        submit a Study (JSON body, optionally
                                      ``{"study": {...}, "priority": n}``);
                                      202 with the job snapshot
``GET /jobs``                         every known job, newest first
``GET /jobs/<id>``                    one job's status + per-cell progress
``GET /jobs/<id>/cells?since=<n>``    completed cells streamed as NDJSON,
                                      starting at event index ``n``; holds
                                      the connection open until the job ends
``GET /jobs/<id>/result``             the terminal result: study, table
                                      columns, cache counters, cell events
``GET /stats``                        service + queue + cache/store counters
``GET /healthz``                      liveness probe
``POST /shutdown``                    graceful stop (drains running jobs)
====================================  ========================================

Every response is JSON except the NDJSON cell stream (one JSON object per
line, ``application/x-ndjson``).  Errors are ``{"error": ...}`` with 400
(bad submission), 404 (unknown job/route), or 409 (result requested
before the job is terminal).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.exceptions import ReproError
from repro.service.daemon import StudyService
from repro.service.jobs import Job

#: Default TCP port — the registered-looking but unassigned corner of the
#: dynamic range the docs use throughout.
DEFAULT_PORT = 8642

#: Seconds a cell-stream poll waits per wakeup check (the stream also
#: wakes immediately on new events; this bounds a lost-notify stall).
STREAM_POLL_SECONDS = 0.5


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`StudyService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: StudyService) -> None:
        super().__init__(address, _Handler)
        self.service = service

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Stop serving, then drain the service (running jobs finish)."""
        self.shutdown()
        self.server_close()
        self.service.close()


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        pass  # the daemon's stdout is for the operator, not per-request noise

    @property
    def service(self) -> StudyService:
        return self.server.service

    def _send_json(self, code: int, payload: Any) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body")
        return json.loads(raw)

    def _job_or_404(self, job_id: str) -> Job | None:
        job = self.service.queue.get(job_id)
        if job is None:
            self._error(404, f"unknown job {job_id!r}")
        return job

    # -- routes ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        split = urlsplit(self.path)
        parts = [p for p in split.path.split("/") if p]
        query = parse_qs(split.query)
        if parts == ["healthz"]:
            self._send_json(200, {"ok": True})
        elif parts == ["stats"]:
            self._send_json(200, self.service.stats())
        elif parts == ["jobs"]:
            self._send_json(
                200, [job.snapshot() for job in self.service.queue.jobs()]
            )
        elif len(parts) == 2 and parts[0] == "jobs":
            job = self._job_or_404(parts[1])
            if job is not None:
                self._send_json(200, job.snapshot())
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cells":
            job = self._job_or_404(parts[1])
            if job is not None:
                self._stream_cells(job, query)
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
            job = self._job_or_404(parts[1])
            if job is not None:
                self._send_result(job)
        else:
            self._error(404, f"no route for GET {split.path}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        split = urlsplit(self.path)
        parts = [p for p in split.path.split("/") if p]
        if parts == ["jobs"]:
            self._submit()
        elif parts == ["shutdown"]:
            self._send_json(200, {"ok": True, "state": "shutting down"})
            # shutdown() must come from outside the serve loop's thread.
            threading.Thread(target=self.server.close, daemon=True).start()
        else:
            self._error(404, f"no route for POST {split.path}")

    # -- handlers -------------------------------------------------------------

    def _submit(self) -> None:
        try:
            data = self._read_body()
            if not isinstance(data, dict):
                raise ValueError("the body must be a JSON object")
            priority = 0
            study_data = data
            if "study" in data:
                study_data = data["study"]
                priority = int(data.get("priority", 0))
            job = self.service.submit(study_data, priority=priority)
        except (ReproError, ValueError, KeyError, TypeError) as error:
            self._error(400, f"{type(error).__name__}: {error}")
            return
        except RuntimeError as error:  # queue closed mid-shutdown
            self._error(503, str(error))
            return
        self._send_json(202, job.snapshot())

    def _stream_cells(self, job: Job, query: dict[str, list[str]]) -> None:
        try:
            since = int(query.get("since", ["0"])[0])
        except ValueError:
            self._error(400, "since must be an integer")
            return
        if since < 0:
            since = 0
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        # Length is unknown up front; close delimits the stream (the one
        # endpoint that opts out of HTTP/1.1 keep-alive).
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        while True:
            events, terminal = job.wait_events(since, STREAM_POLL_SECONDS)
            for event in events:
                line = json.dumps(event) + "\n"
                self.wfile.write(line.encode("utf-8"))
            if events:
                self.wfile.flush()
            since += len(events)
            if terminal and not job.events[since:]:
                return

    def _send_result(self, job: Job) -> None:
        if not job.terminal:
            self._error(
                409, f"job {job.id} is {job.state}; result not ready"
            )
            return
        if job.result is None:  # failed before producing a table
            self._send_json(
                200,
                {"job": job.id, "state": job.state, "error": job.error},
            )
            return
        result = job.result
        self._send_json(
            200,
            {
                "job": job.id,
                "state": job.state,
                "study": result.study.to_dict(),
                "table": result.table.to_dict(),
                "cells": len(result.cells),
                "cache_hits": result.cache_hits,
                "cache_misses": result.cache_misses,
                "simulated_trials": result.simulated_trials,
                "events": list(job.events),
            },
        )


def serve(
    service: StudyService, host: str = "127.0.0.1", port: int = DEFAULT_PORT
) -> ServiceHTTPServer:
    """Bind a server for ``service`` (``port=0`` picks an ephemeral port)."""
    return ServiceHTTPServer((host, port), service)
