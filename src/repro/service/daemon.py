"""The study service core: shared pool, shared cache, executor threads.

:class:`StudyService` is the daemon's engine, independent of HTTP (the
tests drive it directly; :mod:`repro.service.http` is a thin frontend).
It owns the process-wide resources every job shares:

- one persistent :class:`~repro.api.runner.WorkerPool` — worker processes
  fork once per daemon, not once per study;
- one :class:`~repro.service.dedupe.DedupingCache` over the configured
  :class:`~repro.api.cache.ResultCache` — completed cells dedupe through
  the content-addressed store, in-flight cells through the claim registry;
- a :class:`~repro.service.jobs.JobQueue` drained by ``executors``
  threads, each driving one job at a time through its own
  :class:`~repro.api.scheduler.CellScheduler` (so two running jobs
  interleave cell *dispatch*, while trial execution multiplexes over the
  one pool).

Determinism: the scheduler path is exactly the one under
:func:`repro.api.run_study`, so a daemon-run study folds to a bit-equal
:class:`~repro.api.results.ResultTable`.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Mapping

from repro.api.cache import ResultCache
from repro.api.runner import WorkerPool, default_workers
from repro.api.scheduler import (
    CellScheduler,
    ExecutionPolicy,
    cell_event,
    fold_study_result,
)
from repro.api.sweep import Study, expand_study
from repro.fast.arena import arena_stats
from repro.service.dedupe import DedupingCache
from repro.service.jobs import Job, JobQueue

#: Concurrent studies in flight per daemon.  Two is enough to overlap a
#: long study with short ones and to exercise cross-study dedupe; the
#: worker pool, not the executor count, bounds simulation throughput.
DEFAULT_EXECUTORS = 2


class StudyService:
    """A long-running executor for submitted studies.

    ``cache`` may be a :class:`ResultCache`, an already-wrapped
    :class:`DedupingCache`, or ``None`` (no caching — jobs still run, but
    nothing dedupes; mostly for tests).  A plain :class:`ResultCache` is
    wrapped in a :class:`DedupingCache` automatically.
    """

    def __init__(
        self,
        *,
        cache: "ResultCache | DedupingCache | None",
        workers: int | None = None,
        executors: int = DEFAULT_EXECUTORS,
        backend: str | None = None,
        policy: ExecutionPolicy | None = None,
        batch_chunk: int | None = None,
        transport: str | None = None,
    ) -> None:
        if executors < 1:
            raise ValueError(f"executors must be >= 1, got {executors}")
        if isinstance(cache, ResultCache):
            cache = DedupingCache(cache)
        self.cache = cache
        self.workers = default_workers() if workers is None else workers
        self.backend = backend
        self.policy = policy
        self.batch_chunk = batch_chunk
        self.transport = transport
        self.pool = WorkerPool(self.workers) if self.workers > 1 else None
        self.queue = JobQueue()
        self.started_at = time.monotonic()
        # Registered studies declare metric functions in the experiment
        # modules; without them a submitted study naming one would be
        # rejected as using an unknown metric.
        import repro.experiments  # noqa: F401

        self._threads = [
            threading.Thread(
                target=self._executor_loop,
                name=f"study-executor-{index}",
                daemon=True,
            )
            for index in range(executors)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission -----------------------------------------------------------

    def submit(
        self, study: "Study | Mapping[str, Any]", priority: int = 0
    ) -> Job:
        """Validate and enqueue a study; returns its :class:`Job`.

        Expansion happens here so malformed studies fail the *submission*
        (the HTTP layer turns the raised
        :class:`~repro.exceptions.ConfigurationError` into a 400) instead
        of a dead job later.
        """
        if not isinstance(study, Study):
            study = Study.from_dict(study)
        cells_total = len(expand_study(study))
        return self.queue.submit(study, priority=priority, cells_total=cells_total)

    # -- execution ------------------------------------------------------------

    def _executor_loop(self) -> None:
        while True:
            job = self.queue.pop()
            if job is None:  # queue closed
                return
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        job.mark_running()
        try:
            scheduler = CellScheduler(
                job.study,
                backend=self.backend,
                workers=self.workers,
                cache=self.cache,
                batch_chunk=self.batch_chunk,
                pool=self.pool,
                transport=self.transport,
                policy=self.policy,
            )
            results = []
            with scheduler:
                for result in scheduler.outcomes():
                    results.append(result)
                    job.add_event(cell_event(result))
            study_result = fold_study_result(
                job.study, results, cached=self.cache is not None
            )
            state = "quarantined" if study_result.quarantined else "done"
            job.finish(state, result=study_result)
        except BaseException as error:  # noqa: BLE001 - executor must survive
            job.finish("failed", error=f"{type(error).__name__}: {error}")
            if isinstance(error, (KeyboardInterrupt, SystemExit)):
                raise

    # -- observability ---------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """The ``GET /stats`` payload: service, queue, cache, and memory."""
        by_state: dict[str, int] = {}
        for job in self.queue.jobs():
            by_state[job.state] = by_state.get(job.state, 0) + 1
        return {
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "workers": self.workers,
            "executors": len(self._threads),
            "queue_depth": self.queue.depth(),
            "jobs": by_state,
            "cache": None if self.cache is None else self.cache.stats(),
            # Kernel-arena memory across this process's executor threads:
            # retained now vs. the high-water mark (ROADMAP item 5 — a
            # huge-n cell's footprint must be visible, and trimmable via
            # $REPRO_ARENA_TRIM_BYTES, not silently permanent).
            "arena": arena_stats(),
        }

    # -- lifecycle -------------------------------------------------------------

    def close(self, timeout: float = 30.0) -> None:
        """Stop accepting jobs, let running ones finish, release the pool."""
        self.queue.close()
        for thread in self._threads:
            thread.join(timeout)
        if self.pool is not None:
            self.pool.close()
            self.pool = None

    def __enter__(self) -> "StudyService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
