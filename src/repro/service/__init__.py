"""The study service: a long-running sweep daemon over the Scenario API.

``python -m repro.service`` starts a persistent daemon that owns one
shared :class:`~repro.api.runner.WorkerPool` and serves Study JSON over
HTTP: submissions enter a priority job queue, executor threads drive each
job through the same :class:`~repro.api.scheduler.CellScheduler` the CLI
uses, and concurrent studies deduplicate work at *cell* granularity —
through the content-addressed :class:`~repro.api.cache.ResultCache`
(ideally over the sharded :class:`~repro.api.store.SQLiteStore`) for
completed cells, and through an in-flight claim registry
(:class:`~repro.service.dedupe.DedupingCache`) for cells currently being
computed, so the same cell hash is simulated exactly once however many
requesters want it.

Everything stays bit-deterministic: a study run through the daemon yields
a :class:`~repro.api.results.ResultTable` equal to the same study through
:func:`repro.api.run_study`.

See ``docs/SERVICE.md`` for the HTTP API and job lifecycle.
"""

from repro.service.client import SERVICE_URL_ENV, ServiceClient, default_service_url
from repro.service.daemon import StudyService
from repro.service.dedupe import DedupingCache
from repro.service.jobs import JOB_STATES, TERMINAL_STATES, Job, JobQueue

__all__ = [
    "DedupingCache",
    "JOB_STATES",
    "Job",
    "JobQueue",
    "SERVICE_URL_ENV",
    "ServiceClient",
    "StudyService",
    "TERMINAL_STATES",
    "default_service_url",
]
