"""In-flight cell deduplication: the same cell computes once, everyone waits.

The content-addressed cache already dedupes *completed* cells across
studies; this wrapper closes the window while a cell is still computing.
When two concurrent jobs contain the same cell (same content key), the
first :meth:`load` miss *claims* the key; later misses for the same key
block on the claim instead of recomputing, then re-read the cache — by
then the owner has stored the entry, so the waiter gets a bit-identical
hit for free.

The wrapper speaks the same ``load``/``store`` surface as
:class:`~repro.api.cache.ResultCache` and rides through
:func:`~repro.api.cache.resolve_cache` untouched, so a
:class:`~repro.api.scheduler.CellScheduler` uses it as a drop-in
``cache=``.  The scheduler calls :meth:`release` if a claimed cell fails
before storing (quarantine, crash), so waiters wake up and re-race for
the claim rather than deadlocking — exactly-once *on success*, at-least-
once under failure.

Claims are in-process (``threading.Event``).  Cross-process dedupe still
happens for completed cells through the shared store; only the in-flight
window needs shared memory, and the daemon is the single process that
multiplexes studies.
"""

from __future__ import annotations

import threading
from typing import Any, Mapping

from repro.api.cache import ResultCache, content_key
from repro.sim.run import TrialStats


class DedupingCache:
    """Wrap a :class:`ResultCache` with an in-flight claim registry."""

    def __init__(self, inner: ResultCache, *, poll_seconds: float = 1.0) -> None:
        self.inner = inner
        #: How long a waiter sleeps per wakeup check.  Waiters also wake
        #: immediately on the claim's release; the poll is a backstop
        #: against a claim released without notification (process kill).
        self.poll_seconds = poll_seconds
        self._lock = threading.Lock()
        self._claims: dict[str, threading.Event] = {}
        #: Cells served by waiting out another requester's computation
        #: instead of recomputing — the in-flight dedupe win counter.
        self.dedupe_waits = 0

    # -- accounting passthrough (the scheduler reads these) ------------------

    @property
    def hits(self) -> int:
        return self.inner.hits

    @property
    def misses(self) -> int:
        return self.inner.misses

    @property
    def defects(self):
        return self.inner.defects

    @property
    def root(self):
        return self.inner.root

    def __len__(self) -> int:
        return len(self.inner)

    # -- the cache surface ----------------------------------------------------

    def load(
        self, payload: Mapping[str, Any]
    ) -> tuple[TrialStats, dict[str, Any]] | None:
        """A cached entry, possibly after waiting out an in-flight compute.

        Returns ``None`` only when this caller now *owns* the claim for
        the key and must compute and :meth:`store` (or :meth:`release`)
        it.
        """
        key = content_key(payload)
        waited = False
        while True:
            entry = self.inner.load(payload)
            if entry is not None:
                if waited:
                    # Increment under the claim lock: ``+=`` on an
                    # attribute is read-modify-write, and N executor
                    # threads racing it unlocked lose wins, so /stats
                    # would under-report in-flight dedupe.
                    with self._lock:
                        self.dedupe_waits += 1
                    # The waiter never missed in spirit: it was served by
                    # the in-flight computation.  The inner cache counted
                    # its pre-wait probe as a miss; leave that — the pair
                    # (miss then hit) is honest about the two probes.
                return entry
            with self._lock:
                event = self._claims.get(key)
                if event is None:
                    self._claims[key] = threading.Event()
                    return None
            waited = True
            event.wait(self.poll_seconds)

    def store(
        self,
        payload: Mapping[str, Any],
        stats: TrialStats,
        metrics: Mapping[str, Any],
    ) -> str:
        """Persist through the inner cache, then wake the key's waiters."""
        try:
            return self.inner.store(payload, stats, metrics)
        finally:
            self._release(content_key(payload))

    def release(self, payload: Mapping[str, Any]) -> None:
        """Give up a claim without storing (the computation failed).

        Waiters wake, re-probe the cache (still a miss), and re-race for
        the claim — one of them becomes the new owner and retries the
        computation under its own execution policy.
        """
        self._release(content_key(payload))

    def _release(self, key: str) -> None:
        with self._lock:
            event = self._claims.pop(key, None)
        if event is not None:
            event.set()

    # -- observability ---------------------------------------------------------

    @property
    def inflight(self) -> int:
        """Cells currently claimed and computing."""
        with self._lock:
            return len(self._claims)

    def stats(self) -> dict[str, Any]:
        """Inner cache/store stats plus the in-flight dedupe counters."""
        data = self.inner.stats()
        data["inflight"] = self.inflight
        data["dedupe_waits"] = self.dedupe_waits
        return data
