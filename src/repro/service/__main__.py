"""Study service command line: the daemon and its thin client.

Usage::

    python -m repro.service                      # serve on 127.0.0.1:8642
    python -m repro.service serve --port 0 --cache-dir /tmp/cache --store sqlite
    python -m repro.service submit E7 --quick --wait
    python -m repro.service submit my_study.json --priority 5
    python -m repro.service status job-1
    python -m repro.service fetch job-1 --csv
    python -m repro.service stats
    python -m repro.service shutdown

Client subcommands talk to ``$REPRO_SERVICE_URL`` (default
``http://127.0.0.1:8642``); ``--url`` overrides per call.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

from repro.api.cache import CACHE_DIR_ENV, ResultCache
from repro.api.results import ResultTable
from repro.api.scheduler import ExecutionPolicy
from repro.api.store import DEFAULT_SHARDS, STORE_KINDS, make_store
from repro.exceptions import ReproError
from repro.service.client import ServiceClient, ServiceError, default_service_url
from repro.service.daemon import DEFAULT_EXECUTORS, StudyService
from repro.service.http import DEFAULT_PORT, serve


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run the study-service daemon, or talk to one.",
    )
    sub = parser.add_subparsers(dest="command")

    serve_p = sub.add_parser("serve", help="start the daemon (the default)")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=DEFAULT_PORT,
                         help=f"TCP port (0: ephemeral; default {DEFAULT_PORT})")
    serve_p.add_argument("--workers", type=int, default=None,
                         help="worker processes (default: $REPRO_WORKERS or 1)")
    serve_p.add_argument("--executors", type=int, default=DEFAULT_EXECUTORS,
                         help=f"concurrent studies (default {DEFAULT_EXECUTORS})")
    serve_p.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="cache directory (default: $REPRO_CACHE_DIR, "
                         "else a throwaway temp dir)")
    serve_p.add_argument("--store", choices=STORE_KINDS, default="sqlite",
                         help="cache store layout (default: sqlite)")
    serve_p.add_argument("--shards", type=int, default=DEFAULT_SHARDS,
                         help="sqlite store shard count")
    serve_p.add_argument("--max-cache-bytes", type=int, default=None,
                         help="LRU-evict the sqlite store beyond this size")
    serve_p.add_argument("--backend", choices=("auto", "agent", "fast"),
                         default=None, help="force one engine for every cell")
    serve_p.add_argument("--chunk-timeout", type=float, default=None,
                         metavar="SECONDS", help="per-chunk deadline")
    serve_p.add_argument("--max-retries", type=int, default=None, metavar="N",
                         help="chunk-level retries (default 2)")
    serve_p.add_argument("--no-supervise", action="store_true",
                         help="disable worker supervision")

    submit_p = sub.add_parser("submit", help="submit a study")
    submit_p.add_argument("study", help="registered study name or JSON file")
    submit_p.add_argument("--quick", action="store_true",
                          help="reduced grids for registered studies")
    submit_p.add_argument("--seed", type=int, default=0,
                          help="base seed for registered studies")
    submit_p.add_argument("--priority", type=int, default=0,
                          help="queue priority (higher runs first)")
    submit_p.add_argument("--wait", action="store_true",
                          help="block until the job is terminal")
    submit_p.add_argument("--url", default=None)

    status_p = sub.add_parser("status", help="one job's status (or all jobs)")
    status_p.add_argument("job", nargs="?", default=None)
    status_p.add_argument("--url", default=None)

    fetch_p = sub.add_parser("fetch", help="fetch a terminal job's table")
    fetch_p.add_argument("job")
    fetch_p.add_argument("--json", action="store_true",
                         help="full result JSON instead of CSV")
    fetch_p.add_argument("--wait", action="store_true",
                         help="wait for the job to finish first")
    fetch_p.add_argument("--url", default=None)

    stats_p = sub.add_parser("stats", help="service + cache counters")
    stats_p.add_argument("--url", default=None)

    shutdown_p = sub.add_parser("shutdown", help="stop the daemon gracefully")
    shutdown_p.add_argument("--url", default=None)
    return parser


def _build_policy(args: argparse.Namespace) -> ExecutionPolicy | None:
    overrides = {}
    if args.chunk_timeout is not None:
        overrides["chunk_timeout"] = args.chunk_timeout
    if args.max_retries is not None:
        overrides["max_retries"] = args.max_retries
    if args.no_supervise:
        overrides["supervise"] = False
    return ExecutionPolicy(**overrides) if overrides else None


def serve_main(args: argparse.Namespace) -> int:
    cache_dir = args.cache_dir or os.environ.get(CACHE_DIR_ENV)
    if not cache_dir:
        cache_dir = tempfile.mkdtemp(prefix="repro-service-cache-")
        print(f"no cache dir configured; using throwaway {cache_dir}")
    store = make_store(
        args.store, cache_dir,
        shards=args.shards, max_bytes=args.max_cache_bytes,
    )
    service = StudyService(
        cache=ResultCache(cache_dir, store=store),
        workers=args.workers,
        executors=args.executors,
        backend=args.backend,
        policy=_build_policy(args),
    )
    server = serve(service, host=args.host, port=args.port)
    # The smoke harness parses this line for the ephemeral port.
    print(f"study service listening on {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.close()
    return 0


def _client(args: argparse.Namespace) -> ServiceClient:
    return ServiceClient(args.url or default_service_url())


def submit_main(args: argparse.Namespace) -> int:
    from repro.api.__main__ import _load_study

    client = _client(args)
    study = _load_study(args.study, args.quick, args.seed)
    snapshot = client.submit(study, priority=args.priority)
    if args.wait:
        snapshot = client.wait(snapshot["job"])
    print(json.dumps(snapshot, indent=2))
    return 0 if snapshot["state"] != "failed" else 1


def status_main(args: argparse.Namespace) -> int:
    client = _client(args)
    payload = client.jobs() if args.job is None else client.status(args.job)
    print(json.dumps(payload, indent=2))
    return 0


def fetch_main(args: argparse.Namespace) -> int:
    client = _client(args)
    if args.wait:
        client.wait(args.job)
    data = client.result(args.job)
    if args.json:
        print(json.dumps(data, indent=2))
        return 0
    if "table" not in data:
        print(f"error: job {args.job} {data.get('state')}: "
              f"{data.get('error')}", file=sys.stderr)
        return 1
    sys.stdout.write(ResultTable(data["table"]).to_csv())
    return 0


def stats_main(args: argparse.Namespace) -> int:
    print(json.dumps(_client(args).stats(), indent=2))
    return 0


def shutdown_main(args: argparse.Namespace) -> int:
    print(json.dumps(_client(args).shutdown(), indent=2))
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # Bare `python -m repro.service [--flags]` means serve.
    if not argv or argv[0].startswith("-"):
        argv = ["serve", *argv]
    args = build_parser().parse_args(argv)
    handlers = {
        "serve": serve_main,
        "submit": submit_main,
        "status": status_main,
        "fetch": fetch_main,
        "stats": stats_main,
        "shutdown": shutdown_main,
    }
    try:
        return handlers[args.command](args)
    except (ServiceError, ReproError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
