"""Exception hierarchy for the house-hunting reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
base type.  :class:`ProtocolError` is the important one operationally: the
synchronous engine raises it when an ant violates the model of Section 2
(e.g. calling ``go(i)`` on a nest it has never visited, or targeting the
home nest with ``go``/``recruit``).  These indicate bugs in an algorithm
implementation, never recoverable runtime conditions, which is why they are
exceptions rather than error returns.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """Invalid construction parameters (bad ``n``, ``k``, qualities, ...)."""


class ProtocolError(ReproError):
    """An ant violated the environment interaction rules of Section 2."""

    def __init__(self, ant_id: int, message: str) -> None:
        super().__init__(f"ant {ant_id}: {message}")
        self.ant_id = ant_id


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent internal state."""


class NotConvergedError(ReproError):
    """A run was asked for its solution but never satisfied the predicate."""
