"""Exception hierarchy for the house-hunting reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
base type.  :class:`ProtocolError` is the important one operationally: the
synchronous engine raises it when an ant violates the model of Section 2
(e.g. calling ``go(i)`` on a nest it has never visited, or targeting the
home nest with ``go``/``recruit``).  These indicate bugs in an algorithm
implementation, never recoverable runtime conditions, which is why they are
exceptions rather than error returns.

The :class:`ExecutionError` branch is the runtime-failure taxonomy of the
execution stack (``repro.api.runner`` / ``repro.api.scheduler``): faults of
the *substrate* — a worker process dying (:class:`WorkerCrash`), a chunk
blowing its deadline (:class:`ChunkTimeout`) — are **retryable** because
every chunk is a pure function of its scenarios' ``(seed, trial_index)``
streams, so re-running it reproduces the same bits.  Faults of the *work*
(a kernel raising) are not retryable; the scheduler quarantines the cell
(:class:`CellQuarantined`) instead of replaying a deterministic crash.
:func:`is_retryable` is the one dispatch predicate; see
``docs/RESILIENCE.md`` for the full policy.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """Invalid construction parameters (bad ``n``, ``k``, qualities, ...)."""


class ProtocolError(ReproError):
    """An ant violated the environment interaction rules of Section 2."""

    def __init__(self, ant_id: int, message: str) -> None:
        super().__init__(f"ant {ant_id}: {message}")
        self.ant_id = ant_id


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent internal state."""


class NotConvergedError(ReproError):
    """A run was asked for its solution but never satisfied the predicate."""


class ExecutionError(ReproError):
    """Base class for runtime faults of the execution substrate.

    Subclasses declare whether the fault is *retryable* via the
    ``retryable`` class attribute: substrate faults (dead worker, blown
    deadline) are, because chunks are pure functions of their seeds;
    deterministic faults of the work itself are not.
    """

    retryable = False


class WorkerCrash(ExecutionError):
    """A worker process died (SIGKILL, segfault, ``BrokenProcessPool``)."""

    retryable = True


class ChunkTimeout(ExecutionError):
    """A chunk exceeded its per-chunk deadline and its worker was culled."""

    retryable = True

    def __init__(self, message: str, *, timeout: float | None = None) -> None:
        super().__init__(message)
        self.timeout = timeout


class CellQuarantined(ExecutionError):
    """A study cell exhausted its failure budget and was quarantined.

    Raised only under fail-fast policies (``ExecutionPolicy.quarantine``
    off); the default policy records the failure as a structured row in
    the :class:`~repro.api.results.ResultTable` instead.
    """

    def __init__(
        self, message: str, *, cell_index: int | None = None,
        cause: BaseException | None = None,
    ) -> None:
        super().__init__(message)
        self.cell_index = cell_index
        self.cause = cause


def is_retryable(exc: BaseException) -> bool:
    """True when retrying the failed unit of work can possibly succeed."""
    return isinstance(exc, ExecutionError) and exc.retryable
