"""Randomized rumor spreading (Karp, Schindelhauer, Shenker, Vöcking 2000).

Section 3's lower bound "closely resembles lower bounds for rumor spreading
in a complete graph, where the rumor is the location of the chosen nest".
This module provides the classic push / pull / push-pull processes so the
house-hunting measurements can be compared against their textbook
counterparts:

- **push**: every informed node calls a uniform random node and informs it
  (≈ log₂ n + ln n rounds on the complete graph);
- **pull**: every ignorant node calls a uniform random node and learns the
  rumor if the callee knows it;
- **push-pull**: both (≈ log₃ n + O(log log n)).

:func:`spread_on_graph` runs the same processes over an arbitrary
``networkx`` graph (calls go to uniform random *neighbors*), used in tests
and examples to show how topology — the ants' home nest acts as a complete
graph — shapes spreading time.
"""

from __future__ import annotations

from enum import Enum

import networkx as nx
import numpy as np

from repro.exceptions import ConfigurationError


class RumorMode(Enum):
    """Communication direction of the gossip exchange."""

    PUSH = "push"
    PULL = "pull"
    PUSH_PULL = "push_pull"


def rumor_rounds(
    n: int,
    rng: np.random.Generator,
    mode: RumorMode = RumorMode.PUSH,
    initial_informed: int = 1,
    max_rounds: int = 100_000,
) -> int:
    """Rounds for the rumor to reach all ``n`` nodes of the complete graph.

    Vectorized: each round every relevant node draws one uniform contact.
    Returns the first round after which nobody is ignorant (0 if
    ``initial_informed >= n``).
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if not 1 <= initial_informed <= n:
        raise ConfigurationError("initial_informed must be in 1..n")
    informed = np.zeros(n, dtype=bool)
    informed[:initial_informed] = True
    rounds = 0
    while not informed.all():
        if rounds >= max_rounds:
            break
        rounds += 1
        if mode in (RumorMode.PUSH, RumorMode.PUSH_PULL):
            callers = np.flatnonzero(informed)
            contacts = rng.integers(0, n, size=len(callers))
            informed[contacts] = True
        if mode in (RumorMode.PULL, RumorMode.PUSH_PULL):
            callers = np.flatnonzero(~informed)
            contacts = rng.integers(0, n, size=len(callers))
            informed[callers[informed[contacts]]] = True
    return rounds


def spread_on_graph(
    graph: nx.Graph,
    source,
    rng: np.random.Generator,
    mode: RumorMode = RumorMode.PUSH,
    max_rounds: int = 100_000,
) -> int:
    """Rounds for the rumor to cover a connected ``networkx`` graph.

    Every round, each informed node (push) contacts one uniform random
    neighbor; each ignorant node (pull) likewise.  Raises if the graph is
    disconnected (the rumor could never cover it).
    """
    if graph.number_of_nodes() == 0:
        raise ConfigurationError("graph must be non-empty")
    if not nx.is_connected(graph):
        raise ConfigurationError("graph must be connected")
    if source not in graph:
        raise ConfigurationError(f"source {source!r} not in graph")

    nodes = list(graph.nodes)
    index = {node: i for i, node in enumerate(nodes)}
    neighbors = [np.array([index[v] for v in graph[u]], dtype=np.int64) for u in nodes]
    n = len(nodes)
    informed = np.zeros(n, dtype=bool)
    informed[index[source]] = True
    rounds = 0
    while not informed.all() and rounds < max_rounds:
        rounds += 1
        newly: list[int] = []
        if mode in (RumorMode.PUSH, RumorMode.PUSH_PULL):
            for u in np.flatnonzero(informed):
                nbrs = neighbors[u]
                if len(nbrs):
                    newly.append(int(nbrs[rng.integers(0, len(nbrs))]))
        if mode in (RumorMode.PULL, RumorMode.PUSH_PULL):
            for u in np.flatnonzero(~informed):
                nbrs = neighbors[u]
                if len(nbrs) and informed[nbrs[rng.integers(0, len(nbrs))]]:
                    newly.append(int(u))
        informed[newly] = True
    return rounds


def expected_push_rounds(n: int) -> float:
    """Karp et al.'s asymptotic estimate log₂ n + ln n for push gossip."""
    if n <= 1:
        return 0.0
    return float(np.log2(n) + np.log(n))
