"""A Pratt-style quorum-sensing ant — the biologically observed strategy.

Section 1.1 describes what real *Temnothorax* colonies are believed to do
(Pratt et al. 2002): ants that find an acceptable nest recruit slowly by
tandem runs; each visit they (imperfectly) check whether the nest's
population has exceeded a quorum threshold; once it has, they switch to
rapid transport, committing the colony.  This baseline embeds that strategy
in the paper's model so it can be compared head-to-head with Algorithms 2
and 3 (bench E8):

- *assessing* ants alternate nest visits and recruitment rounds, recruiting
  with a fixed slow probability ``tandem_probability``;
- once a visit sees ``count >= quorum_fraction * n``, the ant *commits* and
  recruits every round (transport);
- passive ants (bad first nest) wait at home and adopt whatever nest they
  are recruited to.

Like the real strategy — and unlike Algorithm 2 — nothing here guarantees a
single winner: two nests can both reach quorum (a known failure mode of
real colonies under time pressure).  The benchmarks measure exactly how
often that splits the colony.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, SimulationError
from repro.model.actions import (
    Action,
    ActionResult,
    Go,
    GoResult,
    Recruit,
    RecruitResult,
    Search,
    SearchResult,
)
from repro.model.ant import Ant
from repro.sim.run import AntFactory
from repro.types import GOOD_THRESHOLD, NestId


class QuorumAnt(Ant):
    """Quorum-threshold strategy in the Section 2 model.

    Parameters
    ----------
    quorum_fraction:
        The quorum as a fraction of colony size ``n``.  Pratt's field
        estimates are ~0.05–0.25 of the colony, but those colonies discover
        nests gradually; in this model all ``n`` ants search simultaneously,
        so every nest starts at ≈ n/k ants and a meaningful quorum must
        exceed 1/k (otherwise every nest is instantly "at quorum" and the
        strategy degenerates to saturated neutral drift).  The default 0.35
        is safely above 1/k for k ≥ 3.
    tandem_probability:
        Pre-quorum recruitment probability (slow tandem runs).
    """

    _PHASE_SEARCH = "search"
    _PHASE_RECRUIT = "recruit"
    _PHASE_ASSESS = "assess"

    def __init__(
        self,
        ant_id: int,
        n: int,
        rng: np.random.Generator,
        quorum_fraction: float = 0.35,
        tandem_probability: float = 0.25,
        good_threshold: float = GOOD_THRESHOLD,
    ) -> None:
        super().__init__(ant_id, n, rng)
        if not 0.0 < quorum_fraction <= 1.0:
            raise ConfigurationError("quorum_fraction must be in (0, 1]")
        if not 0.0 < tandem_probability <= 1.0:
            raise ConfigurationError("tandem_probability must be in (0, 1]")
        self.quorum = max(2.0, quorum_fraction * n)
        self.tandem_probability = tandem_probability
        self.good_threshold = good_threshold
        self.phase = self._PHASE_SEARCH
        self.assessing = False  # found an acceptable nest, pre-quorum
        self.committed = False  # quorum seen: transport mode
        self.nest: NestId | None = None
        self.count = 0

    def decide(self) -> Action:
        if self.phase is self._PHASE_SEARCH:
            return Search()
        assert self.nest is not None
        if self.phase == self._PHASE_RECRUIT:
            if self.committed:
                return Recruit(True, self.nest)
            if self.assessing:
                tandem = self.rng.random() < self.tandem_probability
                return Recruit(tandem, self.nest)
            return Recruit(False, self.nest)  # passive: wait to be recruited
        if self.phase == self._PHASE_ASSESS:
            return Go(self.nest)
        raise SimulationError(f"ant {self.ant_id}: unknown phase {self.phase}")

    def observe(self, result: ActionResult) -> None:
        if isinstance(result, SearchResult):
            self.nest = result.nest
            self.count = result.count
            self.assessing = result.quality > self.good_threshold
            self._check_quorum()
            self.phase = self._PHASE_RECRUIT
        elif isinstance(result, RecruitResult):
            if result.nest != self.nest:
                # Recruited to a different nest: adopt it and assess it
                # ourselves (the tandem-run follower behavior).
                self.nest = result.nest
                self.assessing = True
                self.committed = False
            self.phase = self._PHASE_ASSESS
        elif isinstance(result, GoResult):
            self.count = result.count
            self._check_quorum()
            self.phase = self._PHASE_RECRUIT

    def _check_quorum(self) -> None:
        """Switch to transport mode when the population reaches quorum."""
        if self.assessing and self.count >= self.quorum:
            self.committed = True

    @property
    def committed_nest(self) -> NestId | None:
        return self.nest

    def state_label(self) -> str:
        if self.committed:
            return "transport"
        if self.assessing:
            return "tandem"
        return "passive"


def quorum_factory(
    quorum_fraction: float = 0.35,
    tandem_probability: float = 0.25,
    good_threshold: float = GOOD_THRESHOLD,
) -> AntFactory:
    """Factory for :class:`QuorumAnt` colonies."""

    def build(ant_id: int, n: int, rng) -> QuorumAnt:
        return QuorumAnt(
            ant_id,
            n,
            rng,
            quorum_fraction=quorum_fraction,
            tandem_probability=tandem_probability,
            good_threshold=good_threshold,
        )

    return build
