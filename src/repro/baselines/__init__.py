"""Comparison algorithms and reference processes.

- :mod:`repro.baselines.rumor` — randomized rumor spreading (Karp et al.),
  the process whose lower-bound argument Section 3 adapts;
- :mod:`repro.baselines.quorum` — a Pratt-style quorum-sensing ant, the
  strategy biologists believe *Temnothorax* actually uses (Section 1.1);
- :mod:`repro.baselines.uniform` — Algorithm 3 with its positive feedback
  removed (constant recruit probability): the key ablation;
- :mod:`repro.baselines.polya` — the Pólya-urn reference dynamics Section 5
  invokes ("similar to the well-known Polya's urn model").
"""

from repro.baselines.polya import PolyaUrn, urn_win_probability
from repro.baselines.quorum import QuorumAnt, quorum_factory
from repro.baselines.rumor import RumorMode, rumor_rounds, spread_on_graph
from repro.baselines.uniform import UniformRecruitAnt, uniform_factory

__all__ = [
    "PolyaUrn",
    "QuorumAnt",
    "RumorMode",
    "UniformRecruitAnt",
    "quorum_factory",
    "rumor_rounds",
    "spread_on_graph",
    "uniform_factory",
    "urn_win_probability",
]
