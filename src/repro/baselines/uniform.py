"""Ablation: Algorithm 3 with the positive feedback removed.

Algorithm 3's essential mechanism is recruiting *with probability
proportional to nest population*.  :class:`UniformRecruitAnt` replaces that
with a constant probability — everything else (the alternating
recruit/assess schedule, adoption of the recruiter's nest, passive
activation) is identical to :class:`~repro.core.simple.SimpleAnt`.

Without the proportional rate, nest populations perform an (almost)
unbiased competition instead of the urn-like rich-get-richer dynamics, so
convergence slows from O(k log n) toward the random-walk absorption time.
Bench E8 quantifies the gap, which is the paper's central design insight
made measurable.
"""

from __future__ import annotations

import numpy as np

from repro.core.simple import SimpleAnt
from repro.exceptions import ConfigurationError
from repro.sim.run import AntFactory
from repro.types import GOOD_THRESHOLD


class UniformRecruitAnt(SimpleAnt):
    """Algorithm 3 variant recruiting at a fixed rate (the ablation)."""

    def __init__(
        self,
        ant_id: int,
        n: int,
        rng: np.random.Generator,
        recruit_probability: float = 0.5,
        good_threshold: float = GOOD_THRESHOLD,
    ) -> None:
        super().__init__(ant_id, n, rng, good_threshold=good_threshold)
        if not 0.0 <= recruit_probability <= 1.0:
            raise ConfigurationError("recruit_probability must be in [0, 1]")
        self.recruit_probability = recruit_probability

    def _recruit_bit(self) -> bool:
        """Constant-rate replacement for line 6's ``count/n`` coin."""
        return bool(self.rng.random() < self.recruit_probability)

    def state_label(self) -> str:
        return f"uniform-{super().state_label()}"


def uniform_factory(
    recruit_probability: float = 0.5, good_threshold: float = GOOD_THRESHOLD
) -> AntFactory:
    """Factory for :class:`UniformRecruitAnt` colonies."""

    def build(ant_id: int, n: int, rng) -> UniformRecruitAnt:
        return UniformRecruitAnt(
            ant_id,
            n,
            rng,
            recruit_probability=recruit_probability,
            good_threshold=good_threshold,
        )

    return build
