"""Pólya-urn reference dynamics.

Section 5 motivates Algorithm 3 as "similar to the well-known Polya's urn
model [2]": recruiting with probability proportional to population is a
rich-get-richer reinforcement, so large nests swamp small ones.  This
module provides the urn itself so experiment E14 can compare the two
processes' *dominance curves* (probability the initially larger nest wins,
as a function of its initial share):

- :class:`PolyaUrn` — the generalized urn of Chung–Handjani–Jungreis [2]:
  at each step one ball is added to urn ``i`` with probability
  ``c_i^γ / Σ_j c_j^γ``.  For ``γ > 1`` ("superlinear" feedback) one urn
  eventually takes *all* new balls — the analogue of Algorithm 3's
  convergence to a single nest; for ``γ = 1`` shares converge to a random
  (Beta/Dirichlet-distributed) limit and no single winner emerges.
- :func:`urn_win_probability` — Monte-Carlo dominance curve.

Algorithm 3 effectively runs the γ=2 urn (a nest gains ants at rate
∝ p·(p − Σ²); its *relative* gain is superlinear in p), which is why a
single winner emerges there while the classical γ=1 urn would stabilize at
a random split.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError


class PolyaUrn:
    """A generalized Pólya urn with feedback exponent ``gamma``."""

    def __init__(self, counts: list[int] | np.ndarray, gamma: float = 1.0) -> None:
        counts = np.asarray(counts, dtype=np.int64)
        if counts.ndim != 1 or len(counts) < 2:
            raise ConfigurationError("need counts for at least two urns")
        if np.any(counts < 0) or counts.sum() == 0:
            raise ConfigurationError("counts must be non-negative, not all zero")
        if gamma <= 0:
            raise ConfigurationError("gamma must be positive")
        self.counts = counts.copy()
        self.gamma = gamma

    @property
    def total(self) -> int:
        """Total number of balls."""
        return int(self.counts.sum())

    def shares(self) -> np.ndarray:
        """Current share of each urn."""
        return self.counts / self.counts.sum()

    def step(self, rng: np.random.Generator) -> int:
        """Add one ball; return the index of the reinforced urn."""
        weights = self.counts.astype(float) ** self.gamma
        total = weights.sum()
        if total == 0:
            raise ConfigurationError("all urns empty")
        chosen = int(rng.choice(len(self.counts), p=weights / total))
        self.counts[chosen] += 1
        return chosen

    def run(self, steps: int, rng: np.random.Generator) -> np.ndarray:
        """Run ``steps`` reinforcements; return the share trajectory.

        The returned array has shape ``(steps + 1, k)`` (row 0 = initial
        shares).
        """
        trajectory = np.empty((steps + 1, len(self.counts)), dtype=float)
        trajectory[0] = self.shares()
        for step in range(1, steps + 1):
            self.step(rng)
            trajectory[step] = self.shares()
        return trajectory


def urn_win_probability(
    initial_a: int,
    initial_b: int,
    steps: int,
    trials: int,
    rng: np.random.Generator,
    gamma: float = 2.0,
) -> float:
    """Monte-Carlo probability that urn A holds the larger share after
    ``steps`` reinforcements of a two-urn race.

    With ``gamma=2`` (Algorithm 3's effective feedback) this approximates
    the probability that the initially-larger nest wins the house-hunt; the
    curve sharpens as the initial gap grows — Lemma 5.7's multiplicative
    gap amplification in urn form.
    """
    if trials < 1:
        raise ConfigurationError("trials must be >= 1")
    wins = 0
    for _ in range(trials):
        urn = PolyaUrn([initial_a, initial_b], gamma=gamma)
        for _ in range(steps):
            urn.step(rng)
        shares = urn.shares()
        wins += int(shares[0] > shares[1])
    return wins / trials
