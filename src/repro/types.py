"""Shared type aliases and model constants.

The vocabulary here mirrors Section 2 of the paper: nests are identified by
integers ``0..k`` where ``0`` is the home nest, ants by integers ``0..n-1``,
rounds are 1-based (round 1 is the initial search round), and qualities are
floats in ``[0, 1]`` (the paper uses the binary set ``{0, 1}``; the
non-binary extension of Section 6 uses the full interval).
"""

from __future__ import annotations

from typing import TypeAlias

#: Identifier of a nest.  ``HOME_NEST`` (0) is the home nest; candidate
#: nests are ``1..k``.
NestId: TypeAlias = int

#: Identifier of an ant, in ``0..n-1``.
AntId: TypeAlias = int

#: 1-based round number.  Round 1 is the initial search round.
Round: TypeAlias = int

#: Nest quality.  The paper's base model uses ``{0.0, 1.0}``.
Quality: TypeAlias = float

#: The home nest identifier.
HOME_NEST: NestId = 0

#: Quality value of an unsuitable nest in the binary model.
BAD_QUALITY: Quality = 0.0

#: Quality value of a suitable nest in the binary model.
GOOD_QUALITY: Quality = 1.0

#: Default threshold above which a quality counts as "good" when mapping
#: real-valued qualities onto the paper's binary accept/reject decision.
GOOD_THRESHOLD: float = 0.5


def is_home(nest: NestId) -> bool:
    """Return ``True`` iff ``nest`` is the home nest."""
    return nest == HOME_NEST


def is_candidate(nest: NestId, k: int) -> bool:
    """Return ``True`` iff ``nest`` is a valid candidate nest id for ``k`` nests."""
    return 1 <= nest <= k
